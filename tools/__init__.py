"""Repository tooling: the docstring gate and the ``reprolint`` analyzer.

``tools`` is a plain package so CI and the test suite can run the static
analyzers as modules from the repository root::

    python -m tools.reprolint src
    python tools/check_docstrings.py src/repro --fail-under 91.0
"""
