#!/usr/bin/env python
"""Docstring-coverage gate (stdlib-only stand-in for ``interrogate``).

Walks a package tree, parses every ``*.py`` file with :mod:`ast` and counts
the *public* documentation surface: the module itself, plus every public
class, function and method defined at module or class level (names starting
with ``_`` — including dunders — and bodies nested inside functions are
skipped).  Coverage is the fraction of those objects carrying a docstring.

The container image deliberately has no third-party docstring tools, so this
script is the CI gate::

    python tools/check_docstrings.py src/repro --fail-under 99.0

Exit status is 1 when coverage falls below ``--fail-under`` (and the missing
objects are listed), 0 otherwise.  ``tests/test_docs.py`` runs the same check
inside the test suite so the pinned threshold is enforced locally too.
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import sys
from typing import Iterator, List, Tuple

__all__ = ["coverage", "iter_public_objects", "main"]


def _base_names(class_node: ast.ClassDef) -> List[str]:
    """The plain names of a class's bases (``pkg.Base`` resolves to ``Base``)."""
    names: List[str] = []
    for base in class_node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def iter_public_objects(tree: ast.Module, module_label: str
                        ) -> Iterator[Tuple[str, bool]]:
    """Yield ``(qualified name, documented)`` for the module's public surface.

    A method without its own docstring counts as documented when it overrides
    a documented method of a base class defined in the same module — the same
    resolution ``help()`` performs through the MRO, so overrides of a
    documented contract are not flagged as missing documentation.
    """
    yield module_label, ast.get_docstring(tree) is not None
    # First pass: collect classes (any nesting level) and their methods.
    classes: dict = {}
    stack: List[Tuple[ast.AST, str]] = [(tree, module_label)]
    while stack:
        node, prefix = stack.pop()
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, (ast.ClassDef, ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                continue
            if child.name.startswith("_"):
                continue
            qualified = f"{prefix}:{child.name}"
            if isinstance(child, ast.ClassDef):
                methods = {
                    member.name: ast.get_docstring(member) is not None
                    for member in child.body
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                classes[child.name] = (qualified, _base_names(child),
                                       ast.get_docstring(child) is not None,
                                       methods)
                stack.append((child, qualified))
            elif isinstance(node, ast.Module):
                # Module-level function; methods are handled with their class.
                yield qualified, ast.get_docstring(child) is not None

    def inherited(method: str, bases: List[str], seen: frozenset) -> bool:
        for base in bases:
            if base in seen or base not in classes:
                continue
            _, base_bases, _, base_methods = classes[base]
            if base_methods.get(method):
                return True
            if inherited(method, base_bases, seen | {base}):
                return True
        return False

    for name, (qualified, bases, class_documented, methods) in classes.items():
        yield qualified, class_documented
        for method, documented in methods.items():
            if method.startswith("_"):
                continue
            yield (f"{qualified}:{method}",
                   documented or inherited(method, bases, frozenset({name})))


def coverage(root: pathlib.Path) -> Tuple[int, int, List[str]]:
    """``(documented, total, missing)`` over every ``*.py`` file under ``root``."""
    documented = 0
    total = 0
    missing: List[str] = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for name, has_docstring in iter_public_objects(tree, str(path)):
            total += 1
            if has_docstring:
                documented += 1
            else:
                missing.append(name)
    return documented, total, missing


def main(argv=None) -> int:
    """CLI entry point: report coverage, exit 1 below the threshold."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", nargs="?", default="src/repro",
                        help="package directory to scan (default: src/repro)")
    parser.add_argument("--fail-under", type=float, default=95.0,
                        help="minimum coverage percentage (default: 95)")
    parser.add_argument("--verbose", action="store_true",
                        help="list every undocumented object")
    arguments = parser.parse_args(argv)

    root = pathlib.Path(arguments.root)
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    documented, total, missing = coverage(root)
    percent = 100.0 * documented / total if total else 100.0
    print(f"docstring coverage: {documented}/{total} public objects "
          f"({percent:.1f}%), threshold {arguments.fail_under:.1f}%")
    if missing and (arguments.verbose or percent < arguments.fail_under):
        for name in missing:
            print(f"  missing: {name}")
    if percent < arguments.fail_under:
        print(f"FAIL: coverage {percent:.1f}% is below "
              f"{arguments.fail_under:.1f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
