"""reprolint — static enforcement of the repo's determinism & layering invariants.

Everything this reproduction claims — bit-for-bit scenario replay, parallel
vs. serial executor parity, sim ↔ tcp value identity — rests on invariants
that the test suite only checks *dynamically*, after a violation has already
shipped.  ``reprolint`` is the lint-time gate: a stdlib-only (:mod:`ast` +
:mod:`tokenize`-free) analyzer with a rule registry, per-rule fixture tests
and ``# reprolint: allow[RULE] reason=...`` escape pragmas.

Rules
-----
REP001
    No wall-clock reads (``time.time``/``monotonic``/``perf_counter``,
    ``datetime.now``/``utcnow``) in deterministic layers.  Simulated time is
    the only clock; measurement harnesses justify themselves with a pragma.
REP002
    No ambient randomness: module-level ``random.*`` draws, unseeded
    ``random.Random()``, and ``hash()`` (``PYTHONHASHSEED``-sensitive)
    escaping into deterministic layers.  RNGs must be parameter-injected.
REP003
    Order-dependence: iterating a ``set``/``dict.keys()`` expression whose
    elements feed an RNG draw, an accumulated/returned collection or a
    serialised structure, without an enclosing ``sorted()``.
REP004
    Async hygiene in :mod:`repro.net`: blocking calls (``time.sleep``, sync
    file/socket operations) inside ``async def``, and coroutine calls that
    are never awaited.
REP005
    Import layering: the DESIGN.md layer map is parsed and upward imports
    (a lower layer importing a higher one, or anything outside
    ``repro.cli``/``repro.net`` importing ``repro.net``) fail the lint.
REP006
    Public docstring coverage of the scanned tree stays at or above the
    pinned threshold (folds ``tools/check_docstrings.py`` into this
    analyzer's single JSON report).

Usage
-----
::

    python -m tools.reprolint src                 # human output, exit 1 on findings
    python -m tools.reprolint src --format json   # machine-readable report
    python -m tools.reprolint --list-rules        # registry + suppression counts
"""

from tools.reprolint.engine import FileContext, LintResult, lint_paths, lint_source
from tools.reprolint.layers import LayerMap, parse_layer_map
from tools.reprolint.pragmas import Pragma, parse_pragmas
from tools.reprolint.rules import (
    DOCSTRING_COVERAGE_THRESHOLD,
    Finding,
    Rule,
    Suppression,
    all_rules,
    get_rule,
)

__all__ = [
    "DOCSTRING_COVERAGE_THRESHOLD",
    "FileContext",
    "Finding",
    "LayerMap",
    "LintResult",
    "Pragma",
    "Rule",
    "Suppression",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "parse_layer_map",
    "parse_pragmas",
]
