"""Parse DESIGN.md's layer map into an import-layering contract (REP005).

The architecture document is the single source of truth for which layer sits
where; this module parses the fenced diagram under the ``## Layer map``
heading rather than duplicating the ranking in code.  A diagram line defines
a layer when (after stripping indentation) it *starts* with a module token —
``repro.<something>``, ``examples/`` or ``benchmarks/`` — so the box-drawing
connector lines and wrapped parenthetical descriptions are ignored.  Brace
groups expand (``repro.dht.{chord,can,kademlia}`` names three modules), and
every module named on the same diagram line shares one rank (rank 0 is the
top of the stack).

The contract checked by REP005:

* a module may import its own layer or any layer *below* it; importing a
  layer above is an upward import and a finding;
* ``repro.net`` plugs in beside the stack (see DESIGN.md): only
  ``repro.cli`` (and :mod:`repro.net` itself, e.g. its backend registry)
  may import it, regardless of rank;
* importing the bare package root ``repro`` (for ``__version__``) is
  rank-exempt — the root is version metadata plus re-exports;
* a parent package not named in the map inherits the *lowest* (bottom-most)
  rank of its mapped children, so e.g. ``repro.dht.messages`` sits with the
  deepest ``repro.dht`` entries.
"""

from __future__ import annotations

import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

__all__ = ["LayerMap", "parse_layer_map"]

#: Modules that may import ``repro.net`` from outside the package itself.
NET_IMPORTERS = ("repro.cli", "repro.net")

_TOKEN_RE = re.compile(r"^(repro\.[\w.{},]+|examples/|benchmarks/)")
_BRACE_RE = re.compile(r"^(?P<head>[\w.]+)\.\{(?P<group>[\w,]+)\}$")


@dataclass
class LayerMap:
    """Module-prefix → rank table (rank 0 = top of the stack)."""

    ranks: Dict[str, int] = field(default_factory=dict)
    source: Optional[pathlib.Path] = None

    @property
    def bottom(self) -> int:
        """The deepest rank in the map (0 when the map is empty)."""
        return max(self.ranks.values()) if self.ranks else 0

    def rank_of(self, module: str) -> Optional[int]:
        """The rank of ``module`` by longest mapped prefix (``None``: unmapped)."""
        parts = module.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.ranks:
                return self.ranks[prefix]
        return None

    def is_upward(self, importer: str, imported: str) -> bool:
        """Whether ``importer`` importing ``imported`` crosses a layer upward."""
        if imported == "repro":
            return False  # package root: version metadata, rank-exempt
        if imported == importer or imported.startswith(importer + "."):
            return False  # a package aggregating its own submodules
        importer_rank = self.rank_of(importer)
        imported_rank = self.rank_of(imported)
        if importer_rank is None or imported_rank is None:
            return False
        return importer_rank > imported_rank

    def net_violation(self, importer: str, imported: str) -> bool:
        """Whether this import breaches the ``repro.net`` isolation rule."""
        if not (imported == "repro.net" or imported.startswith("repro.net.")):
            return False
        return not any(importer == allowed or importer.startswith(allowed + ".")
                       for allowed in NET_IMPORTERS)


def _expand(token: str) -> List[str]:
    """Expand ``pkg.{a,b}`` brace groups; plain tokens pass through."""
    match = _BRACE_RE.match(token)
    if match is None:
        return [token]
    head = match.group("head")
    return [f"{head}.{name}" for name in match.group("group").split(",") if name]


def parse_layer_map(design_path: Union[str, pathlib.Path]) -> LayerMap:
    """Build the :class:`LayerMap` from DESIGN.md's ``## Layer map`` diagram.

    Raises :class:`ValueError` when the heading or its fenced block is
    missing — the layering rule must never silently pass because the
    document moved.
    """
    path = pathlib.Path(design_path)
    text = path.read_text(encoding="utf-8")
    heading = re.search(r"^##\s+Layer map\s*$", text, flags=re.MULTILINE)
    if heading is None:
        raise ValueError(f"{path}: no '## Layer map' heading")
    fence = re.search(r"```\n(?P<body>.*?)```", text[heading.end():],
                      flags=re.DOTALL)
    if fence is None:
        raise ValueError(f"{path}: no fenced diagram under '## Layer map'")

    layer_map = LayerMap(source=path)
    rank = 0
    for raw_line in fence.group("body").splitlines():
        line = raw_line.strip()
        if not _TOKEN_RE.match(line):
            continue  # connector / description line
        found_any = False
        for word in re.split(r"[\s─►│]+", line):
            if not (word.startswith("repro.") or word in ("examples/",
                                                          "benchmarks/")):
                continue
            for module in _expand(word.rstrip("/")):
                layer_map.ranks.setdefault(module, rank)
                found_any = True
        if found_any:
            rank += 1

    # Parent packages inherit the bottom-most rank of their mapped children
    # (e.g. ``repro.dht`` → the protocol-implementation rank), so sibling
    # modules the diagram does not name individually still get a layer.
    parents: Dict[str, int] = {}
    for module, module_rank in layer_map.ranks.items():
        parts = module.split(".")
        for cut in range(1, len(parts)):
            parent = ".".join(parts[:cut])
            if parent == "repro" or parent in layer_map.ranks:
                continue
            parents[parent] = max(parents.get(parent, 0), module_rank)
    layer_map.ranks.update(parents)
    return layer_map
