"""The reprolint rule registry and the REP001–REP006 checkers.

Each rule is a pure function over a parsed :class:`~tools.reprolint.engine.
FileContext` (REP006 aggregates over the whole scanned tree).  Checkers are
deliberately syntactic: they resolve dotted call names through the module's
import aliases (``import time as t`` still trips REP001) but do no type
inference — the dynamic test suite remains the semantic backstop, and the
``# reprolint: allow[RULE] reason=...`` pragma is the escape hatch for the
justified exceptions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from tools.check_docstrings import iter_public_objects

__all__ = [
    "DETERMINISTIC_LAYERS",
    "DOCSTRING_COVERAGE_THRESHOLD",
    "Finding",
    "Rule",
    "Suppression",
    "all_rules",
    "get_rule",
]

#: Layers in which wall-clock/ambient-randomness findings are never expected
#: to carry a pragma (the replay guarantees live here).
DETERMINISTIC_LAYERS = ("repro.core", "repro.dht", "repro.simulation",
                        "repro.api", "repro.execution")

#: Public docstring coverage the scanned tree must keep (percent).  The same
#: number ``tools/check_docstrings.py`` and ``tests/test_docs.py`` pin; the
#: three must stay in sync.
DOCSTRING_COVERAGE_THRESHOLD = 91.0

#: Wall-clock reads forbidden by REP001 (resolved through import aliases).
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Module-level ``random.*`` draws forbidden by REP002 (the ambient stream).
_AMBIENT_RANDOM = frozenset({
    "random.random", "random.randint", "random.randrange", "random.choice",
    "random.choices", "random.shuffle", "random.sample", "random.uniform",
    "random.gauss", "random.normalvariate", "random.expovariate",
    "random.betavariate", "random.gammavariate", "random.lognormvariate",
    "random.triangular", "random.vonmisesvariate", "random.paretovariate",
    "random.weibullvariate", "random.getrandbits", "random.randbytes",
    "random.seed",
})

#: Blocking calls forbidden inside ``async def`` by REP004.
_BLOCKING_IN_ASYNC = frozenset({
    "time.sleep", "socket.socket", "socket.create_connection",
    "subprocess.run", "subprocess.Popen", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output", "os.system",
})

#: Set-returning methods whose direct iteration is unordered (REP003).
_SET_METHODS = frozenset({"union", "intersection", "difference",
                          "symmetric_difference"})

#: Mutating-accumulator methods that count as "feeding" output (REP003).
_ACCUMULATORS = frozenset({"append", "extend", "add", "insert", "update"})


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    column: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-report record."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "column": self.column, "message": self.message}


@dataclass(frozen=True)
class Suppression:
    """A finding silenced by a valid pragma (kept for reporting/counting)."""

    finding: Finding
    reason: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-report record: the silenced finding plus its justification."""
        payload = dict(self.finding.to_dict())
        payload["reason"] = self.reason
        return payload


@dataclass(frozen=True)
class Rule:
    """Registry entry: id, one-line summary and the layers it applies to."""

    id: str
    summary: str
    layers: str
    check: Optional[Callable[..., List[Finding]]] = None


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolve(dotted: Optional[str], aliases: Dict[str, str]) -> Optional[str]:
    """Expand the first segment of ``dotted`` through the import aliases."""
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    expanded = aliases.get(head, head)
    return f"{expanded}.{rest}" if rest else expanded


def collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name → dotted origin for every import in the module.

    ``import time as t`` maps ``t -> time``; ``from datetime import datetime``
    maps ``datetime -> datetime.datetime``; ``from time import perf_counter``
    maps ``perf_counter -> time.perf_counter``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                aliases[local] = name.name if name.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def _call_name(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    return _resolve(_dotted(node.func), aliases)


# ---------------------------------------------------------------- REP001
def check_wall_clock(ctx) -> List[Finding]:
    """REP001: no wall-clock reads; simulated/injected time only."""
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = _call_name(node, ctx.aliases)
        if resolved in _WALL_CLOCK:
            findings.append(Finding(
                rule="REP001", path=ctx.path, line=node.lineno,
                column=node.col_offset,
                message=f"wall-clock read {resolved}() — deterministic "
                        "layers must take time from the simulation clock or "
                        "an injected parameter"))
    return findings


# ---------------------------------------------------------------- REP002
def _enclosing_function_names(tree: ast.Module) -> Dict[int, str]:
    """Line → name of the innermost function owning that line."""
    owner: Dict[int, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = getattr(node, "end_lineno", node.lineno)
            for line in range(node.lineno, end + 1):
                owner[line] = node.name  # inner defs overwrite outer ones
    return owner


def check_ambient_random(ctx) -> List[Finding]:
    """REP002: randomness must be parameter-injected, never ambient."""
    findings = []
    in_deterministic = ctx.module is not None and ctx.module.startswith(
        DETERMINISTIC_LAYERS)
    owners = _enclosing_function_names(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = _call_name(node, ctx.aliases)
        if resolved in _AMBIENT_RANDOM:
            findings.append(Finding(
                rule="REP002", path=ctx.path, line=node.lineno,
                column=node.col_offset,
                message=f"ambient RNG draw {resolved}() — inject a seeded "
                        "random.Random instead of the module-level stream"))
        elif (resolved == "random.Random" and not node.args
                and not node.keywords):
            findings.append(Finding(
                rule="REP002", path=ctx.path, line=node.lineno,
                column=node.col_offset,
                message="unseeded random.Random() — pass an explicit seed "
                        "(or thread the caller's rng) so runs replay"))
        elif (resolved == "hash" and in_deterministic
                and owners.get(node.lineno) != "__hash__"):
            findings.append(Finding(
                rule="REP002", path=ctx.path, line=node.lineno,
                column=node.col_offset,
                message="built-in hash() is PYTHONHASHSEED-sensitive — use "
                        "repro.dht.hashing (or hashlib) for values that "
                        "reach ordered or persisted output"))
    return findings


# ---------------------------------------------------------------- REP003
def _is_unordered_iterable(node: ast.AST) -> Optional[str]:
    """A short description when ``node`` iterates in hash/arbitrary order."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set",
                                                                "frozenset"):
            return f"{node.func.id}(...)"
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "keys":
                return ".keys()"
            if node.func.attr in _SET_METHODS:
                return f".{node.func.attr}(...)"
    return None


def _feeds_output(loop: ast.For) -> Optional[str]:
    """Why the loop body is order-sensitive, or ``None`` when it is not."""
    for node in ast.walk(loop):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return "yields values"
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _ACCUMULATORS:
                return f"accumulates via .{node.func.attr}()"
            dotted = _dotted(node.func) or ""
            segments = dotted.split(".")
            if any(segment in ("rng", "random") or segment.endswith("_rng")
                   or segment.lstrip("_") == "rng" for segment in segments[:-1]):
                return f"draws from an RNG ({dotted})"
            if dotted in ("json.dump", "json.dumps"):
                return "serialises output"
    return None


def check_order_dependence(ctx) -> List[Finding]:
    """REP003: unordered iteration must not feed RNG draws or results."""
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.For):
            continue
        unordered = _is_unordered_iterable(node.iter)
        if unordered is None:
            continue
        consequence = _feeds_output(node)
        if consequence is None:
            continue
        findings.append(Finding(
            rule="REP003", path=ctx.path, line=node.lineno,
            column=node.col_offset,
            message=f"iteration over {unordered} {consequence} — wrap the "
                    "iterable in sorted(...) to make the order (and any "
                    "RNG stream it feeds) reproducible"))
    return findings


# ---------------------------------------------------------------- REP004
def _module_level_async_defs(tree: ast.Module) -> Set[str]:
    """Names of async functions defined at module scope (not methods)."""
    return {node.name for node in tree.body
            if isinstance(node, ast.AsyncFunctionDef)}


def _async_methods_by_class(tree: ast.Module) -> Dict[str, Set[str]]:
    """Class name → its async method names (for ``self.x()`` detection)."""
    methods: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            methods[node.name] = {
                child.name for child in node.body
                if isinstance(child, ast.AsyncFunctionDef)}
    return methods


def check_async_hygiene(ctx) -> List[Finding]:
    """REP004: no blocking calls in ``async def``; await every coroutine."""
    if ctx.module is None or not (ctx.module == "repro.net"
                                  or ctx.module.startswith("repro.net.")):
        return []
    findings = []
    module_async = _module_level_async_defs(ctx.tree)
    class_async = _async_methods_by_class(ctx.tree)
    sleep_lines: Set[int] = set()

    for outer in ast.walk(ctx.tree):
        if not isinstance(outer, ast.AsyncFunctionDef):
            continue
        for node in ast.walk(outer):
            if not isinstance(node, ast.Call):
                continue
            resolved = _call_name(node, ctx.aliases)
            if resolved in _BLOCKING_IN_ASYNC or resolved == "open":
                findings.append(Finding(
                    rule="REP004", path=ctx.path, line=node.lineno,
                    column=node.col_offset,
                    message=f"blocking call {resolved}() inside async def "
                            f"{outer.name}() stalls the event loop — use the "
                            "asyncio equivalent or run_in_executor"))
                if resolved == "time.sleep":
                    sleep_lines.add(node.lineno)

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            resolved = _call_name(node, ctx.aliases)
            if resolved == "time.sleep" and node.lineno not in sleep_lines:
                findings.append(Finding(
                    rule="REP004", path=ctx.path, line=node.lineno,
                    column=node.col_offset,
                    message="time.sleep() in repro.net — the transport "
                            "package runs next to an event loop; use "
                            "asyncio.sleep (or justify a pacing sleep with "
                            "a pragma)"))
        if (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id in module_async):
            findings.append(Finding(
                rule="REP004", path=ctx.path, line=node.lineno,
                column=node.col_offset,
                message=f"coroutine {node.value.func.id}() is called but "
                        "never awaited — the body will not run"))

    # ``self.x()`` statements are un-awaited coroutines only when ``x`` is an
    # async method of the *enclosing* class (another class may define a sync
    # method of the same name — e.g. ServerThread.stop vs. Server.stop).
    for klass in ast.walk(ctx.tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        own_async = class_async.get(klass.name, set())
        if not own_async:
            continue
        for node in ast.walk(klass):
            if (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr in own_async
                    and isinstance(node.value.func.value, ast.Name)
                    and node.value.func.value.id == "self"):
                findings.append(Finding(
                    rule="REP004", path=ctx.path, line=node.lineno,
                    column=node.col_offset,
                    message=f"coroutine {klass.name}."
                            f"{node.value.func.attr}() is called but never "
                            "awaited — the body will not run"))
    return findings


# ---------------------------------------------------------------- REP005
def _in_type_checking_block(tree: ast.Module) -> Set[int]:
    """Line numbers inside ``if TYPE_CHECKING:`` bodies (annotation-only)."""
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = test.id if isinstance(test, ast.Name) else (
            test.attr if isinstance(test, ast.Attribute) else None)
        if name != "TYPE_CHECKING":
            continue
        for child in node.body:
            end = getattr(child, "end_lineno", child.lineno)
            lines.update(range(child.lineno, end + 1))
    return lines


def check_layering(ctx, layer_map) -> List[Finding]:
    """REP005: no upward imports across the DESIGN.md layer map."""
    if ctx.module is None or layer_map is None:
        return []
    findings = []
    annotation_only = _in_type_checking_block(ctx.tree)
    importer = ctx.module
    for node in ast.walk(ctx.tree):
        targets: List[str] = []
        if isinstance(node, ast.Import):
            targets = [name.name for name in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            targets = [node.module]
        if not targets or node.lineno in annotation_only:
            continue
        for imported in targets:
            if not imported.startswith("repro"):
                continue
            if layer_map.net_violation(importer, imported):
                findings.append(Finding(
                    rule="REP005", path=ctx.path, line=node.lineno,
                    column=node.col_offset,
                    message=f"{importer} imports {imported}: repro.net is a "
                            "leaf subsystem — only repro.cli (and repro.net "
                            "itself) may depend on it"))
            elif layer_map.is_upward(importer, imported):
                findings.append(Finding(
                    rule="REP005", path=ctx.path, line=node.lineno,
                    column=node.col_offset,
                    message=f"upward import: {importer} (layer "
                            f"{layer_map.rank_of(importer)}) imports "
                            f"{imported} (layer {layer_map.rank_of(imported)}) "
                            "— lower layers must not depend on higher ones "
                            "(DESIGN.md layer map)"))
    return findings


# ---------------------------------------------------------------- REP006
def check_docstring_coverage(contexts) -> Tuple[List[Finding], Dict[str, object]]:
    """REP006: aggregate public docstring coverage of the scanned tree.

    Returns the findings (one per undocumented object, only when the
    aggregate falls below :data:`DOCSTRING_COVERAGE_THRESHOLD`) plus the
    coverage summary embedded in the JSON report either way.
    """
    documented = 0
    total = 0
    missing: List[Tuple[str, str]] = []
    for ctx in contexts:
        if ctx.module is None:
            continue
        for name, has_docstring in iter_public_objects(ctx.tree, ctx.path):
            total += 1
            if has_docstring:
                documented += 1
            else:
                missing.append((ctx.path, name))
    percent = 100.0 * documented / total if total else 100.0
    summary: Dict[str, object] = {
        "documented": documented, "total": total,
        "percent": round(percent, 2),
        "threshold": DOCSTRING_COVERAGE_THRESHOLD,
    }
    findings: List[Finding] = []
    if percent < DOCSTRING_COVERAGE_THRESHOLD:
        for path, name in missing:
            findings.append(Finding(
                rule="REP006", path=path, line=1, column=0,
                message=f"undocumented public object {name} (tree coverage "
                        f"{percent:.1f}% is below the pinned "
                        f"{DOCSTRING_COVERAGE_THRESHOLD:.1f}%)"))
    return findings, summary


# ----------------------------------------------------------------- registry
_RULES: Tuple[Rule, ...] = (
    Rule(id="REP000",
         summary="pragma without a reason= justification (never suppresses)",
         layers="anywhere a pragma appears"),
    Rule(id="REP001",
         summary="no wall-clock reads (time.time/monotonic/perf_counter, "
                 "datetime.now/utcnow)",
         layers="all of repro; strict in core, dht, simulation, api, "
                "execution (measurement harnesses pragma themselves)",
         check=check_wall_clock),
    Rule(id="REP002",
         summary="no ambient randomness: module-level random.*, unseeded "
                 "random.Random(), PYTHONHASHSEED-sensitive hash()",
         layers="all of repro (hash() check: core, dht, simulation, api, "
                "execution)",
         check=check_ambient_random),
    Rule(id="REP003",
         summary="unordered set/dict.keys() iteration feeding RNG draws, "
                 "accumulated results or serialised output",
         layers="all of repro",
         check=check_order_dependence),
    Rule(id="REP004",
         summary="async hygiene: blocking calls in async def, bare "
                 "time.sleep, un-awaited coroutines",
         layers="repro.net",
         check=check_async_hygiene),
    Rule(id="REP005",
         summary="import layering per the DESIGN.md layer map (no upward "
                 "imports; repro.net only from repro.cli)",
         layers="all of repro (contract parsed from DESIGN.md)"),
    Rule(id="REP006",
         summary=f"public docstring coverage >= "
                 f"{DOCSTRING_COVERAGE_THRESHOLD:.1f}% over the scanned tree",
         layers="all of repro (aggregate, folded from "
                "tools/check_docstrings.py)"),
)


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, in id order."""
    return _RULES


def get_rule(rule_id: str) -> Rule:
    """The registry entry for ``rule_id`` (raises ``KeyError`` if unknown)."""
    for rule in _RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(rule_id)
