"""``# reprolint: allow[RULE] reason=...`` escape pragmas.

A pragma suppresses findings of the named rule(s) on the line it annotates:
either the line the pragma comment sits on (trailing comment), or — when the
pragma is a standalone comment line — the next source line.  A pragma
**must** carry a non-empty ``reason=``; the reason is the written
justification reviewers (and ``--list-rules``) see, and by convention it
names the dynamic test that pins the excused behaviour.  A pragma without a
reason never suppresses anything and is itself reported as rule ``REP000``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["Pragma", "parse_pragmas"]

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*allow\[(?P<rules>[A-Za-z0-9_,\s]*)\]\s*(?P<rest>.*)$")
_REASON_RE = re.compile(r"reason\s*=\s*(?P<reason>.+)$")


@dataclass(frozen=True)
class Pragma:
    """One parsed pragma comment.

    ``line`` is the 1-indexed line of the comment; ``covers`` the lines it
    suppresses on (the pragma line itself, plus the next line when the
    pragma stands alone on its own line).  ``rules`` is the tuple of rule
    ids inside ``allow[...]`` and ``reason`` the justification text
    (empty string when missing — such a pragma is inert and flagged).
    """

    line: int
    rules: Tuple[str, ...]
    reason: str
    covers: Tuple[int, ...]

    @property
    def valid(self) -> bool:
        """Whether the pragma can suppress findings (has rules and a reason)."""
        return bool(self.rules) and bool(self.reason.strip())


def parse_pragmas(source_lines: Sequence[str]) -> List[Pragma]:
    """Extract every reprolint pragma from ``source_lines`` (1-indexed)."""
    pragmas: List[Pragma] = []
    for index, line in enumerate(source_lines, start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = tuple(rule.strip().upper()
                      for rule in match.group("rules").split(",")
                      if rule.strip())
        reason_match = _REASON_RE.search(match.group("rest").strip())
        reason = reason_match.group("reason").strip() if reason_match else ""
        standalone = line[:match.start()].strip() == ""
        covers = (index, index + 1) if standalone else (index,)
        pragmas.append(Pragma(line=index, rules=rules, reason=reason,
                              covers=covers))
    return pragmas
