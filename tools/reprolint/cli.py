"""Command-line front end: ``python -m tools.reprolint src [options]``.

Exit status: 0 when the tree is clean, 1 when findings remain, 2 on usage
errors (no paths, unreadable design document).  ``--format json`` emits the
machine-readable report CI archives; ``--list-rules`` prints the registry
with each rule's current suppression count over the scanned paths.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from tools.reprolint.engine import LintResult, lint_paths
from tools.reprolint.rules import all_rules

__all__ = ["main"]


def _human_report(result: LintResult) -> str:
    lines: List[str] = []
    for finding in result.findings:
        lines.append(f"{finding.path}:{finding.line}:{finding.column + 1}: "
                     f"{finding.rule} {finding.message}")
    coverage = result.docstring_coverage
    if coverage:
        lines.append(
            f"docstring coverage: {coverage['percent']}% "
            f"({coverage['documented']}/{coverage['total']} public objects, "
            f"threshold {coverage['threshold']}%)")
    lines.append(
        f"reprolint: {len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed by pragma, "
        f"{result.files_scanned} file(s) scanned")
    return "\n".join(lines)


def _json_report(result: LintResult, paths: List[str]) -> str:
    counts = result.counts_by_rule()
    payload = {
        "tool": "reprolint",
        "paths": paths,
        "ok": result.ok,
        "files_scanned": result.files_scanned,
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [s.to_dict() for s in result.suppressed],
        "docstring_coverage": result.docstring_coverage,
        "rules": [
            {"id": rule.id, "summary": rule.summary, "layers": rule.layers,
             "findings": counts.get(rule.id, {}).get("findings", 0),
             "suppressed": counts.get(rule.id, {}).get("suppressed", 0)}
            for rule in all_rules()
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _list_rules(result: Optional[LintResult]) -> str:
    counts = result.counts_by_rule() if result is not None else {}
    lines = []
    for rule in all_rules():
        suppressed = counts.get(rule.id, {}).get("suppressed", 0)
        lines.append(f"{rule.id}  {rule.summary}")
        lines.append(f"        layers: {rule.layers}")
        lines.append(f"        suppressions in scanned paths: {suppressed}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, lint, report; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Static enforcement of the repo's determinism, async "
                    "and layering invariants (REP001-REP006).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (e.g. src)")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", help="report format")
    parser.add_argument("--output", metavar="FILE",
                        help="also write the report to FILE")
    parser.add_argument("--design", metavar="PATH",
                        help="architecture document holding the layer map "
                             "(default: the repository DESIGN.md)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry (id, summary, layers, "
                             "suppression count over the scanned paths)")
    args = parser.parse_args(argv)

    if not args.paths and not args.list_rules:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try: python -m tools.reprolint src)",
              file=sys.stderr)
        return 2

    paths = args.paths or (["src"] if args.list_rules else [])
    try:
        result = lint_paths(paths, design_path=args.design)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.list_rules:
        print(_list_rules(result))
        return 0

    report = (_json_report(result, paths) if args.format == "json"
              else _human_report(result))
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 0 if result.ok else 1
