"""The reprolint engine: parse files, run rules, apply pragmas.

:func:`lint_paths` is the entry point the CLI and CI use; :func:`lint_source`
lints a single in-memory snippet and is what the fixture tests in
``tests/analysis/`` drive.  Pragma application is uniform across rules (the
pragma must name the finding's rule and cover its line) with one exception:
REP006 (aggregate docstring coverage) is a tree-level property and cannot be
pragma'd away — fix the docstrings or change the pinned threshold.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from tools.reprolint.layers import LayerMap, parse_layer_map
from tools.reprolint.pragmas import Pragma, parse_pragmas
from tools.reprolint.rules import (
    Finding,
    Suppression,
    check_ambient_random,
    check_async_hygiene,
    check_docstring_coverage,
    check_layering,
    check_order_dependence,
    check_wall_clock,
    collect_aliases,
)

__all__ = ["FileContext", "LintResult", "lint_paths", "lint_source"]

#: Default location of the architecture document holding the layer map.
DEFAULT_DESIGN = pathlib.Path(__file__).resolve().parents[2] / "DESIGN.md"


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed source file."""

    path: str
    module: Optional[str]
    tree: ast.Module
    lines: Sequence[str]
    aliases: Dict[str, str] = field(default_factory=dict)
    pragmas: List[Pragma] = field(default_factory=list)


@dataclass
class LintResult:
    """Outcome of a lint run: live findings, suppressions and coverage."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Suppression] = field(default_factory=list)
    docstring_coverage: Dict[str, object] = field(default_factory=dict)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing is left to fix."""
        return not self.findings

    def counts_by_rule(self) -> Dict[str, Dict[str, int]]:
        """``{rule: {"findings": n, "suppressed": m}}`` over this run."""
        counts: Dict[str, Dict[str, int]] = {}
        for finding in self.findings:
            counts.setdefault(finding.rule,
                              {"findings": 0, "suppressed": 0})["findings"] += 1
        for suppression in self.suppressed:
            counts.setdefault(suppression.finding.rule,
                              {"findings": 0, "suppressed": 0})["suppressed"] += 1
        return counts


def module_name_for(path: pathlib.Path) -> Optional[str]:
    """Dotted module name, derived from the path parts starting at ``repro``.

    ``src/repro/dht/model.py`` → ``repro.dht.model``;
    ``.../repro/core/__init__.py`` → ``repro.core``.  Files outside a
    ``repro`` tree get ``None`` (layer/package-scoped rules skip them).
    """
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    tail = parts[parts.index("repro"):]
    if tail[-1] == "__init__.py":
        tail = tail[:-1]
    else:
        tail[-1] = tail[-1][:-3] if tail[-1].endswith(".py") else tail[-1]
    return ".".join(tail)


def _build_context(path: pathlib.Path, source: str,
                   module: Optional[str] = None) -> FileContext:
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    return FileContext(
        path=str(path),
        module=module if module is not None else module_name_for(path),
        tree=tree,
        lines=lines,
        aliases=collect_aliases(tree),
        pragmas=parse_pragmas(lines),
    )


def _per_file_findings(ctx: FileContext,
                       layer_map: Optional[LayerMap]) -> List[Finding]:
    findings: List[Finding] = []
    findings.extend(check_wall_clock(ctx))
    findings.extend(check_ambient_random(ctx))
    findings.extend(check_order_dependence(ctx))
    findings.extend(check_async_hygiene(ctx))
    findings.extend(check_layering(ctx, layer_map))
    return findings


def _apply_pragmas(ctx: FileContext, findings: Iterable[Finding],
                   ) -> Tuple[List[Finding], List[Suppression]]:
    """Split findings into live vs. suppressed; flag reason-less pragmas."""
    live: List[Finding] = []
    suppressed: List[Suppression] = []
    for finding in findings:
        pragma = next(
            (p for p in ctx.pragmas
             if p.valid and finding.rule in p.rules
             and finding.line in p.covers),
            None)
        if pragma is None:
            live.append(finding)
        else:
            suppressed.append(Suppression(finding=finding,
                                          reason=pragma.reason))
    for pragma in ctx.pragmas:
        if not pragma.valid:
            live.append(Finding(
                rule="REP000", path=ctx.path, line=pragma.line, column=0,
                message="reprolint pragma without a reason= justification — "
                        "it suppresses nothing; state which dynamic test "
                        "pins the excused behaviour"))
    return live, suppressed


def _iter_python_files(paths: Sequence[Union[str, pathlib.Path]],
                       ) -> List[pathlib.Path]:
    files: List[pathlib.Path] = []
    for entry in paths:
        path = pathlib.Path(entry)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_source(source: str, module: Optional[str] = None,
                path: str = "<string>",
                layer_map: Optional[LayerMap] = None) -> LintResult:
    """Lint one in-memory snippet (fixture-test entry point).

    REP006 is not evaluated here — aggregate coverage over a one-file
    snippet is meaningless; the fixture tests exercise it through
    :func:`lint_paths` on a temporary tree instead.
    """
    ctx = _build_context(pathlib.Path(path), source, module=module)
    findings, suppressed = _apply_pragmas(
        ctx, _per_file_findings(ctx, layer_map))
    return LintResult(findings=findings, suppressed=suppressed,
                      files_scanned=1)


def lint_paths(paths: Sequence[Union[str, pathlib.Path]],
               design_path: Optional[Union[str, pathlib.Path]] = None,
               ) -> LintResult:
    """Lint every ``*.py`` file under ``paths``; the CLI/CI entry point.

    ``design_path`` overrides where the DESIGN.md layer map is read from
    (defaults to the repository's DESIGN.md next to ``tools/``); pass a path
    whose document lacks the map to get a hard :class:`ValueError` — the
    layering rule never silently no-ops.
    """
    design = pathlib.Path(design_path) if design_path else DEFAULT_DESIGN
    layer_map = parse_layer_map(design) if design.exists() else None
    if layer_map is None:
        raise ValueError(f"layer map source not found: {design}")

    result = LintResult()
    contexts: List[FileContext] = []
    for path in _iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        try:
            ctx = _build_context(path, source)
        except SyntaxError as exc:
            result.findings.append(Finding(
                rule="REP000", path=str(path), line=exc.lineno or 1, column=0,
                message=f"file does not parse: {exc.msg}"))
            continue
        contexts.append(ctx)
        live, suppressed = _apply_pragmas(
            ctx, _per_file_findings(ctx, layer_map))
        result.findings.extend(live)
        result.suppressed.extend(suppressed)

    coverage_findings, summary = check_docstring_coverage(contexts)
    result.findings.extend(coverage_findings)  # never pragma-suppressible
    result.docstring_coverage = summary
    result.files_scanned = len(contexts)
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return result
