"""Micro-benchmarks of the core operations (wall-clock cost of the library itself).

These complement the figure benchmarks: the figures report *simulated* response
times, while these measure the real execution cost of the main public
operations (insert, retrieve, gen_ts, overlay routing) so regressions in the
implementation are visible.
"""

from __future__ import annotations

import random

import pytest

from repro.core import build_service_stack
from repro.dht.chord import ChordRing
from repro.dht.can import CanSpace


@pytest.fixture(scope="module")
def stack():
    built = build_service_stack(num_peers=256, num_replicas=10, seed=99)
    built.ums.insert("warm-key", {"body": "warm"})
    built.brk.insert("warm-key-brk", {"body": "warm"})
    return built


def test_ums_insert_throughput(benchmark, stack):
    counter = iter(range(10**9))

    def insert():
        stack.ums.insert(f"bench-insert-{next(counter)}", {"body": "payload"})

    benchmark(insert)


def test_ums_retrieve_throughput(benchmark, stack):
    result = benchmark(lambda: stack.ums.retrieve("warm-key"))
    assert result.is_current


def test_brk_retrieve_throughput(benchmark, stack):
    result = benchmark(lambda: stack.brk.retrieve("warm-key-brk"))
    assert result.found


def test_kts_gen_ts_throughput(benchmark, stack):
    benchmark(lambda: stack.kts.gen_ts("warm-key"))


def test_chord_routing_throughput(benchmark):
    ring = ChordRing(bits=32)
    rng = random.Random(3)
    for _ in range(2000):
        ring.add_node(rng.randrange(1 << 32))
    nodes = list(ring.nodes())

    def route():
        ring.route(nodes[rng.randrange(len(nodes))], rng.randrange(1 << 32))

    benchmark(route)


def test_can_routing_throughput(benchmark):
    space = CanSpace(bits=32, dimensions=2, rng=random.Random(4))
    rng = random.Random(5)
    for _ in range(200):
        node = rng.randrange(1 << 32)
        while node in space:
            node = rng.randrange(1 << 32)
        space.add_node(node)
    nodes = list(space.nodes())

    def route():
        space.route(nodes[rng.randrange(len(nodes))], rng.randrange(1 << 32))

    benchmark(route)


def test_network_churn_throughput(benchmark, stack):
    def churn_once():
        victim = stack.network.random_alive_peer()
        stack.network.leave_peer(victim)
        stack.network.join_peer()

    benchmark(churn_once)
