"""Theorem 1 / Section 3.3 — expected number of retrieved replicas vs p_t.

Regenerates the cost-analysis table and validates it against an *empirical*
measurement: replicas of a key are selectively made stale so that the
probability of currency and availability equals the target p_t, and the
average number of replicas UMS actually probes is compared with the theory.
"""

from __future__ import annotations

import random

import pytest

from repro.core import analysis, build_service_stack
from repro.experiments import figures


def measured_probe_count(pt: float, num_replicas: int = 10, queries: int = 300,
                         seed: int = 7) -> float:
    """Average number of replicas UMS probes when a fraction ``pt`` is current."""
    from repro.core.timestamps import Timestamp
    from repro.dht.storage import StoredValue

    stack = build_service_stack(num_peers=64, num_replicas=num_replicas, seed=seed)
    rng = random.Random(seed)
    stack.ums.insert("k", "v0")
    stack.ums.insert("k", "v1")
    # Make exactly (1 - pt)·|Hr| replicas stale by rolling them back to the old
    # timestamp in place (bypassing reconciliation), so the probability of
    # currency and availability equals the target pt.
    stale_count = round((1.0 - pt) * num_replicas)
    for hash_fn in rng.sample(list(stack.replication), stale_count):
        responsible = stack.network.responsible_peer("k", hash_fn)
        stale = StoredValue(key="k", data="v0", timestamp=Timestamp("k", 1),
                            hash_name=hash_fn.name, point=hash_fn("k"))
        stack.network.peer(responsible).store.put(stale, reconcile=False)
    total = 0
    for _ in range(queries):
        total += stack.ums.retrieve("k").replicas_inspected
    return total / queries


def test_expected_retrievals_theory_table(benchmark, record_table):
    table = benchmark.pedantic(figures.expected_retrievals_table, rounds=1, iterations=1)
    record_table(table, benchmark)
    rows = {row["x"]: row for row in table.rows}
    # The paper's headline example: pt = 0.35 -> fewer than 3 retrieved replicas.
    assert rows[0.35]["E[X] (Eq. 1)"] < 3.0
    assert rows[0.35]["1/pt bound"] < 3.0
    # Theorem 1 bound holds on every row.
    for pt, row in rows.items():
        if pt > 0:
            assert row["E[X] (Eq. 1)"] <= 1.0 / pt + 1e-9


@pytest.mark.parametrize("pt", [0.3, 0.5, 0.8, 1.0])
def test_measured_probes_match_the_geometric_model(benchmark, pt):
    measured = benchmark.pedantic(lambda: measured_probe_count(pt), rounds=1, iterations=1)
    predicted = analysis.expected_probes(pt, 10)
    benchmark.extra_info["pt"] = pt
    benchmark.extra_info["measured_probes"] = measured
    benchmark.extra_info["predicted_probes"] = predicted
    # The empirical mean stays within the theorem's bound and close to theory.
    assert measured <= min(1.0 / pt, 10.0) + 0.75
    assert measured == pytest.approx(predicted, rel=0.35, abs=0.75)
