"""Figure 7 — response time vs number of peers (wide-area simulation).

Runs the Table 1 workload over the peer-count sweep for BRK, UMS-Indirect and
UMS-Direct, and checks the paper's claims: response time grows slowly
(logarithmically) with the number of peers and UMS dominates BRK.
"""

from __future__ import annotations

from repro.experiments import figures


def test_figure7_response_time_vs_peers(benchmark, bench_scale, bench_seed,
                                        sweep_cache, record_table):
    def run():
        data = figures.scaleup_results(bench_scale, seed=bench_seed)
        sweep_cache[("scaleup", bench_scale, bench_seed)] = data
        return figures.figure7_simulated_scaleup(bench_scale, seed=bench_seed,
                                                 precomputed=data)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(table, benchmark)

    peers = table.x_values()
    brk = table.series_values("BRK")
    direct = table.series_values("UMS-Direct")
    indirect = table.series_values("UMS-Indirect")

    # Ordering: UMS-Direct <= UMS-Indirect < BRK at every population size.
    for d, i, b in zip(direct, indirect, brk):
        assert d < b
        assert i < b
    assert sum(direct) / len(direct) <= sum(indirect) / len(indirect)

    # Sub-linear growth: the largest network is >= 4x the smallest, but BRK's
    # response time grows far less than proportionally (logarithmic routing).
    assert peers[-1] / peers[0] >= 4
    assert brk[-1] / brk[0] < 2.0
