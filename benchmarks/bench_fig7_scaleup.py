"""Figure 7 — response time vs number of peers (wide-area simulation).

Runs the Table 1 workload over the peer-count sweep for BRK, UMS-Indirect and
UMS-Direct, and checks the paper's claims: response time grows slowly
(logarithmically) with the number of peers and UMS dominates BRK.

The sweep runs once per overlay in ``bench_overlays`` (default: a Chord
series and a Kademlia series; set ``REPRO_BENCH_OVERLAYS`` to change it), so
the same cost curves exist for every registered routing substrate.
"""

from __future__ import annotations

from repro.experiments import figures


def test_figure7_response_time_vs_peers(benchmark, bench_scale, bench_seed,
                                        bench_overlays, bench_executor,
                                        sweep_cache, record_table):
    def run():
        tables = {}
        for overlay in bench_overlays:
            data = figures.scaleup_results(bench_scale, seed=bench_seed,
                                           protocol=overlay,
                                           executor=bench_executor)
            sweep_cache[("scaleup", bench_scale, bench_seed, overlay)] = data
            tables[overlay] = figures.figure7_simulated_scaleup(
                bench_scale, seed=bench_seed, protocol=overlay, precomputed=data)
        return tables

    tables = benchmark.pedantic(run, rounds=1, iterations=1)

    for overlay in bench_overlays:
        table = tables[overlay]
        record_table(table, benchmark)

        peers = table.x_values()
        brk = table.series_values("BRK")
        direct = table.series_values("UMS-Direct")
        indirect = table.series_values("UMS-Indirect")

        # Ordering: UMS-Direct <= UMS-Indirect < BRK at every population size.
        for d, i, b in zip(direct, indirect, brk):
            assert d < b, overlay
            assert i < b, overlay
        assert sum(direct) / len(direct) <= sum(indirect) / len(indirect), overlay

        # Sub-linear growth: when the sweep spans >= 4x in population, BRK's
        # response time must grow far less than proportionally (logarithmic
        # routing — on Kademlia exactly as on Chord).  The tiny profile's
        # 2-point sweep is too narrow for a meaningful growth check.
        if peers[-1] / peers[0] >= 4:
            assert brk[-1] / brk[0] < 2.0, overlay
