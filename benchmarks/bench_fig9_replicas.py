"""Figure 9 — response time vs number of replicas (|Hr| sweep).

The paper's finding: the replica count strongly affects BRK, slightly affects
UMS-Indirect (only when a counter has to be re-initialised) and has no
systematic effect on UMS-Direct.
"""

from __future__ import annotations

from repro.experiments import figures


def test_figure9_response_time_vs_replicas(benchmark, bench_scale, bench_seed,
                                           bench_executor, sweep_cache,
                                           record_table):
    def run():
        data = figures.replica_sweep_results(bench_scale, seed=bench_seed,
                                             executor=bench_executor)
        sweep_cache[("replicas", bench_scale, bench_seed)] = data
        return figures.figure9_replicas_response_time(bench_scale, seed=bench_seed,
                                                      precomputed=data)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(table, benchmark)

    replicas = table.x_values()
    brk = table.series_values("BRK")
    direct = table.series_values("UMS-Direct")

    # BRK response time scales roughly with |Hr| (it retrieves all replicas).
    brk_growth = brk[-1] / brk[0]
    span = replicas[-1] / replicas[0]
    assert brk_growth > 0.4 * span
    # UMS-Direct stays comparatively flat: its growth over the sweep is a small
    # fraction of BRK's (individual points fluctuate with 30 queries each, so
    # the comparison is relative rather than absolute).
    direct_growth = direct[-1] / direct[0]
    assert direct_growth < 0.5 * brk_growth
    # And UMS-Direct wins at every replica count.
    assert all(d < b for d, b in zip(direct, brk))
