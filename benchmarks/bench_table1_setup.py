"""Table 1 — simulation parameters and the cost of standing up the simulated testbed.

The benchmark measures how long it takes to build the full simulation
substrate at the profile's base population (network construction, replication
scheme, services and the initial data placement), and records the Table 1
parameter values actually used.
"""

from __future__ import annotations

from repro.experiments import figures
from repro.simulation.config import Algorithm, SimulationParameters
from repro.simulation.harness import SimulationHarness


def test_table1_parameters_and_setup_cost(benchmark, bench_scale, bench_seed, record_table):
    profile = figures.SCALE_PROFILES[bench_scale]
    parameters = SimulationParameters.table1(
        num_peers=int(profile["base_peers"]), num_keys=int(profile["num_keys"]),
        duration_s=float(profile["duration_s"]), algorithm=Algorithm.UMS_DIRECT,
        seed=bench_seed)

    def build():
        harness = SimulationHarness(parameters)
        harness.setup()
        return harness

    harness = benchmark.pedantic(build, rounds=1, iterations=1)
    table = figures.table1_parameters(bench_scale)
    record_table(table, benchmark)

    assert harness.network.size == parameters.num_peers
    assert harness.replication.factor == parameters.num_replicas
    rows = dict(zip(table.x_values(), table.series_values("value")))
    assert rows["peer departure rate (1/s)"] == 1.0
    assert rows["failure rate (% of departures)"] == 5.0
