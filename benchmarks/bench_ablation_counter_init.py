"""Ablation — direct vs indirect counter initialisation (the paper's own ablation).

Measures the cost of the operation the two modes differ on: obtaining a
timestamp for a key right after its responsible of timestamping changed.

* After a **normal leave**, UMS-Direct has the counter transferred (O(1)
  maintenance messages) so the next ``gen_ts`` costs one lookup, while
  UMS-Indirect must read all |Hr| replicas.
* After a **failure**, both modes pay the indirect initialisation.
"""

from __future__ import annotations

from repro.core import CounterInitialization, build_service_stack


def timestamp_messages_after_departure(initialization: str, *, fail: bool,
                                       seed: int = 5, num_replicas: int = 10) -> float:
    """Messages of the first gen_ts after the responsible of timestamping departs."""
    stack = build_service_stack(num_peers=128, num_replicas=num_replicas, seed=seed,
                                initialization=initialization)
    stack.ums.insert("k", "v0")
    responsible = stack.kts.responsible_of_timestamping("k")
    if fail:
        stack.network.fail_peer(responsible)
    else:
        stack.network.leave_peer(responsible)
    stack.network.join_peer()
    trace = stack.network.new_trace()
    stack.kts.gen_ts("k", trace=trace)
    return trace.message_count


def test_direct_transfer_makes_post_leave_timestamping_cheap(benchmark):
    direct = benchmark.pedantic(
        lambda: timestamp_messages_after_departure(CounterInitialization.DIRECT, fail=False),
        rounds=1, iterations=1)
    indirect = timestamp_messages_after_departure(CounterInitialization.INDIRECT, fail=False)
    benchmark.extra_info["direct_messages"] = direct
    benchmark.extra_info["indirect_messages"] = indirect
    # The indirect algorithm reads all |Hr| replicas: far more traffic.
    assert indirect > 2 * direct


def test_both_modes_pay_indirect_initialisation_after_a_failure(benchmark):
    direct = benchmark.pedantic(
        lambda: timestamp_messages_after_departure(CounterInitialization.DIRECT, fail=True),
        rounds=1, iterations=1)
    indirect = timestamp_messages_after_departure(CounterInitialization.INDIRECT, fail=True)
    benchmark.extra_info["direct_messages"] = direct
    benchmark.extra_info["indirect_messages"] = indirect
    # After a failure the direct mode has nothing to transfer from, so the two
    # costs are of the same order (the paper's explanation for Figure 11's
    # convergence at high failure rates).
    assert direct > 0.5 * indirect
