"""Figure 10 — communication cost vs number of replicas (|Hr| sweep)."""

from __future__ import annotations

from repro.experiments import figures


def test_figure10_messages_vs_replicas(benchmark, bench_scale, bench_seed, bench_executor,
                                       sweep_cache, record_table,
                                       record_cost_json):
    def run():
        data = sweep_cache.get(("replicas", bench_scale, bench_seed))
        if data is None:
            data = figures.replica_sweep_results(bench_scale, seed=bench_seed,
                                                 executor=bench_executor)
            sweep_cache[("replicas", bench_scale, bench_seed)] = data
        return (figures.figure10_replicas_messages(bench_scale, seed=bench_seed,
                                                   precomputed=data),
                figures.figure10_replicas_bytes(bench_scale, seed=bench_seed,
                                                precomputed=data))

    table, bytes_table = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(table, benchmark)
    record_table(bytes_table, benchmark)
    record_cost_json(table.experiment_id, table, bytes_table,
                     scale=bench_scale, seed=bench_seed, benchmark=benchmark)

    replicas = table.x_values()
    brk = table.series_values("BRK")
    direct = table.series_values("UMS-Direct")

    # BRK's traffic grows (roughly) linearly with the replica count.
    brk_growth = brk[-1] / brk[0]
    assert brk_growth > 0.5 * (replicas[-1] / replicas[0])
    # UMS-Direct traffic is dominated by the KTS lookup + a couple of probes and
    # grows far more slowly than BRK's.
    assert direct[-1] / direct[0] < 0.5 * brk_growth
    assert all(d < b for d, b in zip(direct, brk))

    # The byte-denominated curve mirrors it: each extra replica costs BRK a
    # data-sized reply, so bytes grow with |Hr| and stay above UMS-Direct.
    brk_bytes = bytes_table.series_values("BRK")
    direct_bytes = bytes_table.series_values("UMS-Direct")
    assert brk_bytes[-1] > brk_bytes[0]
    assert all(d < b for d, b in zip(direct_bytes, brk_bytes))
