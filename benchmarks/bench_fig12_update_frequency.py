"""Figure 12 — response time vs frequency of updates (UMS only).

The paper's finding: more frequent updates shrink the window during which
replicas can be missing or stale, raising the probability of currency and
availability, so UMS retrieves fewer replicas and responds faster.
"""

from __future__ import annotations

from repro.experiments import figures


def test_figure12_response_time_vs_update_frequency(benchmark, bench_scale, bench_seed,
                                                    bench_executor, record_table):
    table = benchmark.pedantic(
        lambda: figures.figure12_update_frequency(bench_scale, seed=bench_seed,
                                                  executor=bench_executor),
        rounds=1, iterations=1)
    record_table(table, benchmark)

    assert set(table.series) == {"UMS-Direct", "UMS-Indirect"}
    direct = table.series_values("UMS-Direct")
    indirect = table.series_values("UMS-Indirect")

    # Response time does not increase with the update frequency: the most
    # frequently updated configuration is at least as fast as the least
    # frequently updated one for both variants.
    assert direct[-1] <= direct[0] * 1.15
    assert indirect[-1] <= indirect[0] * 1.15
    # UMS-Direct stays at or below UMS-Indirect on average.
    assert sum(direct) / len(direct) <= sum(indirect) / len(indirect) * 1.05
