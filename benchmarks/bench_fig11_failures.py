"""Figure 11 — response time vs failure rate.

The paper's findings: increasing the share of departures that are failures
degrades every algorithm (stale routing state, lost replicas), and at high
failure rates UMS-Direct converges towards UMS-Indirect because the direct
counter transfer can no longer happen.
"""

from __future__ import annotations

from repro.experiments import figures


def test_figure11_response_time_vs_failure_rate(benchmark, bench_scale, bench_seed,
                                                bench_executor, record_table):
    table = benchmark.pedantic(
        lambda: figures.figure11_failure_rate(bench_scale, seed=bench_seed,
                                              executor=bench_executor),
        rounds=1, iterations=1)
    record_table(table, benchmark)

    rates = table.x_values()
    brk = table.series_values("BRK")
    direct = table.series_values("UMS-Direct")
    indirect = table.series_values("UMS-Indirect")

    # Failures hurt: the highest failure rate is slower than the lowest for
    # UMS-Direct (which additionally loses its transferred counters).
    assert direct[-1] > direct[0]
    # UMS remains cheaper than BRK throughout the sweep.
    assert all(d < b for d, b in zip(direct, brk))
    # At high failure rates UMS-Direct approaches UMS-Indirect: the gap at the
    # top of the sweep is smaller (relatively) than at the bottom.
    low_gap = (indirect[0] - direct[0]) / max(indirect[0], 1e-9)
    high_gap = (indirect[-1] - direct[-1]) / max(indirect[-1], 1e-9)
    assert high_gap <= low_gap + 0.15
