"""Figure 8 — communication cost (total messages per query) vs number of peers.

Uses the same sweep as Figure 7 (cached when the Figure 7 benchmark ran first
in the session) and checks that BRK pays roughly |Hr| lookups per query while
UMS needs only the KTS lookup plus a couple of replica probes.
"""

from __future__ import annotations

from repro.experiments import figures


def test_figure8_messages_vs_peers(benchmark, bench_scale, bench_seed,
                                   sweep_cache, record_table):
    def run():
        data = sweep_cache.get(("scaleup", bench_scale, bench_seed))
        if data is None:
            data = figures.scaleup_results(bench_scale, seed=bench_seed)
            sweep_cache[("scaleup", bench_scale, bench_seed)] = data
        return figures.figure8_messages_vs_peers(bench_scale, seed=bench_seed,
                                                 precomputed=data)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(table, benchmark)

    brk = table.series_values("BRK")
    direct = table.series_values("UMS-Direct")
    indirect = table.series_values("UMS-Indirect")

    for d, i, b in zip(direct, indirect, brk):
        # BRK retrieves every replica: several times the traffic of UMS-Direct.
        assert b > 2.5 * d
        assert i <= b
    # Message counts grow slowly (logarithmic routing).
    assert brk[-1] / brk[0] < 2.0
