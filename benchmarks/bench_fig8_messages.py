"""Figure 8 — communication cost (total messages per query) vs number of peers.

Uses the same sweeps as Figure 7 (cached when the Figure 7 benchmark ran
first in the session) and checks that BRK pays roughly |Hr| lookups per query
while UMS needs only the KTS lookup plus a couple of replica probes.

One series per overlay in ``bench_overlays`` (default: Chord and Kademlia;
``REPRO_BENCH_OVERLAYS`` selects others).
"""

from __future__ import annotations

from repro.experiments import figures


def test_figure8_messages_vs_peers(benchmark, bench_scale, bench_seed, bench_executor,
                                   bench_overlays, sweep_cache, record_table,
                                   record_cost_json):
    def run():
        tables = {}
        for overlay in bench_overlays:
            data = sweep_cache.get(("scaleup", bench_scale, bench_seed, overlay))
            if data is None:
                data = figures.scaleup_results(bench_scale, seed=bench_seed,
                                               protocol=overlay,
                                               executor=bench_executor)
                sweep_cache[("scaleup", bench_scale, bench_seed, overlay)] = data
            tables[overlay] = (
                figures.figure8_messages_vs_peers(
                    bench_scale, seed=bench_seed, protocol=overlay,
                    precomputed=data),
                figures.figure8_bytes_vs_peers(
                    bench_scale, seed=bench_seed, protocol=overlay,
                    precomputed=data))
        return tables

    tables = benchmark.pedantic(run, rounds=1, iterations=1)

    for overlay in bench_overlays:
        table, bytes_table = tables[overlay]
        record_table(table, benchmark)
        record_table(bytes_table, benchmark)
        record_cost_json(table.experiment_id, table, bytes_table,
                         scale=bench_scale, seed=bench_seed,
                         benchmark=benchmark)

        brk = table.series_values("BRK")
        direct = table.series_values("UMS-Direct")
        indirect = table.series_values("UMS-Indirect")

        peers = table.x_values()
        for d, i, b in zip(direct, indirect, brk):
            # BRK retrieves every replica: several times the traffic of UMS-Direct.
            assert b > 2.5 * d, overlay
            assert i <= b, overlay
        # Message counts grow slowly (logarithmic routing on Chord and
        # Kademlia); only meaningful when the sweep spans >= 4x in population.
        if peers[-1] / peers[0] >= 4:
            assert brk[-1] / brk[0] < 2.0, overlay

        # Bytes-per-op tells the same story: BRK's per-replica data replies
        # dominate, so its byte cost beats UMS-Direct's by a wide margin too.
        brk_bytes = bytes_table.series_values("BRK")
        direct_bytes = bytes_table.series_values("UMS-Direct")
        for d, b in zip(direct_bytes, brk_bytes):
            assert b > d > 0, overlay
