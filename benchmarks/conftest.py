"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or an ablation)
and

* stores the rendered table under ``benchmarks/results/<experiment>.md``,
* attaches the table text and headline numbers to ``benchmark.extra_info`` so
  they appear in ``pytest-benchmark``'s JSON output,
* asserts the qualitative shape reported by the paper.

Scale selection: set ``REPRO_BENCH_SCALE=paper`` to run the full Table 1
configuration (2,000–10,000 peers, 3 simulated hours — several minutes of wall
clock); the default ``quick`` profile preserves the shapes and finishes in
seconds per figure.

Execution: every grid runs through the unified execution layer
(:mod:`repro.execution`).  ``REPRO_BENCH_JOBS=N`` fans the sweeps out over a
process pool (bit-identical results), ``REPRO_BENCH_CACHE_DIR=...`` caches
executed points on disk, and JSON artifacts are named after the plan that
produced them (``<plan>-<hash12>.json``), so the seed and the output path are
both functions of the plan — not re-derived per benchmark file.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: The experiment sweeps behind Figures 7/8 and 9/10 are shared; benches cache
#: them here so the second figure of each pair does not re-run the simulation.
_SWEEP_CACHE: dict = {}


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """The sweep scale: ``quick`` (default) or ``paper`` via REPRO_BENCH_SCALE."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if scale not in ("tiny", "quick", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be tiny/quick/paper, got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Master seed shared by every benchmark run."""
    return int(os.environ.get("REPRO_BENCH_SEED", "2007"))


@pytest.fixture(scope="session")
def bench_overlays() -> tuple:
    """The overlays the scale-up benchmarks sweep (Figures 7 and 8).

    Defaults to a Chord series plus a Kademlia series; set
    ``REPRO_BENCH_OVERLAYS=chord,can,kademlia`` (any comma-separated subset of
    the registered overlays) to change the sweep.
    """
    from repro.dht.registry import overlay_names

    raw = os.environ.get("REPRO_BENCH_OVERLAYS", "chord,kademlia")
    overlays = tuple(name.strip().lower() for name in raw.split(",") if name.strip())
    unknown = [name for name in overlays if name not in overlay_names()]
    if not overlays or unknown:
        raise ValueError(f"REPRO_BENCH_OVERLAYS must name registered overlays "
                         f"{overlay_names()}, got {raw!r}")
    return overlays


@pytest.fixture(scope="session")
def bench_jobs() -> int:
    """Worker processes per sweep: ``REPRO_BENCH_JOBS`` (default: serial)."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    if jobs < 1:
        raise ValueError(f"REPRO_BENCH_JOBS must be >= 1, got {jobs}")
    return jobs


@pytest.fixture(scope="session")
def bench_executor(bench_jobs):
    """The shared :class:`repro.execution.Executor` driving every bench grid.

    ``REPRO_BENCH_CACHE_DIR`` enables the on-disk run cache (skip-if-cached
    across benchmark sessions); without it the executor only parallelises.
    """
    from repro.execution import Executor

    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR") or None
    return Executor(bench_jobs, cache_dir=cache_dir)


@pytest.fixture(scope="session")
def sweep_cache() -> dict:
    """Session-wide cache of shared sweeps (Figures 7/8 and 9/10)."""
    return _SWEEP_CACHE


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Save a rendered experiment table and return its text."""

    def _record(table, benchmark=None):
        path = results_dir / f"{table.experiment_id}.md"
        path.write_text(table.to_markdown() + "\n", encoding="utf-8")
        text = table.to_text()
        if benchmark is not None:
            # First table keeps the historical keys; every table (e.g. one
            # per overlay series) additionally lands under its own id so all
            # series survive into pytest-benchmark's JSON output.
            benchmark.extra_info.setdefault("experiment", table.experiment_id)
            benchmark.extra_info.setdefault("table", text)
            benchmark.extra_info[f"table:{table.experiment_id}"] = text
        print()
        print(text)
        return text

    return _record


@pytest.fixture
def record_plan_json(results_dir):
    """Write a JSON artifact of a named plan: ``<plan.name>-<hash12>.json``.

    The file embeds the plan manifest (name, plan hash, per-point seeds and
    content hashes), making the artifact a reproducible function of the grid
    that produced it — re-running the same plan overwrites the same file,
    changing the grid produces a distinguishable new one.
    """
    from repro.execution import plan_artifact_path

    def _record(plan, payload, benchmark=None):
        path = plan_artifact_path(results_dir, plan)
        record = {"plan": plan.manifest(), **payload}
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        if benchmark is not None:
            benchmark.extra_info["plan"] = plan.name
            benchmark.extra_info["plan_hash"] = plan.plan_hash
        return path

    return _record
