"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or an ablation)
and

* stores the rendered table under ``benchmarks/results/<experiment>.md``,
* attaches the table text and headline numbers to ``benchmark.extra_info`` so
  they appear in ``pytest-benchmark``'s JSON output,
* asserts the qualitative shape reported by the paper.

Scale selection: set ``REPRO_BENCH_SCALE=paper`` to run the full Table 1
configuration (2,000–10,000 peers, 3 simulated hours — several minutes of wall
clock); the default ``quick`` profile preserves the shapes and finishes in
seconds per figure.

Execution: every grid runs through the unified execution layer
(:mod:`repro.execution`).  ``REPRO_BENCH_JOBS=N`` fans the sweeps out over a
process pool (bit-identical results), ``REPRO_BENCH_CACHE_DIR=...`` caches
executed points on disk, and JSON artifacts are named after the plan that
produced them (``<plan>-<hash12>.json``), so the seed and the output path are
both functions of the plan — not re-derived per benchmark file.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: The experiment sweeps behind Figures 7/8 and 9/10 are shared; benches cache
#: them here so the second figure of each pair does not re-run the simulation.
_SWEEP_CACHE: dict = {}


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """The sweep scale: ``quick`` (default) or ``paper`` via REPRO_BENCH_SCALE."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if scale not in ("tiny", "quick", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be tiny/quick/paper, got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Master seed shared by every benchmark run."""
    return int(os.environ.get("REPRO_BENCH_SEED", "2007"))


@pytest.fixture(scope="session")
def bench_overlays() -> tuple:
    """The overlays the scale-up benchmarks sweep (Figures 7 and 8).

    Defaults to a Chord series plus a Kademlia series; set
    ``REPRO_BENCH_OVERLAYS=chord,can,kademlia`` (any comma-separated subset of
    the registered overlays) to change the sweep.
    """
    from repro.dht.registry import overlay_names

    raw = os.environ.get("REPRO_BENCH_OVERLAYS", "chord,kademlia")
    overlays = tuple(name.strip().lower() for name in raw.split(",") if name.strip())
    unknown = [name for name in overlays if name not in overlay_names()]
    if not overlays or unknown:
        raise ValueError(f"REPRO_BENCH_OVERLAYS must name registered overlays "
                         f"{overlay_names()}, got {raw!r}")
    return overlays


@pytest.fixture(scope="session")
def bench_jobs() -> int:
    """Worker processes per sweep: ``REPRO_BENCH_JOBS`` (default: serial)."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    if jobs < 1:
        raise ValueError(f"REPRO_BENCH_JOBS must be >= 1, got {jobs}")
    return jobs


@pytest.fixture(scope="session")
def bench_executor(bench_jobs):
    """The shared :class:`repro.execution.Executor` driving every bench grid.

    ``REPRO_BENCH_CACHE_DIR`` enables the on-disk run cache (skip-if-cached
    across benchmark sessions); without it the executor only parallelises.
    """
    from repro.execution import Executor

    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR") or None
    return Executor(bench_jobs, cache_dir=cache_dir)


@pytest.fixture(scope="session")
def sweep_cache() -> dict:
    """Session-wide cache of shared sweeps (Figures 7/8 and 9/10)."""
    return _SWEEP_CACHE


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Save a rendered experiment table and return its text."""

    def _record(table, benchmark=None):
        path = results_dir / f"{table.experiment_id}.md"
        path.write_text(table.to_markdown() + "\n", encoding="utf-8")
        text = table.to_text()
        if benchmark is not None:
            # First table keeps the historical keys; every table (e.g. one
            # per overlay series) additionally lands under its own id so all
            # series survive into pytest-benchmark's JSON output.
            benchmark.extra_info.setdefault("experiment", table.experiment_id)
            benchmark.extra_info.setdefault("table", text)
            benchmark.extra_info[f"table:{table.experiment_id}"] = text
        print()
        print(text)
        return text

    return _record


@pytest.fixture
def record_cost_json(results_dir):
    """Write (and check) a figure bench's cost artifact: messages & bytes per op.

    The artifact ``<experiment>-cost.json`` carries, per algorithm series,
    both the messages-per-query and the bytes-per-query sweep values.  When a
    committed ``<experiment>-cost-baseline.json`` with matching meta (scale,
    seed) exists, the fresh values are compared against it — the sweeps are
    deterministic for a fixed seed, so any drift is a real behaviour change.
    Baselines recorded before the bytes-per-op accounting simply lack the
    ``bytes`` arrays; they still load, and only the metrics they carry are
    compared.
    """

    def _record(experiment_id, messages_table, bytes_table, *, scale, seed,
                benchmark=None):
        payload = {
            "harness": "bench_figures",
            "experiment": experiment_id,
            "meta": {"scale": scale, "seed": seed},
            "x_label": messages_table.x_label,
            "x_values": list(messages_table.x_values()),
            "series": {label: {"messages": list(messages_table.series_values(label)),
                               "bytes": list(bytes_table.series_values(label))}
                       for label in messages_table.series},
        }
        path = results_dir / f"{experiment_id}-cost.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        baseline_path = results_dir / f"{experiment_id}-cost-baseline.json"
        if baseline_path.exists():
            baseline = json.loads(baseline_path.read_text())
            if baseline.get("meta") == payload["meta"]:
                assert baseline["x_values"] == payload["x_values"], experiment_id
                for label, series in baseline["series"].items():
                    for metric_name, values in series.items():
                        fresh = payload["series"][label].get(metric_name)
                        if fresh is not None:
                            assert values == pytest.approx(fresh), \
                                (experiment_id, label, metric_name)
        if benchmark is not None:
            benchmark.extra_info[f"cost:{experiment_id}"] = str(path.name)
        return path

    return _record


@pytest.fixture
def record_plan_json(results_dir):
    """Write a JSON artifact of a named plan: ``<plan.name>-<hash12>.json``.

    The file embeds the plan manifest (name, plan hash, per-point seeds and
    content hashes), making the artifact a reproducible function of the grid
    that produced it — re-running the same plan overwrites the same file,
    changing the grid produces a distinguishable new one.
    """
    from repro.execution import plan_artifact_path

    def _record(plan, payload, benchmark=None):
        path = plan_artifact_path(results_dir, plan)
        record = {"plan": plan.manifest(), **payload}
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        if benchmark is not None:
            benchmark.extra_info["plan"] = plan.name
            benchmark.extra_info["plan_hash"] = plan.plan_hash
        return path

    return _record
