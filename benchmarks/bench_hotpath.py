"""Hot-path wall-clock throughput suite (ops/sec per overlay × operation).

Unlike the figure benchmarks (which regenerate the paper's *simulated* cost
tables), this suite measures real wall-clock throughput of the DHT substrate's
hot path: untraced ``put``/``get``/mixed single operations and the batched
``put_many``/``get_many`` entry points, on every registered overlay.  It is
the regression harness for the routing/placement optimisations (memoised
hashing, versioned overlay caches, the trace-free fast path and the
point-indexed stores): results are written as JSON into
``benchmarks/results/`` so CI can archive them and compare runs.

Usage
-----
Measure and write a JSON report::

    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --peers 1000 --ops 2000 --output benchmarks/results/bench_hotpath.json

Compare a fresh run against a stored baseline and fail (exit 1) on a >2x
ops/sec regression for any (overlay, operation) cell::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --peers 200 --ops 500 \
        --check benchmarks/results/bench_hotpath_smoke_baseline.json \
        --max-regression 2.0

The regression threshold is deliberately loose (wall-clock on shared CI
runners is noisy); it is meant to catch order-of-magnitude slowdowns such as
an accidentally disabled cache, not single-digit percent drift.

Scaling curves
--------------
``--peers`` accepts a comma-separated list (``--peers 1000,10000,100000``);
the first count drives the full per-operation grid (and the regression
check), while *every* count contributes a point to the report's ``scaling``
section: build seconds, build throughput, ``tracemalloc`` peak bytes and
bytes-per-peer for the network build, and mixed-workload ops/sec.  When
``--peers`` is omitted the point list follows ``REPRO_BENCH_SCALE``:
``tiny`` → 200, ``quick`` (default) → 1k and 10k, ``paper`` → 1k, 10k and
100k peers.  ``--budget-seconds`` bounds the wall clock: once the budget is
spent, remaining scaling points are skipped (and named in the report, so a
truncated curve is never mistaken for a complete one).  ``--representation``
selects the overlay storage layout (``columnar``, the default, or
``object``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time
import tracemalloc
from typing import Dict, List, Optional

from repro.dht.hashing import HashFamily
from repro.dht.network import DHTNetwork

DEFAULT_OVERLAYS = ("chord", "can", "kademlia")
DEFAULT_OPERATIONS = ("put", "get", "mixed", "put_many", "get_many")
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: Peer-count schedule per ``REPRO_BENCH_SCALE`` when ``--peers`` is omitted.
SCALE_PEER_COUNTS = {
    "tiny": (200,),
    "quick": (1_000, 10_000),
    "paper": (1_000, 10_000, 100_000),
}

#: Meta keys that must match between a report and the baseline it is checked
#: against — comparing ops/sec across different workload shapes is meaningless.
_CONFIG_KEYS = ("peers", "ops", "keys", "replicas", "bits", "seed",
                "batch_size", "representation")


def _calibrate(rounds: int = 30_000) -> float:
    """Machine-speed yardstick: ops/sec of a fixed SHA-1 + big-int workload.

    Deliberately independent of any repo code path (so the optimisations
    under test cannot move it); used by :func:`check_regression` to normalise
    a baseline recorded on different hardware / Python version.
    """
    import hashlib
    prime = (1 << 521) - 1
    accumulator = 0
    start = time.perf_counter()
    for index in range(rounds):
        digest = int.from_bytes(hashlib.sha1(b"cal-%d" % index).digest(), "big")
        accumulator = (accumulator + digest * 31) % prime
    elapsed = time.perf_counter() - start
    assert accumulator >= 0
    return rounds / elapsed


def _build_network(overlay: str, peers: int, seed: int, bits: int,
                   representation: str) -> DHTNetwork:
    return DHTNetwork.build(peers, protocol=overlay, bits=bits, seed=seed,
                            representation=representation)


def _measure_build_memory(overlay: str, peers: int, seed: int, bits: int,
                          representation: str) -> int:
    """``tracemalloc`` peak bytes of one network build.

    Runs a *separate* build under tracing so the timed build stays untraced
    (tracemalloc roughly doubles allocation cost and would corrupt the
    build-seconds scaling curve).
    """
    tracemalloc.start()
    try:
        _build_network(overlay, peers, seed, bits, representation)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def _workload(ops: int, keys: int, fns) -> List[tuple]:
    """The deterministic (key, hash_fn, payload) schedule shared by all runs."""
    return [(f"key-{index % keys}", fns[index % len(fns)], {"n": index})
            for index in range(ops)]


def _run_operation(network: DHTNetwork, operation: str, schedule,
                   batch_size: int) -> float:
    """Execute ``operation`` over ``schedule`` and return elapsed seconds."""
    if operation == "put":
        start = time.perf_counter()
        for key, fn, payload in schedule:
            network.put(key, fn, payload, version=payload["n"])
        return time.perf_counter() - start
    if operation == "get":
        start = time.perf_counter()
        for key, fn, _payload in schedule:
            network.get(key, fn)
        return time.perf_counter() - start
    if operation == "mixed":
        start = time.perf_counter()
        for index, (key, fn, payload) in enumerate(schedule):
            if index % 2 == 0:
                network.put(key, fn, payload, version=payload["n"])
            else:
                network.get(key, fn)
        return time.perf_counter() - start
    if operation == "put_many":
        batches = [[(key, fn, payload, None, payload["n"])
                    for key, fn, payload in schedule[lo:lo + batch_size]]
                   for lo in range(0, len(schedule), batch_size)]
        start = time.perf_counter()
        for batch in batches:
            network.put_many(batch)
        return time.perf_counter() - start
    if operation == "get_many":
        batches = [[(key, fn) for key, fn, _payload in schedule[lo:lo + batch_size]]
                   for lo in range(0, len(schedule), batch_size)]
        start = time.perf_counter()
        for batch in batches:
            network.get_many(batch)
        return time.perf_counter() - start
    raise ValueError(f"unknown operation {operation!r}")


def run_suite(*, peers: int, ops: int, keys: int, replicas: int, bits: int,
              seed: int, overlays, operations, batch_size: int,
              label: str, representation: str = "columnar") -> Dict:
    report: Dict = {
        "meta": {
            "label": label,
            "peers": peers,
            "ops": ops,
            "keys": keys,
            "replicas": replicas,
            "bits": bits,
            "seed": seed,
            "batch_size": batch_size,
            "representation": representation,
            "python": platform.python_version(),
            "calibration_ops_per_sec": _calibrate(),
        },
        "results": {},
    }
    for overlay in overlays:
        family = HashFamily(bits=bits, seed=seed)
        fns = family.sample_many(replicas)
        build_start = time.perf_counter()
        network = _build_network(overlay, peers, seed, bits, representation)
        build_seconds = time.perf_counter() - build_start
        peak_bytes = _measure_build_memory(overlay, peers, seed, bits,
                                           representation)
        schedule = _workload(ops, keys, fns)
        cells: Dict[str, Dict] = {
            "build": {"ops": peers, "seconds": build_seconds,
                      "ops_per_sec": (peers / build_seconds if build_seconds
                                      else float("inf")),
                      "tracemalloc_peak_bytes": peak_bytes,
                      "bytes_per_peer": peak_bytes / peers},
        }
        # ``put`` runs first so the retrieval operations find stored data.
        for operation in operations:
            seconds = _run_operation(network, operation, schedule, batch_size)
            cells[operation] = {
                "ops": len(schedule),
                "seconds": seconds,
                "ops_per_sec": len(schedule) / seconds if seconds else float("inf"),
            }
            print(f"{overlay:>9s} {operation:>9s}: "
                  f"{cells[operation]['ops_per_sec']:>12.0f} ops/sec "
                  f"({seconds:.3f}s for {len(schedule)} ops)")
        report["results"][overlay] = cells
    return report


def run_scaling_point(*, peers: int, ops: int, keys: int, replicas: int,
                      bits: int, seed: int, overlays, batch_size: int,
                      representation: str) -> Dict:
    """One point of the build/memory/mixed-throughput scaling curves.

    Records, per overlay: build seconds and build throughput (untraced),
    ``tracemalloc`` peak bytes and bytes-per-peer of a second traced build,
    and ops/sec of the standard mixed put/get workload.
    """
    point: Dict = {"peers": peers, "overlays": {}}
    for overlay in overlays:
        family = HashFamily(bits=bits, seed=seed)
        fns = family.sample_many(replicas)
        build_start = time.perf_counter()
        network = _build_network(overlay, peers, seed, bits, representation)
        build_seconds = time.perf_counter() - build_start
        peak_bytes = _measure_build_memory(overlay, peers, seed, bits,
                                           representation)
        schedule = _workload(ops, keys, fns)
        mixed_seconds = _run_operation(network, "mixed", schedule, batch_size)
        point["overlays"][overlay] = {
            "build_seconds": build_seconds,
            "build_ops_per_sec": (peers / build_seconds if build_seconds
                                  else float("inf")),
            "tracemalloc_peak_bytes": peak_bytes,
            "bytes_per_peer": peak_bytes / peers,
            "mixed_ops": len(schedule),
            "mixed_seconds": mixed_seconds,
            "mixed_ops_per_sec": (len(schedule) / mixed_seconds
                                  if mixed_seconds else float("inf")),
        }
        cell = point["overlays"][overlay]
        print(f"scale {overlay:>9s} @{peers:>7d} peers: "
              f"build {build_seconds:7.2f}s "
              f"({cell['build_ops_per_sec']:>9.0f} joins/sec), "
              f"{cell['bytes_per_peer']:>7.0f} B/peer, "
              f"mixed {cell['mixed_ops_per_sec']:>9.0f} ops/sec")
    return point


def run_scaling_curves(peer_counts, *, budget_seconds: Optional[float] = None,
                       **point_kwargs) -> Dict:
    """Run :func:`run_scaling_point` for each count under a wall-clock budget.

    Returns ``{"points": [...], "skipped_peer_counts": [...]}``.  At least the
    first point always runs; later points are skipped once the budget is
    spent, and the skipped counts are recorded so a truncated curve is
    explicit in the artifact.
    """
    deadline = (time.monotonic() + budget_seconds
                if budget_seconds is not None else None)
    points: List[Dict] = []
    skipped: List[int] = []
    for count in peer_counts:
        if points and deadline is not None and time.monotonic() >= deadline:
            skipped.append(count)
            continue
        points.append(run_scaling_point(peers=count, **point_kwargs))
    if skipped:
        print(f"budget of {budget_seconds:.0f}s spent; skipped scaling "
              f"point(s) at {', '.join(str(c) for c in skipped)} peers",
              file=sys.stderr)
    return {"points": points, "skipped_peer_counts": skipped}


def check_regression(report: Dict, baseline_path: pathlib.Path,
                     max_regression: float) -> int:
    """Compare ``report`` against a stored baseline; return a process exit code.

    The baseline's ops/sec are rescaled by the ratio of the two runs'
    machine-speed calibrations, so a baseline recorded on faster (or slower)
    hardware does not manufacture — or mask — a regression.  The workload
    configuration must match exactly; a mismatch is a usage error, not a
    performance result.
    """
    baseline = json.loads(baseline_path.read_text())
    mismatched = [key for key in _CONFIG_KEYS
                  if report["meta"].get(key) != baseline.get("meta", {}).get(key)]
    if mismatched:
        print(f"configuration mismatch against {baseline_path}; refusing to "
              f"compare ops/sec across different workloads:", file=sys.stderr)
        for key in mismatched:
            print(f"  {key}: baseline {baseline.get('meta', {}).get(key)!r} "
                  f"vs now {report['meta'].get(key)!r}", file=sys.stderr)
        return 2
    base_calibration = baseline.get("meta", {}).get("calibration_ops_per_sec")
    speed_factor = 1.0
    if base_calibration:
        speed_factor = report["meta"]["calibration_ops_per_sec"] / base_calibration
        print(f"machine-speed factor vs baseline: x{speed_factor:.2f} "
              f"(baseline ops/sec rescaled accordingly)")
    failures = []
    for overlay, cells in report["results"].items():
        base_cells = baseline.get("results", {}).get(overlay, {})
        for operation, cell in cells.items():
            base = base_cells.get(operation)
            if base is None or operation == "build":
                continue
            expected = base["ops_per_sec"] * speed_factor
            ratio = expected / cell["ops_per_sec"]
            status = "FAIL" if ratio > max_regression else "ok"
            print(f"check {overlay:>9s} {operation:>9s}: baseline "
                  f"{expected:.0f} vs now {cell['ops_per_sec']:.0f} "
                  f"ops/sec (x{1 / ratio:.2f}) [{status}]")
            if ratio > max_regression:
                failures.append((overlay, operation, ratio))
    if failures:
        print(f"\n{len(failures)} cell(s) regressed by more than "
              f"{max_regression:.1f}x against {baseline_path}:", file=sys.stderr)
        for overlay, operation, ratio in failures:
            print(f"  {overlay}/{operation}: {ratio:.2f}x slower", file=sys.stderr)
        return 1
    print(f"\nno cell regressed by more than {max_regression:.1f}x "
          f"against {baseline_path}")
    return 0


def _resolve_peer_counts(peers_arg: Optional[str]) -> List[int]:
    """``--peers`` as a list of counts, or the REPRO_BENCH_SCALE schedule."""
    if peers_arg:
        counts = [int(value) for value in peers_arg.split(",") if value]
        if not counts or any(count < 1 for count in counts):
            raise ValueError(f"invalid --peers value {peers_arg!r}")
        return counts
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if scale not in SCALE_PEER_COUNTS:
        raise ValueError("REPRO_BENCH_SCALE must be "
                         f"{'/'.join(SCALE_PEER_COUNTS)}, got {scale!r}")
    return list(SCALE_PEER_COUNTS[scale])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--peers", default=None,
                        help="peer count, or comma-separated counts for the "
                             "scaling curves (first count drives the full "
                             "per-operation grid); default follows "
                             "REPRO_BENCH_SCALE (tiny/quick/paper)")
    parser.add_argument("--ops", type=int, default=2000,
                        help="operations per (overlay, operation) cell")
    parser.add_argument("--keys", type=int, default=256,
                        help="distinct keys cycled through by the workload")
    parser.add_argument("--replicas", type=int, default=4,
                        help="replication hash functions cycled through")
    parser.add_argument("--bits", type=int, default=32)
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--overlays", default=",".join(DEFAULT_OVERLAYS))
    parser.add_argument("--operations", default=",".join(DEFAULT_OPERATIONS))
    parser.add_argument("--representation", default="columnar",
                        choices=("columnar", "object"),
                        help="overlay storage representation under test")
    parser.add_argument("--label", default="hotpath")
    parser.add_argument("--budget-seconds", type=float, default=None,
                        help="wall-clock budget for the scaling curves; "
                             "points past the budget are skipped (and listed "
                             "in the report)")
    parser.add_argument("--output", type=pathlib.Path, default=None,
                        help="where to write the JSON report "
                             "(default benchmarks/results/bench_hotpath.json)")
    parser.add_argument("--check", type=pathlib.Path, default=None,
                        help="baseline JSON to compare against")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail when baseline/now ops/sec exceeds this ratio")
    args = parser.parse_args(argv)

    peer_counts = _resolve_peer_counts(args.peers)
    overlays = [name for name in args.overlays.split(",") if name]

    report = run_suite(
        peers=peer_counts[0], ops=args.ops, keys=args.keys,
        replicas=args.replicas, bits=args.bits, seed=args.seed,
        overlays=overlays,
        operations=[name for name in args.operations.split(",") if name],
        batch_size=args.batch_size, label=args.label,
        representation=args.representation)
    report["meta"]["peer_counts"] = peer_counts
    report["scaling"] = run_scaling_curves(
        peer_counts, budget_seconds=args.budget_seconds,
        ops=args.ops, keys=args.keys, replicas=args.replicas, bits=args.bits,
        seed=args.seed, overlays=overlays, batch_size=args.batch_size,
        representation=args.representation)

    output = args.output
    if output is None:
        output = RESULTS_DIR / "bench_hotpath.json"
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {output}")

    if args.check is not None:
        return check_regression(report, args.check, args.max_regression)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
