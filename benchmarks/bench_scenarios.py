"""Scenario comparison benchmark — the what-if engine beyond the figures.

Materialises a scenario × overlay × service grid as a named
:class:`repro.execution.RunPlan` and executes it through the shared bench
executor (``REPRO_BENCH_JOBS`` parallelises it, bit-identically), records
the per-metric comparison tables (the same pivot ``repro scenario compare``
prints) under ``benchmarks/results/scenario-compare-*.md`` plus a JSON
artifact named after the plan, and asserts the qualitative claims the
scenario gallery in EXPERIMENTS.md documents:

* UMS certifies currency on every scenario, BRK never can;
* the lossy-network scenario is slower than the uniform baseline on every
  series (the degraded window covers half the queries);
* correlated failure bursts fire and are visible in the churn accounting.
"""

from __future__ import annotations

from repro.execution import Executor, RunPlan
from repro.experiments.reporting import comparison_tables
from repro.simulation import SimulationParameters
from repro.simulation.scenarios import get_scenario, run_scenario

#: Scenario grid: the control, a skew regime, and two fault regimes.
SCENARIOS = ("uniform", "hotspot", "correlated-failures", "lossy-network")
SERVICES = (("ums", "ums-direct"), ("brk", "brk"))

SCALE_PARAMETERS = {
    "tiny": dict(num_peers=60, num_keys=5, duration_s=300.0, num_queries=6,
                 churn_rate_per_s=0.1),
    "quick": dict(num_peers=150, num_keys=10, duration_s=900.0,
                  num_queries=20, churn_rate_per_s=0.15),
    "paper": dict(num_peers=2000, num_keys=50, duration_s=10800.0,
                  num_queries=30, churn_rate_per_s=1.0),
}


def grid_plan(scale: str, seed: int, overlays) -> RunPlan:
    """The scenario × service × overlay grid, as one named run plan."""
    parameters = SCALE_PARAMETERS[scale]
    plan = RunPlan(name=f"scenario-grid-{scale}")
    for scenario in SCENARIOS:
        for service, algorithm in SERVICES:
            for protocol in overlays:
                plan.add_scenario(
                    get_scenario(scenario),
                    SimulationParameters(seed=seed, **parameters),
                    protocol=protocol, algorithm=algorithm,
                    label=f"{scenario}:{service}@{protocol}")
    return plan


def run_grid(plan: RunPlan, executor=None) -> list:
    """One summary record per scenario × service × overlay cell of ``plan``."""
    executor = executor if executor is not None else Executor()
    records = []
    for point, result in zip(plan, executor.run(plan)):
        scenario, label = point.label.split(":", 1)
        records.append((scenario, label, result.summary()))
    return records


def test_scenario_comparison_grid(benchmark, bench_scale, bench_seed,
                                  bench_overlays, bench_executor,
                                  record_table, record_plan_json):
    plan = grid_plan(bench_scale, bench_seed, bench_overlays)
    records = benchmark.pedantic(
        lambda: run_grid(plan, executor=bench_executor),
        rounds=1, iterations=1)
    tables = comparison_tables(records)
    for table in tables:
        record_table(table)
    record_plan_json(
        plan,
        {"records": [{"scenario": scenario, "series": label, **summary}
                     for scenario, label, summary in records]},
        benchmark)

    currency, response_time, messages = tables
    for protocol in bench_overlays:
        ums = f"ums@{protocol}"
        brk = f"brk@{protocol}"
        # UMS certifies currency on every scenario; BRK's version vectors
        # never can (is_current is the KTS timestamp certificate).
        assert all(rate > 0.8 for rate in currency.series_values(ums))
        assert all(rate == 0.0 for rate in currency.series_values(brk))
        # The lossy window covers half of each run, so it must be slower
        # than the uniform control for every series.
        by_scenario = dict(zip(response_time.x_values(),
                               response_time.series_values(ums)))
        assert by_scenario["lossy-network"] > by_scenario["uniform"]
        # BRK pays more messages than UMS on every scenario (retrieve-all
        # versus probe-until-current).
        assert all(b > u for u, b in zip(messages.series_values(ums),
                                         messages.series_values(brk)))


def test_correlated_failures_fire_and_land_in_churn_accounting(bench_scale,
                                                               bench_seed):
    parameters = SCALE_PARAMETERS[bench_scale]
    burst = run_scenario("correlated-failures",
                         SimulationParameters(seed=bench_seed, **parameters))
    control = run_scenario("uniform",
                           SimulationParameters(seed=bench_seed, **parameters))
    assert burst.fault_events == 2
    assert burst.failures > control.failures
