"""Wire-format efficiency suite: measured frame bytes, JSON vs binary.

The wire-efficiency layer claims that the compact binary framing (tagged
struct packing + zlib above the compression threshold) shrinks bulk transfers
by at least 2x against the legacy JSON frames.  This bench *measures* that
claim: it builds deterministic payloads shaped like the protocol's real
traffic (single ops, batched ops, delta-sync entry lists) with
:mod:`repro.net.codec`, records the exact frame size of each under both
formats, and fails when any bulk payload misses the improvement bar.

Frame sizes are deterministic functions of the payloads (no sampling, no
wall-clock), so runs are bit-identical across machines and a stored baseline
can be compared exactly.

Usage
-----
Measure and write a JSON report::

    PYTHONPATH=src python benchmarks/bench_wire.py \
        --output benchmarks/results/bench_wire.json

Compare against the committed baseline (exact frame sizes) and enforce the
bulk-transfer improvement bar::

    PYTHONPATH=src python benchmarks/bench_wire.py \
        --check benchmarks/results/bench_wire_baseline.json \
        --min-improvement 2.0
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, Optional

from repro.net import codec

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: Payloads below this many JSON bytes are "control" traffic: binary helps but
#: the 2x bulk-transfer bar only applies to the data-carrying shapes.
_BULK_THRESHOLD_BYTES = 512


def _bulk_items(count: int, *, seed: int = 2007) -> list:
    """A deterministic batch of (key, data) pairs shaped like app traffic."""
    return [[f"key-{(seed + index) % 97:03d}",
             {"op": index, "payload": f"value-{index:04d}" * 4,
              "tags": [f"t{index % 7}", f"t{index % 11}"],
              "meta": {"origin": index % 53, "attempt": 1}}]
            for index in range(count)]


def build_payloads(batch: int = 64) -> Dict[str, dict]:
    """The measured payload shapes, keyed by scenario name."""
    items = _bulk_items(batch)
    return {
        "ping": {"id": 7, "op": "ping", "service": None},
        "retrieve": {"id": 11, "op": "retrieve", "key": "key-042",
                     "service": None, "origin": None, "unreachable": [],
                     "consistency": "current", "max_probes": None},
        "insert_many": {"id": 13, "op": "insert_many", "items": items,
                        "service": None, "origin": None, "unreachable": []},
        "retrieve_many_reply": {
            "id": 13, "ok": True,
            "result": {"results": [
                {"key": key, "found": True, "is_current": True,
                 "data": data, "replicas_inspected": 2,
                 "timestamp": {"__repro.timestamp__": True,
                               "key": key, "value": index}}
                for index, (key, data) in enumerate(items)]}},
        "sync_delta": {
            "id": 17, "ok": True,
            "result": {"entries": [
                {"key": key, "hash_name": f"hr-{index % 10}",
                 "data": data, "version": None,
                 "timestamp": {"__repro.timestamp__": True,
                               "key": key, "value": index}}
                for index, (key, data) in enumerate(items)]}},
    }


def run_suite(batch: int = 64) -> Dict:
    """Measure every payload under both formats; return the report dict."""
    report: Dict = {"harness": "bench_wire",
                    "meta": {"batch": batch,
                             "compress_min_bytes": codec.COMPRESS_MIN_BYTES,
                             "frame_header_bytes": codec.FRAME_HEADER_BYTES},
                    "results": {}}
    for name, payload in build_payloads(batch).items():
        json_bytes = codec.frame_size(payload, wire_format=codec.FORMAT_JSON)
        binary_bytes = codec.frame_size(payload, wire_format=codec.FORMAT_BINARY)
        cell = {"json_bytes": json_bytes, "binary_bytes": binary_bytes,
                "improvement": json_bytes / binary_bytes,
                "bulk": json_bytes >= _BULK_THRESHOLD_BYTES}
        report["results"][name] = cell
        print(f"{name:>22s}: json {json_bytes:>7d} B, binary "
              f"{binary_bytes:>7d} B  (x{cell['improvement']:.2f}"
              f"{', bulk' if cell['bulk'] else ''})")
    return report


def check(report: Dict, *, min_improvement: float,
          baseline_path: Optional[pathlib.Path] = None) -> int:
    """Enforce the bulk improvement bar (and baseline equality); exit code."""
    failures = []
    for name, cell in report["results"].items():
        if cell["bulk"] and cell["improvement"] < min_improvement:
            failures.append(f"{name}: x{cell['improvement']:.2f} < "
                            f"x{min_improvement:.1f} bulk improvement bar")
        if cell["binary_bytes"] >= cell["json_bytes"] and cell["bulk"]:
            failures.append(f"{name}: binary frame not smaller than JSON")
    if baseline_path is not None:
        baseline = json.loads(baseline_path.read_text())
        if baseline.get("meta") != report["meta"]:
            print(f"baseline {baseline_path} has different meta; skipping "
                  "the exact-size comparison", file=sys.stderr)
        else:
            for name, base_cell in baseline.get("results", {}).items():
                cell = report["results"].get(name)
                if cell is None:
                    continue
                for field in ("json_bytes", "binary_bytes"):
                    if base_cell.get(field) not in (None, cell[field]):
                        failures.append(
                            f"{name}.{field}: baseline {base_cell[field]} "
                            f"vs now {cell[field]} (frame sizes are "
                            "deterministic; this is a codec change)")
    if failures:
        print("\nbench_wire FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall bulk payloads beat the x{min_improvement:.1f} bar"
          + (f"; sizes match {baseline_path}" if baseline_path else ""))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", type=int, default=64,
                        help="items per bulk payload")
    parser.add_argument("--min-improvement", type=float, default=2.0,
                        help="required JSON/binary size ratio on bulk payloads")
    parser.add_argument("--output", type=pathlib.Path, default=None,
                        help="report path (default "
                             "benchmarks/results/bench_wire.json)")
    parser.add_argument("--check", type=pathlib.Path, default=None,
                        help="baseline JSON to compare exact sizes against")
    args = parser.parse_args(argv)

    report = run_suite(args.batch)
    output = args.output or (RESULTS_DIR / "bench_wire.json")
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {output}")
    return check(report, min_improvement=args.min_improvement,
                 baseline_path=args.check)


if __name__ == "__main__":
    raise SystemExit(main())
