"""Executor benchmark — serial vs parallel wall-clock on a Figure-7-style grid.

Builds the peer-count × algorithm grid behind Figure 7 (≥ 12 points by
default) as one named :class:`repro.execution.RunPlan`, executes it twice —
once serially, once on a ``multiprocessing`` pool (``--jobs``, default 4) —
verifies the two executions are **bit-identical** (the execution layer's
parity guarantee), and records both wall-clock times plus the speedup as a
JSON artifact named after the plan (``<plan>-<hash12>.json``), alongside the
other benchmark results.

Usage::

    PYTHONPATH=src python benchmarks/bench_executor.py --jobs 4
    PYTHONPATH=src python benchmarks/bench_executor.py --jobs 4 \
        --min-speedup 2.0 --output bench_executor_ci.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

from repro.execution import Executor, RunPlan, plan_artifact_path
from repro.simulation.config import Algorithm, SimulationParameters

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: Peer counts of the default grid; with the three algorithms of the paper
#: this yields 4 × 3 = 12 independent points (the Figure 7 shape).  The
#: per-point work is sized so pool overhead amortises: on a multi-core
#: machine ``--jobs 4`` lands well above 2x (a single-core container can
#: only record ~1x — wall-clock ratios are machine-dependent).
DEFAULT_PEER_COUNTS = (400, 600, 800, 1000)


def build_plan(peer_counts, *, seed: int, duration_s: float,
               num_queries: int, num_keys: int) -> RunPlan:
    """The Figure-7-style grid: Table 1 structure over peers × algorithms."""
    plan = RunPlan(name="bench-executor-fig7-grid")
    for num_peers in peer_counts:
        for algorithm in Algorithm.ALL:
            plan.add(SimulationParameters.table1(
                num_peers=num_peers, algorithm=algorithm, seed=seed,
                num_keys=num_keys, duration_s=duration_s,
                num_queries=num_queries,
                churn_rate_per_s=1.08 * num_peers / duration_s),
                label=f"{num_peers}/{algorithm}")
    return plan


def timed_run(plan: RunPlan, jobs: int):
    """Execute ``plan`` with ``jobs`` workers; returns (seconds, results)."""
    executor = Executor(jobs)
    started = time.perf_counter()
    results = executor.run(plan)
    return time.perf_counter() - started, results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="pool size of the parallel execution (default 4)")
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument("--peers", type=int, nargs="+",
                        default=list(DEFAULT_PEER_COUNTS),
                        help="peer counts of the grid (× the 3 algorithms)")
    parser.add_argument("--duration", type=float, default=1800.0,
                        help="simulated seconds per run")
    parser.add_argument("--queries", type=int, default=30,
                        help="measured queries per run")
    parser.add_argument("--keys", type=int, default=20,
                        help="data items per run")
    parser.add_argument("--output", type=pathlib.Path, default=None,
                        help="JSON report path (default: "
                             "benchmarks/results/<plan>-<hash12>.json)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero when the parallel speedup falls "
                             "below this factor (CI gate)")
    arguments = parser.parse_args(argv)

    plan = build_plan(arguments.peers, seed=arguments.seed,
                      duration_s=arguments.duration,
                      num_queries=arguments.queries, num_keys=arguments.keys)
    print(f"plan {plan.name} ({plan.plan_hash[:12]}): {len(plan)} points, "
          f"jobs={arguments.jobs}")

    serial_s, serial_results = timed_run(plan, jobs=1)
    print(f"serial   : {serial_s:.2f} s")
    parallel_s, parallel_results = timed_run(plan, jobs=arguments.jobs)
    print(f"parallel : {parallel_s:.2f} s")

    # Parity: the pool must reproduce the serial run bit-for-bit.
    mismatches = [
        point.label for point, serial, parallel
        in zip(plan, serial_results, parallel_results)
        if json.dumps(serial.to_dict(), sort_keys=True)
        != json.dumps(parallel.to_dict(), sort_keys=True)]
    if mismatches:
        print(f"PARITY FAILURE at points: {', '.join(mismatches)}")
        return 1

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"speedup  : {speedup:.2f}x (parity verified on {len(plan)} points)")

    report = {
        "plan": plan.manifest(),
        "jobs": arguments.jobs,
        "cpu_count": os.cpu_count(),
        "serial_wall_clock_s": serial_s,
        "parallel_wall_clock_s": parallel_s,
        "speedup": speedup,
        "parity": True,
        "points": [{"label": point.label,
                    "avg_response_time_s": result.avg_response_time_s,
                    "avg_messages": result.avg_messages}
                   for point, result in zip(plan, serial_results)],
    }
    output = arguments.output
    if output is None:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        output = plan_artifact_path(RESULTS_DIR, plan)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    print(f"report   : {output}")

    if arguments.min_speedup is not None and speedup < arguments.min_speedup:
        # A single-core machine cannot beat parity no matter how healthy the
        # pool is — the gate degrades to the parity check already done above.
        if os.cpu_count() == 1:
            print(f"NOTE: single CPU detected; relaxing the "
                  f"{arguments.min_speedup:.2f}x speedup gate to the "
                  "parity-only check")
            return 0
        print(f"FAIL: speedup {speedup:.2f}x below the required "
              f"{arguments.min_speedup:.2f}x")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
