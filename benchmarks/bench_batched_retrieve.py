"""Batched operations — ``retrieve_many`` vs a per-key ``retrieve`` loop.

Measures the message amortisation of the client API's batched retrievals on
every overlay in ``bench_overlays``: the KTS ``last_ts`` lookups collapse to
one routed exchange per distinct responsible of timestamping, and the replica
probes of a round are coalesced per destination peer.  The benchmark reports,
for each overlay and batch size, the total messages (and simulated response
time via the wide-area cost model) of ``retrieve_many`` against N single
retrieves, and asserts the batch demonstrably sends fewer messages.  A second
table does the same for ``insert_many`` against a per-key insert loop.
"""

from __future__ import annotations

from repro.api import Cluster
from repro.experiments.reporting import ExperimentTable
from repro.simulation.cost import NetworkCostModel

BATCH_SIZES = (8, 16, 32, 64)
PEERS = 64
REPLICAS = 10


def _build(overlay: str, seed: int) -> Cluster:
    return Cluster.build(peers=PEERS, replicas=REPLICAS, protocol=overlay,
                         seed=seed)


def _keys(count: int):
    return [f"item-{index}" for index in range(count)]


def _populate(cluster: Cluster, keys) -> None:
    with cluster.session() as session:
        session.insert_many((key, {"k": key}) for key in keys)


def _retrieve_costs(overlay: str, seed: int, size: int):
    """(batch_messages, loop_messages, batch_time, loop_time) for one size."""
    keys = _keys(size)
    cost = NetworkCostModel.wide_area(seed=seed)
    cluster = _build(overlay, seed)
    _populate(cluster, keys)
    with cluster.session() as session:
        batch = session.retrieve_many(keys)
        assert batch.found_count == size
        assert batch.current_count == size  # same guarantee as the loop
    batch_time = cost.duration(batch.trace)

    twin = _build(overlay, seed)  # identical placement, fresh accounting
    _populate(twin, keys)
    loop_time = 0.0
    with twin.session() as session:
        for key in keys:
            result = session.retrieve(key)
            assert result.is_current
            loop_time += cost.duration(result.trace)
        loop_messages = session.messages_sent
    return batch.message_count, loop_messages, batch_time, loop_time


def _insert_costs(overlay: str, seed: int, size: int):
    keys = _keys(size)
    cluster = _build(overlay, seed)
    with cluster.session() as session:
        batch = session.insert_many((key, {"k": key}) for key in keys)
        assert batch.fully_replicated
    twin = _build(overlay, seed)
    with twin.session() as session:
        for key in keys:
            session.insert(key, {"k": key})
        loop_messages = session.messages_sent
    return batch.message_count, loop_messages


def test_batched_retrieve_amortises_messages(benchmark, bench_seed,
                                             bench_overlays, record_table):
    def run():
        tables = {}
        for overlay in bench_overlays:
            table = ExperimentTable(
                experiment_id=(f"batched-retrieve-{overlay}"
                               if overlay != "chord" else "batched-retrieve"),
                title=f"retrieve_many vs per-key retrieve ({overlay})",
                x_label="batch size",
                series=["batch messages", "loop messages", "savings",
                        "batch time (s)", "loop time (s)"],
                notes="Identical clusters and data; the batch amortises the KTS "
                      "lookups and coalesces replica probes per destination "
                      "peer, with reply payloads still accounted per entry.")
            for size in BATCH_SIZES:
                batch_messages, loop_messages, batch_time, loop_time = \
                    _retrieve_costs(overlay, bench_seed, size)
                table.add_row(size, {
                    "batch messages": batch_messages,
                    "loop messages": loop_messages,
                    "savings": 1.0 - batch_messages / loop_messages,
                    "batch time (s)": batch_time,
                    "loop time (s)": loop_time,
                })
            tables[overlay] = table
        return tables

    tables = benchmark.pedantic(run, rounds=1, iterations=1)

    for overlay in bench_overlays:
        table = tables[overlay]
        record_table(table, benchmark)
        batch = table.series_values("batch messages")
        loop = table.series_values("loop messages")
        savings = table.series_values("savings")
        for size, batch_messages, loop_messages in zip(BATCH_SIZES, batch, loop):
            # The acceptance bar: a batch of N keys sends fewer messages than
            # N single retrieves, on every overlay.  The smallest batch sits
            # near the amortisation break-even (few destination collisions),
            # so it only has to avoid *losing*; every larger batch must win
            # outright.
            if size >= 16:
                assert batch_messages < loop_messages, (overlay, size)
            else:
                assert batch_messages < loop_messages * 1.1, (overlay, size)
        # Amortisation grows with the batch: the largest batch saves the most.
        assert savings[-1] >= savings[0], overlay
        assert savings[-1] > 0.25, overlay


def test_batched_insert_amortises_messages(benchmark, bench_seed,
                                           bench_overlays, record_table):
    def run():
        tables = {}
        for overlay in bench_overlays:
            table = ExperimentTable(
                experiment_id=(f"batched-insert-{overlay}"
                               if overlay != "chord" else "batched-insert"),
                title=f"insert_many vs per-key insert ({overlay})",
                x_label="batch size",
                series=["batch messages", "loop messages", "savings"],
                notes="The batch amortises the TSR exchanges per responsible of "
                      "timestamping and coalesces replica writes per holder.")
            for size in BATCH_SIZES:
                batch_messages, loop_messages = _insert_costs(overlay, bench_seed,
                                                              size)
                table.add_row(size, {
                    "batch messages": batch_messages,
                    "loop messages": loop_messages,
                    "savings": 1.0 - batch_messages / loop_messages,
                })
            tables[overlay] = table
        return tables

    tables = benchmark.pedantic(run, rounds=1, iterations=1)

    for overlay in bench_overlays:
        table = tables[overlay]
        record_table(table, benchmark)
        batch = table.series_values("batch messages")
        loop = table.series_values("loop messages")
        for size, batch_messages, loop_messages in zip(BATCH_SIZES, batch, loop):
            assert batch_messages < loop_messages, (overlay, size)
