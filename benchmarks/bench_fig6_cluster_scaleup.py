"""Figure 6 — response time vs number of peers on the 64-node cluster.

Regenerates the cluster scale-up experiment (LAN cost model, 10–64 peers) and
checks the paper's qualitative result: all three algorithms grow slowly with
the number of peers and UMS-Direct < UMS-Indirect < BRK.
"""

from __future__ import annotations

from repro.experiments import figures


def test_figure6_cluster_response_time(benchmark, bench_scale, bench_seed,
                                        bench_executor, record_table):
    table = benchmark.pedantic(
        lambda: figures.figure6_cluster_scaleup(bench_scale, seed=bench_seed,
                                                executor=bench_executor),
        rounds=1, iterations=1)
    record_table(table, benchmark)

    brk = table.series_values("BRK")
    direct = table.series_values("UMS-Direct")
    indirect = table.series_values("UMS-Indirect")

    # UMS-Direct beats BRK at every population size; UMS-Indirect sits in between
    # on average (individual points may fluctuate with only 30 queries each).
    assert all(d < b for d, b in zip(direct, brk))
    if bench_scale != "tiny":
        # At the tiny scale the sweep is 2 points x 8 queries — too few
        # samples for the mean ordering to hold (UMS-Indirect's variance
        # spans BRK), so these two checks are asserted from "quick" up.
        assert sum(indirect) / len(indirect) < sum(brk) / len(brk)
        assert sum(direct) / len(direct) <= sum(indirect) / len(indirect)
    # Response times on the cluster stay in the paper's low-seconds range.
    assert max(brk) < 10.0
