"""Ablation — every registered overlay under the same UMS workload.

The paper implements UMS/KTS on Chord and argues (Section 4.2.1) that the
design carries over to any DHT providing lookup and responsibility
notifications.  This ablation runs the same workload over every overlay in
the registry (Chord, CAN, Kademlia): the currency guarantees are identical,
only the routing cost differs (O(log n) for Chord/Kademlia, O(d·n^(1/d)) for
CAN).
"""

from __future__ import annotations

from repro.dht.registry import overlay_names
from repro.experiments import figures


def test_overlay_ablation(benchmark, bench_scale, bench_seed,
                          bench_executor, record_table):
    table = benchmark.pedantic(
        lambda: figures.ablation_overlay(bench_scale, seed=bench_seed,
                                         executor=bench_executor),
        rounds=1, iterations=1)
    record_table(table, benchmark)

    rows = {row["x"]: row for row in table.rows}
    assert set(rows) == set(overlay_names())
    for row in rows.values():
        assert row["messages"] > 0
        assert row["response time (s)"] > 0
        # Every query found a replica and the vast majority were certified current.
        assert row["currency rate"] >= 0.8
