"""Ablation — Chord vs CAN overlay under the same UMS workload.

The paper implements UMS/KTS on Chord and argues (Section 4.2.1) that the
direct counter-transfer property also holds on CAN.  This ablation runs the
same workload over both overlays: the currency guarantees are identical, only
the routing cost differs (O(log n) vs O(d·n^(1/d)) hops).
"""

from __future__ import annotations

from repro.experiments import figures


def test_overlay_ablation(benchmark, bench_scale, bench_seed, record_table):
    table = benchmark.pedantic(
        lambda: figures.ablation_overlay(bench_scale, seed=bench_seed),
        rounds=1, iterations=1)
    record_table(table, benchmark)

    rows = {row["x"]: row for row in table.rows}
    assert set(rows) == {"chord", "can"}
    for row in rows.values():
        assert row["messages"] > 0
        assert row["response time (s)"] > 0
        # Every query found a replica and the vast majority were certified current.
        assert row["currency rate"] >= 0.8
