"""Ablation — random vs fixed replica probe order in UMS.retrieve.

Random probing matches the independence assumption behind the Section 3.3
analysis; fixed-order probing can correlate with which replicas are stale.
The benchmark regenerates the ablation table and checks both configurations
stay within the Theorem 1 envelope.
"""

from __future__ import annotations

from repro.experiments import figures


def test_probe_order_ablation(benchmark, bench_scale, bench_seed,
                              bench_executor, record_table):
    table = benchmark.pedantic(
        lambda: figures.ablation_probe_order(bench_scale, seed=bench_seed,
                                             executor=bench_executor),
        rounds=1, iterations=1)
    record_table(table, benchmark)

    rows = {row["x"]: row for row in table.rows}
    assert set(rows) == {"random", "fixed"}
    for row in rows.values():
        assert row["replicas inspected"] >= 1.0
        assert row["replicas inspected"] <= 10.0
        assert row["response time (s)"] > 0.0
    # Both orders probe close to one replica under the default (healthy) workload.
    assert rows["random"]["replicas inspected"] < 3.0
    assert rows["fixed"]["replicas inspected"] < 3.0
