"""Ablation — Chord finger-table stabilisation interval.

The stabilisation interval controls how long failed peers linger in finger
tables; it is the mechanism behind Figure 11's failure sensitivity.  Longer
intervals mean more routing retries and timeouts under the same churn.
"""

from __future__ import annotations

from repro.experiments import figures


def test_stabilization_interval_ablation(benchmark, bench_scale, bench_seed,
                                         bench_executor, record_table):
    intervals = (0.0, 60.0, 600.0)
    table = benchmark.pedantic(
        lambda: figures.ablation_stabilization(bench_scale, seed=bench_seed,
                                               executor=bench_executor,
                                               intervals=intervals),
        rounds=1, iterations=1)
    record_table(table, benchmark)

    response_times = table.series_values("response time (s)")
    messages = table.series_values("messages")
    assert table.x_values() == list(intervals)
    # Perfectly fresh routing state (interval 0) is at least as fast as the
    # slowest-refresh configuration under a 50 % failure churn.
    assert response_times[0] <= response_times[-1]
    assert messages[0] <= messages[-1] * 1.05
