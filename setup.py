"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists so
that editable installs work on minimal environments that lack the ``wheel``
package (legacy ``setup.py develop`` path).
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Data Currency in Replicated DHTs' (SIGMOD 2007): "
        "UMS + KTS over simulated Chord/CAN/Kademlia DHTs"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
