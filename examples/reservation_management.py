#!/usr/bin/env python
"""Reservation management (paper Section 1) — seats, churn and failed updates.

A 20-seat venue takes reservations from peers all over the network.  The
example demonstrates:

* normal operation: customers reserve seats, the book never double-books;
* an update that misses some replica holders (the paper's motivating fault):
  stale replicas remain in the DHT, yet subsequent reads keep returning the
  current book because UMS recognises the latest timestamp;
* heavy churn, after which the reservation book is still intact.

Run with::

    python examples/reservation_management.py
"""

from __future__ import annotations

import random

from repro.api import Cluster
from repro.apps import ReservationBook, SeatAlreadyTaken


def main() -> None:
    rng = random.Random(21)
    cluster = Cluster.build(peers=150, replicas=12, seed=21)
    network, session = cluster.network, cluster.session()

    book = ReservationBook(session, "opera-house", capacity=20)
    book.initialize()

    print("== customers reserve seats ==")
    customers = [f"customer-{index}" for index in range(12)]
    for customer in customers:
        seat = book.reserve(customer)
        print(f"  {customer:<12} -> {seat}")
    print(f"occupancy: {book.occupancy():.0%}, free seats: {len(book.available_seats())}")
    print()

    print("== double booking is refused ==")
    try:
        book.reserve("latecomer", seat="seat-0")
    except SeatAlreadyTaken as error:
        print(f"  refused: {error}")
    print()

    print("== an update misses two replica holders ==")
    holders = {network.responsible_peer(book.key, h) for h in cluster.replication}
    unreachable = frozenset(list(holders)[:2])
    state = session.retrieve(book.key).data
    state["reservations"]["seat-19"] = "vip-guest"
    session.insert(book.key, dict(state), unreachable=unreachable)
    print(f"  update reached {len(holders) - len(unreachable)}/{len(holders)} replica holders")
    print(f"  p_t after the partial update: {cluster.currency_probability(book.key):.2f}")
    print(f"  seat-19 is now held by: {book.holder_of('seat-19')}")
    print()

    print("== heavy churn, then business as usual ==")
    for _ in range(60):
        peer = network.random_alive_peer()
        if rng.random() < 0.4:
            network.fail_peer(peer)
        else:
            network.leave_peer(peer)
        network.join_peer()
    print(f"  churn: {network.stats.failures} failures, {network.stats.leaves} leaves")
    seat = book.reserve("after-churn-customer")
    print(f"  new reservation after churn: {seat}")
    print(f"  reservations intact: {len(book.reservations())} seats held, "
          f"occupancy {book.occupancy():.0%}")
    result = session.retrieve(book.key)
    print(f"  final read certified current: {result.is_current} "
          f"({result.replicas_inspected} replicas probed)")
    session.close()


if __name__ == "__main__":
    main()
