#!/usr/bin/env python
"""Agenda management over a replicated DHT (paper Section 1, first motivating app).

A team shares one agenda replicated across a churning P2P network.  Members
add meetings from different peers; the shared agenda must always reflect the
latest state, otherwise double bookings slip in.  The example shows that the
agenda stays correct while peers join, leave and fail between operations.

Run with::

    python examples/agenda_sharing.py
"""

from __future__ import annotations

import random

from repro.api import Cluster
from repro.apps import SharedAgenda


def churn(network, rng: random.Random, departures: int, failure_probability: float = 0.3) -> None:
    """Apply some churn: peers depart (sometimes failing) and fresh peers join."""
    for _ in range(departures):
        peer = network.random_alive_peer()
        if rng.random() < failure_probability:
            network.fail_peer(peer)
        else:
            network.leave_peer(peer)
        network.join_peer()


def main() -> None:
    rng = random.Random(7)
    cluster = Cluster.build(peers=128, replicas=10, seed=7)
    session = cluster.session()
    agenda = SharedAgenda(session, "atlas-team")

    print("== a week of scheduling under churn ==")
    agenda.add_entry("Kick-off meeting", start=9.0, end=10.0,
                     participants=["alice", "bob"])
    churn(cluster.network, rng, departures=10)

    agenda.add_entry("Design review", start=11.0, end=12.5,
                     participants=["alice", "carol"])
    churn(cluster.network, rng, departures=10)

    agenda.add_entry("SIGMOD dry-run", start=14.0, end=15.0,
                     participants=["alice", "bob", "carol"])
    churn(cluster.network, rng, departures=10)

    print(f"entries after churn ({cluster.network.stats.failures} failures, "
          f"{cluster.network.stats.leaves} leaves, {cluster.network.stats.joins} joins):")
    for entry in agenda.entries():
        people = ", ".join(entry.participants)
        print(f"  [{entry.entry_id}] {entry.title:<18} {entry.start:>5.1f}–{entry.end:<5.1f} ({people})")

    print()
    print("== double-booking check ==")
    print(f"is 11:30–12:00 busy? {agenda.busy_between(11.5, 12.0)}")
    print(f"conflicting entries: {len(agenda.conflicts())}")

    print()
    print("== cancelling the dry-run ==")
    cancelled = agenda.cancel_entry(2)
    print(f"cancelled: {cancelled}; remaining entries: {len(agenda)}")

    result = session.retrieve(agenda.key)
    print()
    print(f"final read was certified current: {result.is_current} "
          f"(probed {result.replicas_inspected} of {cluster.replication.factor} replicas, "
          f"{result.message_count} messages)")
    print(f"session traffic for the whole week: {session.operations} operations, "
          f"{session.messages_sent} messages")
    session.close()


if __name__ == "__main__":
    main()
