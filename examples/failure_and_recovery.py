#!/usr/bin/env python
"""Failures, lost counters, and the paper's repair strategies (Section 4.2.2).

This example walks through the hardest scenario the paper handles:

1. the responsible of timestamping for a key *fails* (its counter is lost);
2. the next responsible rebuilds the counter with the **indirect algorithm**
   from the timestamps stored with the replicas;
3. a timestamp that was generated but never committed is repaired by the
   **recovery** strategy when the failed peer comes back;
4. a simulation run with the **periodic inspection** process enabled shows the
   probability of currency and availability (p_t) staying high under heavy
   failure churn.

Run with::

    python examples/failure_and_recovery.py
"""

from __future__ import annotations

from repro.api import Cluster
from repro.simulation import Algorithm, SimulationParameters, run_simulation


def lost_counter_walkthrough() -> None:
    print("== 1-3. losing and repairing the timestamping counter ==")
    cluster = Cluster.build(peers=96, replicas=10, seed=5)
    network, kts = cluster.network, cluster.kts
    session = cluster.session()

    session.insert("ledger", {"balance": 100})
    session.insert("ledger", {"balance": 120})
    responsible = kts.responsible_of_timestamping("ledger")
    print(f"responsible of timestamping: peer {responsible}")
    print(f"last timestamp before the failure: {kts.last_ts('ledger').value}")

    # A timestamp is generated but the requester crashes before committing it.
    orphan = kts.gen_ts("ledger")
    print(f"orphan timestamp generated but never committed: {orphan.value}")

    network.fail_peer(responsible)
    network.join_peer()
    print(f"peer {responsible} failed; new responsible: "
          f"{kts.responsible_of_timestamping('ledger')}")

    # The indirect algorithm rebuilds the counter from the replicas, which only
    # know about the committed timestamps.
    rebuilt = kts.last_ts("ledger")
    print(f"last timestamp known after indirect initialisation: {rebuilt.value} "
          f"(the orphan {orphan.value} is invisible)")

    # The failed peer restarts and reports its counters: recovery strategy.
    corrected = kts.recover("ledger", orphan.value)
    print(f"recovery applied a correction: {corrected}; "
          f"last timestamp now {kts.last_ts('ledger').value}")

    next_update = session.insert("ledger", {"balance": 150})
    print(f"next update obtained timestamp {next_update.timestamp.value} "
          f"(> {orphan.value}, monotonicity preserved)")
    outcome = session.retrieve("ledger")
    print(f"retrieve returns {outcome.data} — certified current: {outcome.is_current}")
    session.close()
    print()


def inspection_under_heavy_failures() -> None:
    print("== 4. periodic inspection under heavy failure churn (simulation) ==")
    parameters = SimulationParameters(
        num_peers=300, num_keys=12, duration_s=1200.0, num_queries=20,
        churn_rate_per_s=0.25, failure_rate=0.6, algorithm=Algorithm.UMS_DIRECT,
        inspection_interval_s=120.0, currency_sample_interval_s=60.0, seed=9)
    result = run_simulation(parameters)
    print(f"churn events: {result.churn_events} ({result.failures} failures)")
    print(f"periodic inspections: {result.inspections_performed} "
          f"(corrections applied: {result.counter_corrections})")
    print(f"average p_t over the run: {result.avg_currency_probability:.2f}")
    print(f"queries answered with a certified-current replica: {result.currency_rate:.0%}")
    print(f"average response time: {result.avg_response_time_s:.2f} s, "
          f"average messages: {result.avg_messages:.1f}")


def main() -> None:
    lost_counter_walkthrough()
    inspection_under_heavy_failures()


if __name__ == "__main__":
    main()
