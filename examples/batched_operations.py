#!/usr/bin/env python
"""Batched operations and consistency levels through the client API.

A session can read and write many keys at once: ``insert_many`` amortises the
KTS timestamp requests (keys sharing a responsible of timestamping share one
routed exchange) and coalesces replica writes per destination peer;
``retrieve_many`` interleaves the replica probes across keys the same way.
The batch is semantically identical to a per-key loop — same data, same
currency certificates — but sends measurably fewer messages.

The example also shows the per-retrieve consistency levels:

* ``Consistency.CURRENT`` — the paper's certified retrieval (the default);
* ``Consistency.ANY``     — first replica found, no KTS lookup (cheapest);
* ``Consistency.BEST_EFFORT`` — bounded probes, freshest replica seen.

Run with::

    python examples/batched_operations.py
"""

from __future__ import annotations

from repro.api import Cluster, Consistency


def main() -> None:
    cluster = Cluster.build(peers=96, replicas=10, seed=42)
    keys = [f"sensor-{index}" for index in range(12)]

    print("== batched insert vs per-key loop ==")
    with cluster.session() as session:
        batch = session.insert_many((key, {"reading": index})
                                    for index, key in enumerate(keys))
        print(f"insert_many({len(keys)} keys): {batch.message_count} messages, "
              f"fully replicated: {batch.fully_replicated}")
    with cluster.session() as session:
        for index, key in enumerate(keys):
            session.insert(key, {"reading": index})
        print(f"per-key loop:          {session.messages_sent} messages")
    print()

    print("== batched retrieve vs per-key loop ==")
    with cluster.session() as session:
        batch = session.retrieve_many(keys)
        print(f"retrieve_many: {batch.message_count} messages, "
              f"{batch.current_count}/{len(batch)} certified current")
    with cluster.session() as session:
        results = [session.retrieve(key) for key in keys]
        current = sum(1 for result in results if result.is_current)
        print(f"per-key loop:  {session.messages_sent} messages, "
              f"{current}/{len(results)} certified current")
    print()

    print("== consistency levels on the same key ==")
    with cluster.session() as session:
        for level in Consistency.ALL:
            result = session.retrieve(keys[0], consistency=level)
            print(f"  {level:<12} -> data={result.data}, current? {result.is_current!s:<5} "
                  f"probes={result.replicas_inspected}, messages={result.message_count}")
    print()

    print("== a whole dashboard refresh in one best-effort batch ==")
    with cluster.session(consistency=Consistency.BEST_EFFORT) as session:
        batch = session.retrieve_many(keys, max_probes=2)
        readings = [result.data["reading"] for result in batch if result.found]
        print(f"read {len(readings)}/{len(keys)} sensors with "
              f"{batch.message_count} messages (≤2 probes per key)")


if __name__ == "__main__":
    main()
