#!/usr/bin/env python
"""Cooperative auction management (paper Section 1) — why currency matters.

Bidders race to outbid each other on an item whose state is replicated in the
DHT.  Accepting a bid requires the *current* high bid: if a peer acted on a
stale replica it could accept a bid lower than one already accepted.

The example runs the same bidding war twice:

* with **UMS**, every read is certified current, so the bid history is
  monotone and the winner is the true highest bidder;
* with the **BRK baseline**, two concurrent updates can produce replicas with
  the same version number, and the baseline cannot tell which is current — the
  example surfaces the resulting ambiguity.

Run with::

    python examples/cooperative_auction.py
"""

from __future__ import annotations

from repro.api import Cluster
from repro.apps import Auction, BidRejected


def ums_auction() -> None:
    print("== UMS-backed auction ==")
    cluster = Cluster.build(peers=96, replicas=10, seed=11)
    session = cluster.session()
    auction = Auction(session, "violin-1713", seller="sotheby", reserve_price=100.0,
                      minimum_increment=5.0)
    auction.open()

    bids = [("alice", 100.0), ("bob", 120.0), ("carol", 110.0), ("alice", 140.0),
            ("bob", 139.0), ("carol", 155.0)]
    for bidder, amount in bids:
        try:
            accepted = auction.place_bid(bidder, amount)
            print(f"  accepted  {bidder:<6} {amount:>7.2f}  (bid #{accepted.sequence})")
        except BidRejected as rejection:
            print(f"  rejected  {bidder:<6} {amount:>7.2f}  ({rejection})")

    winner = auction.close()
    print(f"  winner: {winner.bidder} at {winner.amount:.2f}")
    history = [bid.amount for bid in auction.bids()]
    print(f"  accepted bid history is strictly increasing: "
          f"{all(b > a for a, b in zip(history, history[1:]))}")
    print(f"  session traffic: {session.operations} operations, "
          f"{session.messages_sent} messages")
    session.close()
    print()


def brk_auction() -> None:
    print("== BRK-backed auction (no currency guarantee) ==")
    cluster = Cluster.build(peers=96, replicas=10, service="brk", seed=11)
    brk = cluster.service()
    key = "auction:violin-1713"
    opening = brk.insert(key, {"status": "open", "high_bid": 100.0, "bidder": "alice"})

    # Two peers accept bids concurrently: both read {high_bid: 100} (version 1)
    # and both write a new state with version 2 — BRICKS cannot order them.
    # Their messages reach the replica holders in different orders (carol's
    # update does not reach half of them), leaving same-version replicas with
    # different contents.
    holders = sorted({cluster.network.responsible_peer(key, h)
                      for h in cluster.replication})
    brk.insert(key, {"status": "open", "high_bid": 120.0, "bidder": "bob"},
               observed_version=opening.version)
    brk.insert(key, {"status": "open", "high_bid": 110.0, "bidder": "carol"},
               observed_version=opening.version,
               unreachable=frozenset(holders[::2]))

    outcome = brk.retrieve(key)
    print(f"  BRK returned high bid {outcome.data['high_bid']} by {outcome.data['bidder']} "
          f"(version {outcome.version})")
    print(f"  replicas inspected: {outcome.replicas_inspected}, "
          f"messages: {outcome.trace.message_count}")
    print(f"  ambiguous (same version, different data)? {outcome.ambiguous}")
    print("  -> bob's 120.0 may silently lose to carol's 110.0 depending on replica order")


def main() -> None:
    ums_auction()
    brk_auction()


if __name__ == "__main__":
    main()
