#!/usr/bin/env python
"""Scalability study: regenerate the paper's headline comparison from the CLI.

Runs the simulation harness (Table 1 workload: Poisson churn with failures,
per-key Poisson updates, queries at uniformly distributed times) for the three
algorithms over a sweep of network sizes, and prints response time and
communication cost — i.e. a small-scale Figures 7 and 8 — plus the Theorem 1
theory table for reference.

Run with::

    python examples/scalability_study.py            # quick sweep (seconds)
    python examples/scalability_study.py --paper    # full 10,000-peer sweep
"""

from __future__ import annotations

import argparse
import time

from repro.core import analysis
from repro.experiments import (
    expected_retrievals_table,
    figure7_simulated_scaleup,
    figure8_messages_vs_peers,
    scaleup_results,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true",
                        help="run the full Table 1 scale (2,000–10,000 peers)")
    parser.add_argument("--seed", type=int, default=2007)
    arguments = parser.parse_args()
    scale = "paper" if arguments.paper else "quick"

    print(f"scale profile: {scale}")
    started = time.time()
    shared = scaleup_results(scale, seed=arguments.seed)
    response_time = figure7_simulated_scaleup(scale, seed=arguments.seed, precomputed=shared)
    messages = figure8_messages_vs_peers(scale, seed=arguments.seed, precomputed=shared)
    elapsed = time.time() - started

    print()
    print(response_time.to_text())
    print()
    print(messages.to_text())
    print()
    print(expected_retrievals_table().to_text())
    print()
    print(f"paper example check: with p_t = 0.35, E[X] = "
          f"{analysis.expected_retrievals(0.35, 10):.2f} < 3 "
          f"(bound 1/p_t = {analysis.expected_retrievals_upper_bound(0.35):.2f})")
    print(f"sweep wall-clock time: {elapsed:.1f} s")


if __name__ == "__main__":
    main()
