#!/usr/bin/env python
"""Quickstart: current-replica retrieval through the unified client API.

This example builds a small Chord-based cluster through ``Cluster.build`` —
the one construction path of :mod:`repro.api` — and shows the three
behaviours the paper is about:

1. a plain insert/retrieve returns the current replica and *knows* it is
   current (thanks to the KTS timestamp);
2. an update that cannot reach some replica holders leaves stale replicas
   behind, yet UMS still returns the current one — and still knows;
3. the BRK baseline (version numbers) must fetch every replica and cannot
   tell which replica is current after concurrent updates — and both
   algorithms answer through the *same* service interface with the *same*
   result types, so the comparison is configuration, not code.

Run with::

    python examples/quickstart.py

The cluster runs unchanged over any overlay registered in
``repro.dht.registry`` (pass ``protocol="can"`` / ``"kademlia"``), and any
currency service registered in ``repro.api.services``; see
``examples/overlay_selection.py`` and ``examples/batched_operations.py``.
"""

from __future__ import annotations

from repro.api import Cluster


def main() -> None:
    cluster = Cluster.build(peers=64, replicas=10, seed=2007)
    network = cluster.network

    print(f"cluster: {cluster!r}")
    print(f"replication factor |Hr| = {cluster.replication.factor}")
    print()

    # ------------------------------------------------------------------ 1. basic
    print("== 1. insert / retrieve through a session ==")
    with cluster.session() as session:
        insert = session.insert("meeting-room", {"slot": "09:00", "owner": "alice"})
        print(f"inserted with timestamp {insert.timestamp} "
              f"({insert.replicas_written}/{insert.replicas_attempted} replicas, "
              f"{insert.message_count} messages)")
        result = session.retrieve("meeting-room")
        print(f"retrieved {result.data} — current? {result.is_current}, "
              f"probed {result.replicas_inspected} replica(s), "
              f"{result.message_count} messages")
        print(f"session tally: {session.operations} operations, "
              f"{session.messages_sent} messages")
    print()

    # --------------------------------------------- 2. update with unreachable peers
    print("== 2. update that misses some replica holders ==")
    # Pretend two replica holders are unreachable at update time: their replicas
    # keep the *old* value (the paper's motivating scenario).
    holders = {network.responsible_peer("meeting-room", h) for h in cluster.replication}
    unreachable = frozenset(list(holders)[:2])
    with cluster.session() as session:
        session.insert("meeting-room", {"slot": "14:00", "owner": "bob"},
                       unreachable=unreachable)
        print(f"update reached {len(holders) - len(unreachable)} of {len(holders)} "
              "responsible peers")
        result = session.retrieve("meeting-room")
        print(f"retrieved {result.data} — current? {result.is_current}, "
              f"probed {result.replicas_inspected} replica(s)")
    print(f"probability of currency and availability p_t ≈ "
          f"{cluster.currency_probability('meeting-room'):.2f}")
    print()

    # ------------------------------------------------------------- 3. BRK baseline
    print("== 3. the BRK baseline under concurrent updates ==")
    brk = cluster.session(service="brk")
    initial = brk.insert("shared-doc", {"rev": "draft-by-alice"})
    # Two peers update concurrently: both observed version 1 before writing, so
    # both write version 2 — and their messages reach the replica holders in
    # different orders (here: bob's update does not reach half of the holders),
    # so replicas with the same version end up holding different data.
    doc_holders = sorted({network.responsible_peer("shared-doc", h)
                          for h in cluster.replication})
    brk_service = cluster.service("brk")
    first = brk_service.insert("shared-doc", {"rev": "alice-final"},
                               observed_version=initial.version)
    second = brk_service.insert("shared-doc", {"rev": "bob-final"},
                                observed_version=initial.version,
                                unreachable=frozenset(doc_holders[::2]))
    print(f"two concurrent updates both produced version {first.version} == {second.version}")
    outcome = brk.retrieve("shared-doc")
    print(f"BRK returned {outcome.data} after inspecting {outcome.replicas_inspected} "
          f"replicas ({outcome.message_count} messages); ambiguous? {outcome.ambiguous}")
    brk.close()

    # UMS handles the same race: the insert that obtained the later timestamp wins
    # everywhere, and retrieve certifies it.
    with cluster.session() as session:
        session.insert("shared-doc-ums", {"rev": "alice-final"})
        session.insert("shared-doc-ums", {"rev": "bob-final"})
        ums_outcome = session.retrieve("shared-doc-ums")
    print(f"for comparison, UMS converges on {ums_outcome.data} with "
          f"{ums_outcome.message_count} messages and a currency guarantee "
          f"(current? {ums_outcome.is_current})")


if __name__ == "__main__":
    main()
