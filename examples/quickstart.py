#!/usr/bin/env python
"""Quickstart: current-replica retrieval in a replicated DHT.

This example builds a small Chord-based DHT, replicates a data item under 10
replication hash functions, and shows the three behaviours the paper is about:

1. a plain insert/retrieve returns the current replica and *knows* it is
   current (thanks to the KTS timestamp);
2. an update that cannot reach some replica holders leaves stale replicas
   behind, yet UMS still returns the current one — and still knows;
3. the BRK baseline (version numbers) must fetch every replica and cannot
   tell which replica is current after concurrent updates.

Run with::

    python examples/quickstart.py

The stack runs unchanged over any overlay registered in
``repro.dht.registry`` (pass ``protocol="can"`` / ``"kademlia"`` to
``build_service_stack``); see ``examples/overlay_selection.py``.
"""

from __future__ import annotations

from repro import build_service_stack


def main() -> None:
    stack = build_service_stack(num_peers=64, num_replicas=10, seed=2007)
    network, ums, brk = stack.network, stack.ums, stack.brk

    print(f"network: {network!r}")
    print(f"replication factor |Hr| = {stack.replication.factor}")
    print()

    # ------------------------------------------------------------------ 1. basic
    print("== 1. insert / retrieve ==")
    insert = ums.insert("meeting-room", {"slot": "09:00", "owner": "alice"})
    print(f"inserted with timestamp {insert.timestamp} "
          f"({insert.replicas_written}/{insert.replicas_attempted} replicas, "
          f"{insert.trace.message_count} messages)")
    result = ums.retrieve("meeting-room")
    print(f"retrieved {result.data} — current? {result.is_current}, "
          f"probed {result.replicas_inspected} replica(s), "
          f"{result.trace.message_count} messages")
    print()

    # --------------------------------------------- 2. update with unreachable peers
    print("== 2. update that misses some replica holders ==")
    # Pretend two replica holders are unreachable at update time: their replicas
    # keep the *old* value (the paper's motivating scenario).
    holders = {network.responsible_peer("meeting-room", h) for h in stack.replication}
    unreachable = frozenset(list(holders)[:2])
    ums.insert("meeting-room", {"slot": "14:00", "owner": "bob"},
               unreachable=unreachable)
    print(f"update reached {len(holders) - len(unreachable)} of {len(holders)} responsible peers")
    result = ums.retrieve("meeting-room")
    print(f"retrieved {result.data} — current? {result.is_current}, "
          f"probed {result.replicas_inspected} replica(s)")
    print(f"probability of currency and availability p_t ≈ "
          f"{ums.currency_probability('meeting-room'):.2f}")
    print()

    # ------------------------------------------------------------- 3. BRK baseline
    print("== 3. the BRK baseline under concurrent updates ==")
    initial = brk.insert("shared-doc", {"rev": "draft-by-alice"})
    # Two peers update concurrently: both observed version 1 before writing, so
    # both write version 2 — and their messages reach the replica holders in
    # different orders (here: bob's update does not reach half of the holders),
    # so replicas with the same version end up holding different data.
    doc_holders = sorted({network.responsible_peer("shared-doc", h) for h in stack.replication})
    first = brk.insert("shared-doc", {"rev": "alice-final"},
                       observed_version=initial.version)
    second = brk.insert("shared-doc", {"rev": "bob-final"},
                        observed_version=initial.version,
                        unreachable=frozenset(doc_holders[::2]))
    print(f"two concurrent updates both produced version {first.version} == {second.version}")
    outcome = brk.retrieve("shared-doc")
    print(f"BRK returned {outcome.data} after inspecting {outcome.replicas_inspected} "
          f"replicas ({outcome.trace.message_count} messages); ambiguous? {outcome.ambiguous}")

    # UMS handles the same race: the insert that obtained the later timestamp wins
    # everywhere, and retrieve certifies it.
    ums.insert("shared-doc-ums", {"rev": "alice-final"})
    ums.insert("shared-doc-ums", {"rev": "bob-final"})
    ums_outcome = ums.retrieve("shared-doc-ums")
    print(f"for comparison, UMS converges on {ums_outcome.data} with "
          f"{ums_outcome.trace.message_count} messages and a currency guarantee "
          f"(current? {ums_outcome.is_current})")


if __name__ == "__main__":
    main()
