#!/usr/bin/env python
"""What-if analysis with the declarative scenario engine.

The paper's evaluation runs one workload (Table 1).  The scenario engine
turns the harness into a what-if machine: this example

1. runs the paper's baseline workload and a correlated-failure regime on
   two overlays through ``run_scenario``,
2. pivots the results into the per-metric comparison tables the
   ``repro scenario compare`` CLI prints, and
3. declares a brand-new scenario inline (a flash crowd hammering Zipf-hot
   auction items during a lossy network window), registers it, records its
   spec to a dict and replays it — demonstrating that a seeded run is
   reproducible bit-for-bit from its serialised spec.

Run with::

    python examples/scenario_whatif.py
"""

from __future__ import annotations

from repro.experiments.reporting import comparison_tables
from repro.simulation import SimulationParameters
from repro.simulation.scenarios import (
    ScenarioSpec,
    register_scenario,
    run_scenario,
    unregister_scenario,
)

#: One small parameter point, shared by every run (fair comparison).
PARAMETERS = dict(num_peers=90, num_keys=8, duration_s=600.0, num_queries=12,
                  churn_rate_per_s=0.08)


def compare_scenarios() -> None:
    """Scenario x overlay sweep, reported as per-metric tables."""
    records = []
    for scenario in ("uniform", "correlated-failures"):
        for protocol in ("chord", "kademlia"):
            result = run_scenario(
                scenario, SimulationParameters(seed=2007, **PARAMETERS),
                protocol=protocol)
            records.append((scenario, f"ums@{protocol}", result.summary()))
    for table in comparison_tables(records):
        print(table.to_text())
        print()


def declare_register_replay() -> None:
    """A custom scenario: declared, registered, recorded and replayed."""
    spec = ScenarioSpec(
        name="black-friday",
        description="Flash crowd on hot auction items over a lossy network.",
        popularity={"model": "zipf", "exponent": 1.3},
        arrivals={"model": "flash-crowd", "bursts": [[0.5, 0.08, 0.7]]},
        profile={"archetype": "auction"},
        faults=({"kind": "lossy-period", "start": 0.4, "end": 0.6,
                 "latency_factor": 4.0},))
    register_scenario(spec)
    try:
        parameters = SimulationParameters(seed=41, **PARAMETERS)
        recorded = run_scenario("black-friday", parameters)
        replayed = run_scenario(ScenarioSpec.from_dict(spec.to_dict()), parameters)
        print(f"black-friday: {recorded.query_count} queries, "
              f"avg rt {recorded.avg_response_time_s:.2f} s, "
              f"certified current {recorded.currency_rate:.0%}, "
              f"{recorded.fault_events} fault events")
        print(f"spec replay reproduces the metrics bit-for-bit: "
              f"{replayed.summary() == recorded.summary()}")
    finally:
        unregister_scenario("black-friday")


def main() -> None:
    """Run the comparison sweep, then the declare/register/replay round-trip."""
    print("= Scenario x overlay comparison (uniform vs correlated failures) =")
    compare_scenarios()
    print("= Declaring, recording and replaying a custom scenario =")
    declare_register_replay()


if __name__ == "__main__":
    main()
