#!/usr/bin/env python
"""Overlay selection through the pluggable registry.

The UMS/KTS services are DHT-agnostic: they only need the lookup service,
``put_h``/``get_h`` and responsibility notifications.  This example runs the
exact same insert/retrieve workload over every overlay registered in
:mod:`repro.dht.registry` (Chord, CAN and Kademlia out of the box), then
registers a custom overlay at runtime and drives it through the same stack —
no service code changes anywhere.

Run with::

    python examples/overlay_selection.py
"""

from __future__ import annotations

from repro.api import Cluster
from repro.dht.chord import ChordRing
from repro.dht.registry import overlay_names, register_overlay, unregister_overlay


def exercise(protocol: str) -> None:
    """Insert, churn a little, retrieve — report the per-overlay costs."""
    cluster = Cluster.build(peers=60, replicas=8, protocol=protocol, seed=2007)
    with cluster.session() as session:
        session.insert("meeting-room", {"slot": "09:00", "owner": "alice"})
        # A bit of churn: the data and the timestamp counters must follow the
        # responsibility changes regardless of the routing substrate.
        for _ in range(6):
            cluster.network.leave_peer(cluster.network.random_alive_peer())
            cluster.network.join_peer()
        session.insert("meeting-room", {"slot": "14:00", "owner": "bob"})
        result = session.retrieve("meeting-room")
    print(f"  {protocol:<12} -> {result.data}  current? {result.is_current}, "
          f"{result.message_count} messages, "
          f"{result.replicas_inspected} replica(s) probed")


def main() -> None:
    print(f"registered overlays: {', '.join(overlay_names())}")
    print()

    print("== the same UMS workload over every registered overlay ==")
    for protocol in overlay_names():
        exercise(protocol)
    print()

    print("== registering a custom overlay at runtime ==")

    def build_eager_chord(*, bits, stabilization_interval, rng, **extra):
        # A Chord variant with instant stabilisation (no stale fingers).
        return ChordRing(bits=bits, stabilization_interval=0.0, rng=rng)

    register_overlay("chord-eager", build_eager_chord)
    try:
        print(f"registered overlays: {', '.join(overlay_names())}")
        exercise("chord-eager")
    finally:
        unregister_overlay("chord-eager")


if __name__ == "__main__":
    main()
