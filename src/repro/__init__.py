"""repro — a reproduction of *Data Currency in Replicated DHTs* (SIGMOD 2007).

The package provides:

* a simulated DHT substrate (Chord, CAN and Kademlia overlays, replica storage, churn,
  message accounting) in :mod:`repro.dht`;
* a discrete-event simulation engine and network cost models in :mod:`repro.sim`;
* the paper's contribution — the Update Management Service (UMS) and the
  Key-based Timestamping Service (KTS) — plus the BRICKS baseline (BRK) in
  :mod:`repro.core`;
* the end-to-end simulation harness reproducing the paper's evaluation
  (Table 1 parameters, churn/update/query workloads) in :mod:`repro.simulation`;
* per-figure experiment generators in :mod:`repro.experiments`;
* example applications (agenda, auction, reservation management) in
  :mod:`repro.apps`.

Quickstart
----------
>>> from repro import build_service_stack
>>> stack = build_service_stack(num_peers=32, num_replicas=8, seed=7)
>>> stack.ums.insert("auction:42", {"high_bid": 100})        # doctest: +ELLIPSIS
InsertResult(...)
>>> result = stack.ums.retrieve("auction:42")
>>> result.data, result.is_current
({'high_bid': 100}, True)
"""

from repro.core import (
    BricksService,
    CounterInitialization,
    KeyBasedTimestampService,
    ReplicationScheme,
    RetrieveResult,
    ServiceStack,
    Timestamp,
    UpdateManagementService,
    build_service_stack,
)
from repro.dht import CanSpace, ChordRing, DHTNetwork, HashFamily
from repro.sim import NetworkCostModel, Simulator

__version__ = "1.0.0"

__all__ = [
    "BricksService",
    "CanSpace",
    "ChordRing",
    "CounterInitialization",
    "DHTNetwork",
    "HashFamily",
    "KeyBasedTimestampService",
    "NetworkCostModel",
    "ReplicationScheme",
    "RetrieveResult",
    "ServiceStack",
    "Simulator",
    "Timestamp",
    "UpdateManagementService",
    "__version__",
    "build_service_stack",
]
