"""repro — a reproduction of *Data Currency in Replicated DHTs* (SIGMOD 2007).

The package provides:

* the **unified client API** — ``Cluster.build(...)`` + ``Session`` handles,
  shared result types, per-retrieve consistency levels and the name-keyed
  currency-service registry — in :mod:`repro.api`;
* a simulated DHT substrate (Chord, CAN and Kademlia overlays, replica storage, churn,
  message accounting) in :mod:`repro.dht`;
* a discrete-event simulation engine and network cost models in
  :mod:`repro.simulation` (``engine`` / ``cost`` / ``metrics`` / ``processes``);
* the paper's contribution — the Update Management Service (UMS) and the
  Key-based Timestamping Service (KTS) — plus the BRICKS baseline (BRK) in
  :mod:`repro.core`;
* the end-to-end simulation harness reproducing the paper's evaluation
  (Table 1 parameters, churn/update/query workloads) in :mod:`repro.simulation`,
  plus the declarative scenario engine (skewed/bursty workloads, correlated
  fault profiles, record/replay) in :mod:`repro.simulation.scenarios`;
* per-figure experiment generators in :mod:`repro.experiments`;
* the unified execution layer — serialisable :class:`~repro.execution.RunPlan`
  grids, the parallel :class:`~repro.execution.Executor` and the on-disk run
  cache — in :mod:`repro.execution`;
* **real-service mode** — the length-prefixed wire codec, the asyncio node
  server (``repro serve``), the pooled client transport with bounded retries,
  the ``sim``/``tcp``/``uds`` backend registry and the latency-percentile
  load harness (``repro loadgen``) — in :mod:`repro.net`;
* example applications (agenda, auction, reservation management) in
  :mod:`repro.apps`.

Quickstart
----------
>>> from repro import Cluster
>>> cluster = Cluster.build(peers=32, replicas=8, seed=7)
>>> with cluster.session() as session:
...     _ = session.insert("auction:42", {"high_bid": 100})
...     result = session.retrieve("auction:42")
>>> result.data, result.is_current
({'high_bid': 100}, True)
"""

from repro.api.cluster import Cluster, Session
from repro.api.results import Consistency, InsertResult, RetrieveResult
from repro.api.services import CurrencyService, register_service, service_names
from repro.core import (
    BricksService,
    CounterInitialization,
    KeyBasedTimestampService,
    ReplicationScheme,
    ServiceStack,
    Timestamp,
    UpdateManagementService,
    build_service_stack,
)
from repro.dht import CanSpace, ChordRing, DHTNetwork, HashFamily
from repro.execution import Executor, RunPlan
from repro.simulation.cost import NetworkCostModel
from repro.simulation.engine import Simulator

__version__ = "1.7.0"

__all__ = [
    "BricksService",
    "CanSpace",
    "ChordRing",
    "Cluster",
    "Consistency",
    "CounterInitialization",
    "CurrencyService",
    "DHTNetwork",
    "Executor",
    "HashFamily",
    "InsertResult",
    "KeyBasedTimestampService",
    "NetworkCostModel",
    "ReplicationScheme",
    "RetrieveResult",
    "RunPlan",
    "ServiceStack",
    "Session",
    "Simulator",
    "Timestamp",
    "UpdateManagementService",
    "__version__",
    "build_service_stack",
    "register_service",
    "service_names",
]
