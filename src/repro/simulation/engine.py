"""A small discrete-event simulation engine.

The engine follows the classic event-heap design with two usage styles:

* **callback scheduling** — ``sim.schedule(delay, callback)`` runs a callable
  at a future simulated time;
* **processes** — generator functions that ``yield`` events (typically
  ``sim.timeout(dt)``) and are resumed when the event fires, in the style of
  SimJava entities or SimPy processes.

The simulation harness uses processes for churn, update and query workloads;
the engine is also a reusable, stand-alone component (see
``examples/scalability_study.py`` and the unit tests).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

__all__ = ["Event", "Process", "SimulationError", "Simulator", "Timeout"]


class SimulationError(Exception):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """A one-shot event that callbacks and processes can wait on."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Invoke ``callback(event)`` when the event fires (immediately if it already has)."""
        if self.triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None, *, delay: float = 0.0) -> "Event":
        """Schedule the event to fire ``delay`` simulated seconds from now."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.sim._schedule_event(self, value, delay)
        return self

    def _fire(self, value: Any) -> None:
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires after a fixed delay (created via :meth:`Simulator.timeout`)."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        super().__init__(sim)
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        self.delay = delay
        sim._schedule_event(self, value, delay)


class Process(Event):
    """A generator-based process.

    The generator yields :class:`Event` objects; the process resumes with the
    event's value when it fires.  The process itself is an event that fires
    (with the generator's return value) when the generator finishes, so
    processes can wait on each other.
    """

    def __init__(self, sim: "Simulator", generator: Generator[Event, Any, Any],
                 name: Optional[str] = None) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator (did you call the function?)")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        # Start the process at the current simulated time.
        startup = Timeout(sim, 0.0)
        startup.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            self._fire(getattr(stop, "value", None))
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects")
        target.add_callback(self._resume)


class Simulator:
    """Event-heap simulator with a floating-point clock (seconds)."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._heap: List[Tuple[float, int, Event, Any]] = []
        self._sequence = itertools.count()
        self._processed = 0

    # ----------------------------------------------------------------- events
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from the current time."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: Optional[str] = None) -> Process:
        """Register a generator as a process starting at the current time."""
        return Process(self, generator, name=name)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback()`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        event = self.timeout(delay)
        event.add_callback(lambda _event: callback())
        return event

    def _schedule_event(self, event: Event, value: Any, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        heapq.heappush(self._heap, (self.now + delay, next(self._sequence), event, value))

    # -------------------------------------------------------------- execution
    @property
    def pending_events(self) -> int:
        """Number of events still waiting to fire."""
        return len(self._heap)

    @property
    def processed_events(self) -> int:
        """Number of events fired since the simulator was created."""
        return self._processed

    def step(self) -> bool:
        """Fire the next event; return ``False`` when the heap is empty."""
        if not self._heap:
            return False
        time, _seq, event, value = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = time
        self._processed += 1
        event._fire(value)
        return True

    def run(self, until: Optional[float] = None, *,
            max_events: Optional[int] = None) -> float:
        """Run until the heap empties, the clock passes ``until``, or
        ``max_events`` events have fired.  Returns the final clock value."""
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                break
            next_time = self._heap[0][0]
            if until is not None and next_time > until:
                self.now = until
                break
            self.step()
            fired += 1
        if until is not None and self.now < until and not self._heap:
            self.now = until
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Simulator(now={self.now:.3f}, pending={self.pending_events})"
