"""The simulation harness: one run = one parameter point for one algorithm.

A run proceeds exactly as described in Section 5.1:

1. build a network of ``num_peers`` peers and the replication scheme ``Hr``;
2. insert the initial version of every data item;
3. start the churn process (Poisson departures, 5 % failures, compensated by
   joins) and the per-key Poisson update workload;
4. issue ``num_queries`` retrieve operations at uniformly distributed times
   and record, for each, the response time (via the network cost model) and
   the number of messages;
5. report the averages.

The same harness runs UMS-Direct, UMS-Indirect and BRK so that the three
algorithms face identical workloads (and, with the same seed, identical churn
and update schedules).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from repro.core.baseline import BricksService
from repro.core.kts import CounterInitialization, KeyBasedTimestampService
from repro.core.replication import ReplicationScheme
from repro.core.ums import UpdateManagementService
from repro.dht.hashing import HashFamily
from repro.dht.network import DHTNetwork
from repro.sim.cost import NetworkCostModel
from repro.sim.engine import Simulator
from repro.sim.metrics import TimeSeries
from repro.simulation.churn import ChurnProcess
from repro.simulation.config import Algorithm, SimulationParameters
from repro.simulation.results import QueryObservation, RunResult
from repro.simulation.workload import QuerySchedule, UpdateWorkload, default_keys, payload_for

__all__ = ["SimulationHarness", "run_simulation"]


class _RetrieveOutcome:
    """Normalised view over UMS and BRK retrieve results."""

    def __init__(self, trace, replicas_inspected: int, found: bool, is_current: bool) -> None:
        self.trace = trace
        self.replicas_inspected = replicas_inspected
        self.found = found
        self.is_current = is_current


class SimulationHarness:
    """Builds and runs one simulation described by :class:`SimulationParameters`."""

    def __init__(self, parameters: SimulationParameters) -> None:
        self.parameters = parameters
        self._master_rng = random.Random(parameters.seed)
        self.network: Optional[DHTNetwork] = None
        self.replication: Optional[ReplicationScheme] = None
        self.kts: Optional[KeyBasedTimestampService] = None
        self.ums: Optional[UpdateManagementService] = None
        self.brk: Optional[BricksService] = None
        self.cost_model: Optional[NetworkCostModel] = None
        self.sim: Optional[Simulator] = None
        self.churn: Optional[ChurnProcess] = None
        self.keys: List[str] = []
        self._update_sequence: Dict[str, int] = {}
        self._result: Optional[RunResult] = None
        self._is_setup = False

    # ------------------------------------------------------------------- setup
    def setup(self) -> None:
        """Build the network, the services and the initial data population."""
        parameters = self.parameters
        self.network = DHTNetwork.build(
            parameters.num_peers, protocol=parameters.protocol, bits=parameters.bits,
            stabilization_interval=parameters.stabilization_interval_s,
            seed=self._master_rng.getrandbits(64))
        family = HashFamily(bits=parameters.bits, seed=self._master_rng.getrandbits(64))
        self.replication = ReplicationScheme(
            family.sample_many(parameters.num_replicas, prefix="hr"))
        initialization = (CounterInitialization.INDIRECT
                          if parameters.algorithm == Algorithm.UMS_INDIRECT
                          else CounterInitialization.DIRECT)
        self.kts = KeyBasedTimestampService(
            self.network, self.replication, ts_hash=family.sample("h-ts"),
            initialization=initialization, seed=self._master_rng.getrandbits(64))
        self.ums = UpdateManagementService(
            self.network, self.kts, self.replication, probe_order=parameters.probe_order,
            seed=self._master_rng.getrandbits(64))
        self.brk = BricksService(self.network, self.replication,
                                 seed=self._master_rng.getrandbits(64))
        self.cost_model = parameters.build_cost_model(
            rng=random.Random(self._master_rng.getrandbits(64)))
        self.keys = default_keys(parameters.num_keys)
        self._update_sequence = {key: 0 for key in self.keys}
        for key in self.keys:
            self._insert(key)
        self._result = RunResult(algorithm=parameters.algorithm,
                                 num_peers=parameters.num_peers,
                                 num_replicas=parameters.num_replicas,
                                 parameters=parameters.describe())
        self._is_setup = True

    # --------------------------------------------------------------- operations
    def _insert(self, key: str) -> None:
        """Write the next version of ``key`` with the configured algorithm."""
        sequence = self._update_sequence[key]
        payload = payload_for(key, sequence)
        self._update_sequence[key] = sequence + 1
        if self.parameters.algorithm == Algorithm.BRK:
            self.brk.insert(key, payload)
        else:
            self.ums.insert(key, payload)

    def _retrieve(self, key: str) -> _RetrieveOutcome:
        """Read ``key`` with the configured algorithm, normalising the outcome."""
        if self.parameters.algorithm == Algorithm.BRK:
            outcome = self.brk.retrieve(key)
            # BRK cannot certify that the returned replica is current, which is
            # precisely the paper's point; report is_current=False.
            return _RetrieveOutcome(outcome.trace, outcome.replicas_inspected,
                                    outcome.found, is_current=False)
        outcome = self.ums.retrieve(key)
        return _RetrieveOutcome(outcome.trace, outcome.replicas_inspected,
                                outcome.found, outcome.is_current)

    # --------------------------------------------------------------------- run
    def run(self) -> RunResult:
        """Execute the workload and return the aggregated result."""
        if not self._is_setup:
            self.setup()
        parameters = self.parameters
        result = self._result
        self.sim = Simulator()
        self.network.now = 0.0

        # Churn: Poisson departures compensated by joins.
        self.churn = ChurnProcess(self.sim, self.network,
                                  rate_per_s=parameters.churn_rate_per_s,
                                  failure_rate=parameters.failure_rate,
                                  rng=random.Random(self._master_rng.getrandbits(64)),
                                  until=parameters.duration_s)

        # Updates: per-key Poisson processes, materialised as a schedule.
        update_rng = random.Random(self._master_rng.getrandbits(64))
        updates = UpdateWorkload(self.keys, parameters.update_rate_per_hour,
                                 update_rng).schedule(parameters.duration_s)
        for event in updates:
            self.sim.schedule(event.time, self._make_update_callback(event.key))

        # Queries: uniformly distributed over the run.
        query_rng = random.Random(self._master_rng.getrandbits(64))
        queries = QuerySchedule(self.keys, parameters.num_queries,
                                query_rng).schedule(parameters.duration_s)
        for event in queries:
            self.sim.schedule(event.time, self._make_query_callback(event.key))

        # Optional maintenance / instrumentation processes.
        if parameters.inspection_interval_s > 0 and parameters.algorithm != Algorithm.BRK:
            self.sim.process(self._inspection_process(parameters.inspection_interval_s),
                             name="periodic-inspection")
        if parameters.currency_sample_interval_s > 0:
            result.currency_series = TimeSeries("p_t")
            self.sim.process(self._currency_sampling_process(
                parameters.currency_sample_interval_s), name="currency-sampling")

        self.sim.run(until=parameters.duration_s)

        result.updates_performed = sum(self._update_sequence.values()) - len(self.keys)
        result.churn_events = self.churn.event_count
        result.failures = self.churn.failure_count
        return result

    def _inspection_process(self, interval_s: float):
        """Periodic inspection (Section 4.2.2): responsibles re-check their counters."""
        while True:
            yield self.sim.timeout(interval_s)
            self.network.now = self.sim.now
            corrections = self.kts.inspect_counters()
            self._result.inspections_performed += 1
            self._result.counter_corrections += corrections

    def _currency_sampling_process(self, interval_s: float):
        """Sample the mean probability of currency and availability over all keys."""
        while True:
            yield self.sim.timeout(interval_s)
            self.network.now = self.sim.now
            probabilities = [self.ums.currency_probability(key) for key in self.keys]
            self._result.currency_series.record(
                self.sim.now, sum(probabilities) / len(probabilities))

    def _make_update_callback(self, key: str) -> Callable[[], None]:
        def callback() -> None:
            self.network.now = self.sim.now
            self._insert(key)
        return callback

    def _make_query_callback(self, key: str) -> Callable[[], None]:
        def callback() -> None:
            self.network.now = self.sim.now
            outcome = self._retrieve(key)
            response_time = self.cost_model.duration(outcome.trace)
            self._result.record_query(QueryObservation(
                time=self.sim.now, key=key, response_time_s=response_time,
                messages=outcome.trace.message_count,
                replicas_inspected=outcome.replicas_inspected,
                found=outcome.found, is_current=outcome.is_current))
        return callback


def run_simulation(parameters: SimulationParameters) -> RunResult:
    """Convenience wrapper: build a harness, run it, return the result."""
    harness = SimulationHarness(parameters)
    return harness.run()
