"""The simulation harness: one run = one parameter point for one algorithm.

A run proceeds exactly as described in Section 5.1:

1. build a cluster of ``num_peers`` peers through the client API
   (:meth:`repro.api.Cluster.build` — overlay and currency service both
   resolved through their registries);
2. insert the initial version of every data item;
3. start the churn process (Poisson departures, 5 % failures, compensated by
   joins) and the per-key Poisson update workload;
4. issue ``num_queries`` retrieve operations at uniformly distributed times
   through a :class:`repro.api.Session` and record, for each, the response
   time (via the network cost model) and the number of messages;
5. report the averages.

The same harness runs UMS-Direct, UMS-Indirect and BRK — and any currency
service registered in :mod:`repro.api.services` — so the algorithms face
identical workloads (and, with the same seed, identical churn and update
schedules).  Because every service returns the shared result types, no
per-algorithm normalisation is needed anywhere.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.api.cluster import Cluster, Session
from repro.api.results import RetrieveResult
from repro.core.detector import CrossCheckDetector
from repro.core.kts import KeyBasedTimestampService
from repro.core.replication import ReplicationScheme
from repro.dht.network import DHTNetwork
from repro.simulation.cost import NetworkCostModel
from repro.simulation.engine import Simulator
from repro.simulation.metrics import TimeSeries
from repro.simulation.churn import ChurnProcess
from repro.simulation.config import Algorithm, SimulationParameters
from repro.simulation.results import QueryObservation, RunResult
from repro.simulation.workload import QuerySchedule, UpdateWorkload, default_keys, payload_for

__all__ = ["SimulationHarness", "run_simulation"]


class SimulationHarness:
    """Builds and runs one simulation described by :class:`SimulationParameters`.

    ``scenario`` (a :class:`repro.simulation.scenarios.Scenario`) replaces
    the paper's workload with a declarative one: the scenario supplies the
    update and query schedules (popularity × arrivals × profile) and installs
    its fault profiles on top of the background churn.  Without one, the run
    is exactly the Section 5.1 setup described above, with an unchanged RNG
    draw order — seeded plain runs are bit-for-bit identical to earlier
    releases.
    """

    def __init__(self, parameters: SimulationParameters,
                 scenario=None) -> None:
        self.parameters = parameters
        self.scenario = scenario
        self._master_rng = random.Random(parameters.seed)
        self.cluster: Optional[Cluster] = None
        self.session: Optional[Session] = None
        self.network: Optional[DHTNetwork] = None
        self.replication: Optional[ReplicationScheme] = None
        self.kts: Optional[KeyBasedTimestampService] = None
        self.cost_model: Optional[NetworkCostModel] = None
        self.sim: Optional[Simulator] = None
        self.churn: Optional[ChurnProcess] = None
        #: Passive timestamp cross-check detector attached to the UMS; it
        #: sends no messages and draws no randomness, so attaching it keeps
        #: seeded runs bit-identical to earlier releases.
        self.detector = CrossCheckDetector(window=parameters.cross_check_window)
        self.keys: List[str] = []
        self._update_sequence: Dict[str, int] = {}
        self._result: Optional[RunResult] = None
        self._is_setup = False

    # ------------------------------------------------------------------- setup
    def setup(self) -> None:
        """Build the cluster, the session and the initial data population."""
        parameters = self.parameters
        self.cluster = Cluster.build(
            parameters.num_peers, protocol=parameters.protocol,
            service=Algorithm.service_name(parameters.algorithm),
            replicas=parameters.num_replicas, bits=parameters.bits,
            initialization=Algorithm.initialization(parameters.algorithm),
            probe_order=parameters.probe_order,
            stabilization_interval=parameters.stabilization_interval_s,
            rng=self._master_rng,
            service_options={"ums": {"detector": self.detector}})
        self.network = self.cluster.network
        self.replication = self.cluster.replication
        self.kts = self.cluster.kts
        # A floating session: every operation starts at a fresh random origin,
        # matching the paper's query model.
        self.session = self.cluster.session(consistency=parameters.consistency)
        self.cost_model = parameters.build_cost_model(
            rng=random.Random(self._master_rng.getrandbits(64)))
        self.keys = default_keys(parameters.num_keys)
        self._update_sequence = {key: 0 for key in self.keys}
        for key in self.keys:
            self._insert(key)
        self._result = RunResult(algorithm=parameters.algorithm,
                                 num_peers=parameters.num_peers,
                                 num_replicas=parameters.num_replicas,
                                 parameters=parameters.describe())
        self._is_setup = True

    # ------------------------------------------------- legacy service handles
    @property
    def ums(self):
        """The UMS instance of the cluster (shared placement with the baseline)."""
        return self.cluster.service("ums") if self.cluster is not None else None

    @property
    def brk(self):
        """The BRK baseline instance of the cluster."""
        return self.cluster.service("brk") if self.cluster is not None else None

    # --------------------------------------------------------------- operations
    def _insert(self, key: str) -> None:
        """Write the next version of ``key`` through the session."""
        sequence = self._update_sequence[key]
        payload = payload_for(key, sequence)
        self._update_sequence[key] = sequence + 1
        self.session.insert(key, payload)

    def _retrieve(self, key: str) -> RetrieveResult:
        """Read ``key`` through the session (shared result type, no normalising)."""
        return self.session.retrieve(key)

    # --------------------------------------------------------------------- run
    def run(self) -> RunResult:
        """Execute the workload and return the aggregated result."""
        if not self._is_setup:
            self.setup()
        parameters = self.parameters
        result = self._result
        self.sim = Simulator()
        self.network.now = 0.0

        # Churn: Poisson departures compensated by joins.
        self.churn = ChurnProcess(self.sim, self.network,
                                  rate_per_s=parameters.churn_rate_per_s,
                                  failure_rate=parameters.failure_rate,
                                  rng=random.Random(self._master_rng.getrandbits(64)),
                                  until=parameters.duration_s)

        # Updates: per-key Poisson processes, materialised as a schedule
        # (shaped by the scenario's profile/popularity when one is attached).
        update_rng = random.Random(self._master_rng.getrandbits(64))
        if self.scenario is None:
            updates = UpdateWorkload(self.keys, parameters.update_rate_per_hour,
                                     update_rng).schedule(parameters.duration_s)
        else:
            updates = self.scenario.update_schedule(
                self.keys, parameters.update_rate_per_hour,
                parameters.duration_s, update_rng)
        for event in updates:
            self.sim.schedule(event.time, self._make_update_callback(event.key))

        # Queries: uniformly distributed over the run (or following the
        # scenario's arrival and popularity models).
        query_rng = random.Random(self._master_rng.getrandbits(64))
        if self.scenario is None:
            queries = QuerySchedule(self.keys, parameters.num_queries,
                                    query_rng).schedule(parameters.duration_s)
        else:
            queries = self.scenario.query_schedule(
                self.keys, parameters.num_queries, parameters.duration_s,
                query_rng)
        for event in queries:
            self.sim.schedule(event.time, self._make_query_callback(event.key))

        # Fault profiles (correlated bursts, partitions, lossy windows) ride
        # on a dedicated RNG stream drawn *after* the workload streams, so a
        # scenario with no faults still matches a plain run's schedules.
        if self.scenario is not None:
            fault_rng = random.Random(self._master_rng.getrandbits(64))
            self.scenario.install_faults(self.sim, network=self.network,
                                         cost_model=self.cost_model,
                                         rng=fault_rng,
                                         duration_s=parameters.duration_s,
                                         churn=self.churn,
                                         cluster=self.cluster)

        # Optional maintenance / instrumentation processes.
        if parameters.inspection_interval_s > 0 and parameters.algorithm != Algorithm.BRK:
            self.sim.process(self._inspection_process(parameters.inspection_interval_s),
                             name="periodic-inspection")
        if parameters.currency_sample_interval_s > 0:
            result.currency_series = TimeSeries("p_t")
            self.sim.process(self._currency_sampling_process(
                parameters.currency_sample_interval_s), name="currency-sampling")

        self.sim.run(until=parameters.duration_s)

        result.updates_performed = sum(self._update_sequence.values()) - len(self.keys)
        result.churn_events = self.churn.event_count
        result.failures = self.churn.failure_count
        if self.scenario is not None:
            result.scenario = self.scenario.name
            result.fault_events = len(self.scenario.fault_log)
        return result

    def _inspection_process(self, interval_s: float):
        """Periodic inspection (Section 4.2.2): responsibles re-check their counters."""
        while True:
            yield self.sim.timeout(interval_s)
            self.network.now = self.sim.now
            corrections = self.kts.inspect_counters()
            self._result.inspections_performed += 1
            self._result.counter_corrections += corrections

    def _currency_sampling_process(self, interval_s: float):
        """Sample the mean probability of currency and availability over all keys."""
        while True:
            yield self.sim.timeout(interval_s)
            self.network.now = self.sim.now
            probabilities = [self.cluster.currency_probability(key)
                             for key in self.keys]
            self._result.currency_series.record(
                self.sim.now, sum(probabilities) / len(probabilities))

    def _make_update_callback(self, key: str) -> Callable[[], None]:
        def callback() -> None:
            self.network.now = self.sim.now
            self._insert(key)
        return callback

    def _make_query_callback(self, key: str) -> Callable[[], None]:
        def callback() -> None:
            self.network.now = self.sim.now
            flags_before = self.detector.flag_count
            outcome = self._retrieve(key)
            response_time = self.cost_model.duration(outcome.trace)
            # Ground truth only the harness knows: the latest committed
            # version of the key (the adversary can falsify timestamps, but
            # not the update sequence the harness itself drove).
            latest_payload = payload_for(key, self._update_sequence[key] - 1)
            stale = outcome.found and outcome.data != latest_payload
            self._result.record_query(QueryObservation(
                time=self.sim.now, key=key, response_time_s=response_time,
                messages=outcome.trace.message_count,
                replicas_inspected=outcome.replicas_inspected,
                found=outcome.found, is_current=outcome.is_current,
                stale=stale,
                flagged=self.detector.flag_count > flags_before,
                bytes_sent=self.cost_model.traffic_bytes(outcome.trace)))
        return callback


def run_simulation(parameters: SimulationParameters) -> RunResult:
    """Convenience wrapper: build a harness, run it, return the result."""
    harness = SimulationHarness(parameters)
    return harness.run()
