"""Lightweight metric collectors used by the simulation harness and benchmarks."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Tally", "TimeSeries"]


class Counter:
    """A named set of monotonically increasing integer counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to counter ``name`` and return the new value."""
        if amount < 0:
            raise ValueError("counters only increase; use a Tally for signed data")
        self._counts[name] = self._counts.get(name, 0) + amount
        return self._counts[name]

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __len__(self) -> int:
        return len(self._counts)


class Tally:
    """Streaming summary statistics (count / mean / std / min / max / percentiles).

    Observations are kept so percentiles are exact; the simulation records at
    most a few thousand observations per run, so memory is not a concern.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        """Record many observations."""
        for value in values:
            self.observe(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self.total / self.count if self._values else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation (0.0 when fewer than 2 observations)."""
        if self.count < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((value - mean) ** 2 for value in self._values) / self.count)

    @property
    def minimum(self) -> Optional[float]:
        return min(self._values) if self._values else None

    @property
    def maximum(self) -> Optional[float]:
        return max(self._values) if self._values else None

    def percentile(self, fraction: float) -> Optional[float]:
        """Exact percentile by linear interpolation, ``fraction`` in [0, 1]."""
        if not self._values:
            return None
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        position = fraction * (len(ordered) - 1)
        lower = int(math.floor(position))
        upper = int(math.ceil(position))
        if lower == upper:
            return ordered[lower]
        weight = position - lower
        return ordered[lower] * (1 - weight) + ordered[upper] * weight

    def values(self) -> Tuple[float, ...]:
        """The raw observations, in insertion order."""
        return tuple(self._values)

    def summary(self) -> Dict[str, float]:
        """Dictionary summary used by result reporting."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tally({self.name!r}, count={self.count}, mean={self.mean:.3f})"


class TimeSeries:
    """A sequence of ``(time, value)`` samples."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self._samples and time < self._samples[-1][0]:
            raise ValueError("time series samples must be recorded in time order")
        self._samples.append((float(time), float(value)))

    def samples(self) -> Tuple[Tuple[float, float], ...]:
        return tuple(self._samples)

    def values(self) -> Tuple[float, ...]:
        return tuple(value for _, value in self._samples)

    def times(self) -> Tuple[float, ...]:
        return tuple(time for time, _ in self._samples)

    @property
    def last(self) -> Optional[Tuple[float, float]]:
        return self._samples[-1] if self._samples else None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable snapshot (used by the execution-layer run cache)."""
        return {"name": self.name,
                "samples": [[time, value] for time, value in self._samples]}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TimeSeries":
        """Rebuild a series recorded by :meth:`to_dict`."""
        series = cls(str(payload.get("name", "")))
        for time, value in payload.get("samples", []):
            series.record(float(time), float(value))
        return series

    def __len__(self) -> int:
        return len(self._samples)
