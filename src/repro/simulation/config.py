"""Simulation parameters (Table 1 of the paper) and the algorithm registry.

The ``protocol`` field selects the DHT overlay by name and is validated
against :mod:`repro.dht.registry`, so any overlay registered there (built-in
Chord/CAN/Kademlia or a runtime-registered backend) can drive every scenario
— churn, failures, replica scale-up, update frequency — without touching the
harness.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Optional

from repro.api.results import Consistency
from repro.dht.registry import is_registered, overlay_names
from repro.simulation.cost import GeoLatencyCostModel, NetworkCostModel

__all__ = ["Algorithm", "SimulationParameters"]


class Algorithm:
    """The three algorithms compared in Section 5.

    An *algorithm* is a currency service (resolved by name through the
    :mod:`repro.api.services` registry) plus its configuration: the two UMS
    variants differ only in the KTS counter-initialisation mode.  The harness
    resolves every algorithm through :meth:`service_name` /
    :meth:`initialization` instead of branching on the constants.
    """

    UMS_DIRECT = "ums-direct"
    UMS_INDIRECT = "ums-indirect"
    BRK = "brk"

    ALL = (BRK, UMS_INDIRECT, UMS_DIRECT)

    #: Display names used in experiment tables (matching the paper's legends).
    LABELS = {
        BRK: "BRK",
        UMS_INDIRECT: "UMS-Indirect",
        UMS_DIRECT: "UMS-Direct",
    }

    #: The registered currency service each algorithm resolves to.
    SERVICES = {
        BRK: "brk",
        UMS_INDIRECT: "ums",
        UMS_DIRECT: "ums",
    }

    @classmethod
    def validate(cls, algorithm: str) -> str:
        if algorithm not in cls.ALL:
            raise ValueError(f"unknown algorithm {algorithm!r}; expected one of {cls.ALL}")
        return algorithm

    @classmethod
    def label(cls, algorithm: str) -> str:
        return cls.LABELS[cls.validate(algorithm)]

    @classmethod
    def service_name(cls, algorithm: str) -> str:
        """The :mod:`repro.api.services` registry name backing ``algorithm``."""
        return cls.SERVICES[cls.validate(algorithm)]

    @classmethod
    def initialization(cls, algorithm: str) -> str:
        """The KTS counter-initialisation mode implied by ``algorithm``."""
        # Imported lazily: repro.core imports repro.api.results, which this
        # module also uses; keep the config layer import-light.
        from repro.core.kts import CounterInitialization

        if cls.validate(algorithm) == cls.UMS_INDIRECT:
            return CounterInitialization.INDIRECT
        return CounterInitialization.DIRECT


@dataclass
class SimulationParameters:
    """All knobs of one simulation run.

    The defaults are Table 1 of the paper: 10,000 peers, 10 replicas per data
    item, normally distributed latency (mean 200 ms) and bandwidth (mean
    56 kbps), departures timed by a Poisson process with λ = 1/second (5 % of
    which are failures, each departure compensated by a fresh join), and
    per-data updates timed by a Poisson process with λ = 1/hour.

    The experiment-specific knobs (which algorithm runs, how long the run
    lasts, how many data items exist and how many queries are measured) follow
    Section 5.1: each experiment issues queries at 30 uniformly distributed
    times over the run and reports the average.
    """

    # --- population -------------------------------------------------------
    num_peers: int = 10_000
    num_replicas: int = 10
    num_keys: int = 50
    protocol: str = "chord"
    bits: int = 32

    # --- workload (Table 1) ------------------------------------------------
    duration_s: float = 3 * 3600.0
    num_queries: int = 30
    churn_rate_per_s: float = 1.0
    failure_rate: float = 0.05
    update_rate_per_hour: float = 1.0

    # --- network cost model (Table 1) ---------------------------------------
    #: ``"wide-area"`` (Table 1), ``"cluster"`` (Section 5.2) or ``"geo"``
    #: (per-region RTT matrix: :class:`repro.simulation.cost.GeoLatencyCostModel`).
    cost_model_preset: str = "wide-area"
    latency_mean_s: float = 0.2
    latency_std_s: float = 0.01
    bandwidth_mean_bps: float = 56_000.0
    bandwidth_std_bps: float = 5_660.0
    timeout_s: float = 2.0
    #: Number of geographic regions of the ``"geo"`` preset (ignored by the
    #: other presets).
    geo_regions: int = 3
    #: Seed of the deterministic peer -> region assignment of the ``"geo"``
    #: preset; ``None`` falls back to the run ``seed`` (or 0).
    geo_assignment_seed: Optional[int] = None

    # --- algorithm ----------------------------------------------------------
    algorithm: str = Algorithm.UMS_DIRECT
    #: Per-retrieve consistency level used for the measured queries
    #: (``current`` is the paper's Figure 2 retrieval; ``any`` and
    #: ``best-effort`` trade freshness for messages).
    consistency: str = Consistency.CURRENT
    probe_order: str = "random"
    stabilization_interval_s: float = 30.0
    #: Interval (simulated seconds) of the periodic-inspection repair strategy
    #: of Section 4.2.2; 0 disables it.  Only meaningful for the UMS variants.
    inspection_interval_s: float = 0.0

    # --- instrumentation -----------------------------------------------------
    #: When > 0, the harness samples the probability of currency and
    #: availability (p_t) of every key at this interval and exposes the samples
    #: as a time series on the run result.
    currency_sample_interval_s: float = 0.0
    #: Claim-behind tolerance (timestamp increments) of the passive timestamp
    #: cross-check detector (:class:`repro.core.detector.CrossCheckDetector`)
    #: the harness attaches to the UMS.  0 flags any claim provably behind an
    #: observed replica; the detector never changes a retrieval's outcome.
    cross_check_window: int = 0

    # --- reproducibility ----------------------------------------------------
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        Algorithm.validate(self.algorithm)
        Consistency.validate(self.consistency)
        if not is_registered(self.protocol):
            raise ValueError(f"unknown protocol {self.protocol!r}; registered "
                             f"overlays: {overlay_names()}")
        if self.num_peers < 2:
            raise ValueError("num_peers must be >= 2")
        if self.num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if self.num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        if self.num_queries < 1:
            raise ValueError("num_queries must be >= 1")
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        if self.churn_rate_per_s < 0:
            raise ValueError("churn_rate_per_s must be >= 0")
        if self.update_rate_per_hour < 0:
            raise ValueError("update_rate_per_hour must be >= 0")
        if self.cost_model_preset not in ("wide-area", "cluster", "geo"):
            raise ValueError("cost_model_preset must be 'wide-area', "
                             "'cluster' or 'geo'")
        if self.geo_regions < 1:
            raise ValueError("geo_regions must be >= 1")
        if self.inspection_interval_s < 0:
            raise ValueError("inspection_interval_s must be >= 0")
        if self.currency_sample_interval_s < 0:
            raise ValueError("currency_sample_interval_s must be >= 0")
        if self.cross_check_window < 0:
            raise ValueError("cross_check_window must be >= 0")

    # ----------------------------------------------------------------- presets
    @classmethod
    def table1(cls, **overrides) -> "SimulationParameters":
        """The paper's Table 1 defaults, with optional field overrides."""
        return cls(**overrides)

    @classmethod
    def cluster(cls, **overrides) -> "SimulationParameters":
        """The 64-node cluster experiment of Figure 6.

        A much smaller network evaluated with the cluster cost model; churn is
        kept (the cluster also experiences joins/leaves in the paper's setup)
        but scaled to the population size.
        """
        defaults = dict(num_peers=64, duration_s=1800.0, churn_rate_per_s=0.02,
                        cost_model_preset="cluster", num_keys=20)
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def quick(cls, **overrides) -> "SimulationParameters":
        """A scaled-down profile for tests and fast benchmark runs.

        Keeps the *structure* of Table 1 (relative rates, replica count) while
        shrinking the population and duration so a run completes in well under
        a second.
        """
        defaults = dict(num_peers=200, num_keys=10, duration_s=600.0,
                        num_queries=10, churn_rate_per_s=0.05)
        defaults.update(overrides)
        return cls(**defaults)

    # ------------------------------------------------------------------ helpers
    @property
    def update_rate_per_s(self) -> float:
        """Per-key update rate in events per second."""
        return self.update_rate_per_hour / 3600.0

    def with_overrides(self, **overrides) -> "SimulationParameters":
        """A copy of the parameters with some fields replaced."""
        return dataclasses.replace(self, **overrides)

    def build_cost_model(self, rng: Optional[random.Random] = None) -> NetworkCostModel:
        """The network cost model matching these parameters."""
        if rng is None:
            rng = random.Random(self.seed)
        if self.cost_model_preset == "cluster":
            model = NetworkCostModel.cluster()
            model.rng = rng
            return model
        if self.cost_model_preset == "geo":
            assignment = self.geo_assignment_seed
            if assignment is None:
                assignment = self.seed if self.seed is not None else 0
            return GeoLatencyCostModel(
                latency_mean_s=self.latency_mean_s,
                latency_std_s=self.latency_std_s,
                bandwidth_mean_bps=self.bandwidth_mean_bps,
                bandwidth_std_bps=self.bandwidth_std_bps,
                timeout_s=self.timeout_s, rng=rng,
                regions=self.geo_regions, assignment_seed=assignment)
        return NetworkCostModel(latency_mean_s=self.latency_mean_s,
                                latency_std_s=self.latency_std_s,
                                bandwidth_mean_bps=self.bandwidth_mean_bps,
                                bandwidth_std_bps=self.bandwidth_std_bps,
                                timeout_s=self.timeout_s, rng=rng)

    def describe(self) -> dict:
        """A flat dictionary of the parameters (used by Table 1 reporting)."""
        return dataclasses.asdict(self)
