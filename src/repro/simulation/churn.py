"""Churn model (Section 5.1).

Peer departures are timed by a Poisson process with rate λ (Table 1:
1/second).  At each departure a peer chosen uniformly at random leaves the
network; with probability ``failure_rate`` the departure is a failure (the
peer's replicas and counters are lost), otherwise it is a normal leave (data
and counters are handed over).  Each departure is compensated by the join of a
fresh peer, keeping the population constant as in the paper (following Rhea et
al.'s churn methodology).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.dht.network import DHTNetwork
from repro.sim.engine import Simulator
from repro.sim.processes import PoissonProcess

__all__ = ["ChurnEvent", "ChurnProcess"]


@dataclass(frozen=True)
class ChurnEvent:
    """A record of one executed churn event."""

    time: float
    departed_peer: int
    joined_peer: int
    failed: bool


class ChurnProcess:
    """Drives Poisson churn on a :class:`DHTNetwork` through the event engine.

    Parameters
    ----------
    sim / network:
        The event engine and the network to churn.
    rate_per_s:
        Departure rate (Table 1: 1 departure/second network-wide).
    failure_rate:
        Fraction of departures that are failures rather than normal leaves.
    min_population:
        Safety floor: departures are skipped when the network would drop below
        this size (keeps degenerate configurations well-defined).
    """

    def __init__(self, sim: Simulator, network: DHTNetwork, *, rate_per_s: float,
                 failure_rate: float, rng: random.Random,
                 until: Optional[float] = None, min_population: int = 2) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        self.sim = sim
        self.network = network
        self.failure_rate = failure_rate
        self.rng = rng
        self.min_population = min_population
        self.events: List[ChurnEvent] = []
        self._process: Optional[PoissonProcess] = None
        if rate_per_s > 0:
            self._process = PoissonProcess(sim, rate_per_s, self._churn_once,
                                           rng=rng, until=until)

    @property
    def event_count(self) -> int:
        """Number of churn events executed so far."""
        return len(self.events)

    @property
    def failure_count(self) -> int:
        """Number of those events that were failures."""
        return sum(1 for event in self.events if event.failed)

    def stop(self) -> None:
        """Stop generating further churn events."""
        if self._process is not None:
            self._process.stop()

    # ------------------------------------------------------------------ action
    def _churn_once(self) -> None:
        self.network.now = self.sim.now
        if self.network.size <= self.min_population:
            return
        departing = self.network.random_alive_peer()
        failed = self.rng.random() * 100.0 < self.failure_rate * 100.0
        if failed:
            self.network.fail_peer(departing)
        else:
            self.network.leave_peer(departing)
        joined = self.network.join_peer()
        self.events.append(ChurnEvent(time=self.sim.now, departed_peer=departing,
                                      joined_peer=joined, failed=failed))
