"""Churn model (Section 5.1).

Peer departures are timed by a Poisson process with rate λ (Table 1:
1/second).  At each departure a peer chosen uniformly at random leaves the
network; with probability ``failure_rate`` the departure is a failure (the
peer's replicas and counters are lost), otherwise it is a normal leave (data
and counters are handed over).  Each departure is compensated by the join of a
fresh peer, keeping the population constant as in the paper (following Rhea et
al.'s churn methodology).

Churn is a **crash-stop** fault model: departed peers stop answering, but
every surviving peer answers honestly.  The **byzantine** regime — peers
that stay up and serve falsified timestamps — is modelled separately in
:mod:`repro.simulation.adversary`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.dht.network import DHTNetwork
from repro.simulation.engine import Simulator
from repro.simulation.processes import PoissonProcess

__all__ = ["ChurnEvent", "ChurnProcess"]


@dataclass(frozen=True)
class ChurnEvent:
    """A record of one executed churn event.

    ``joined_peer`` is ``None`` for uncompensated departures (correlated
    bursts and partitions fired with ``rejoin=False``).
    """

    time: float
    departed_peer: int
    joined_peer: Optional[int]
    failed: bool


class ChurnProcess:
    """Drives Poisson churn on a :class:`DHTNetwork` through the event engine.

    Parameters
    ----------
    sim / network:
        The event engine and the network to churn.
    rate_per_s:
        Departure rate (Table 1: 1 departure/second network-wide).
    failure_rate:
        Fraction of departures that are failures rather than normal leaves.
    min_population:
        Safety floor: departures are skipped when the network would drop below
        this size (keeps degenerate configurations well-defined).
    """

    def __init__(self, sim: Simulator, network: DHTNetwork, *, rate_per_s: float,
                 failure_rate: float, rng: random.Random,
                 until: Optional[float] = None, min_population: int = 2) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        self.sim = sim
        self.network = network
        self.failure_rate = failure_rate
        self.rng = rng
        self.min_population = min_population
        self.events: List[ChurnEvent] = []
        self._process: Optional[PoissonProcess] = None
        if rate_per_s > 0:
            self._process = PoissonProcess(sim, rate_per_s, self._churn_once,
                                           rng=rng, until=until)

    @property
    def event_count(self) -> int:
        """Number of churn events executed so far."""
        return len(self.events)

    @property
    def failure_count(self) -> int:
        """Number of those events that were failures."""
        return sum(1 for event in self.events if event.failed)

    def stop(self) -> None:
        """Stop generating further churn events."""
        if self._process is not None:
            self._process.stop()

    # ------------------------------------------------------ correlated faults
    def fail_together(self, victims, *, rejoin: bool = True) -> List[ChurnEvent]:
        """Fail ``victims`` simultaneously (one correlated event batch).

        Unlike the background Poisson departures, the whole batch fails at the
        *same* simulated instant — replacement joins (when ``rejoin``) only
        happen after every victim is down, so a batch can take out the
        timestamping responsible and every replica holder of a key at once.
        Executed failures are recorded as :class:`ChurnEvent`\\ s (and counted
        by :attr:`event_count`/:attr:`failure_count`); the ``min_population``
        floor still applies.
        """
        self.network.now = self.sim.now
        failed: List[int] = []
        for peer_id in victims:
            if self.network.size <= self.min_population:
                break
            if not self.network.is_alive(peer_id):
                continue
            self.network.fail_peer(peer_id)
            failed.append(peer_id)
        executed: List[ChurnEvent] = []
        for peer_id in failed:
            joined = self.network.join_peer() if rejoin else None
            executed.append(ChurnEvent(time=self.sim.now, departed_peer=peer_id,
                                       joined_peer=joined, failed=True))
        self.events.extend(executed)
        return executed

    def burst(self, count: int, *, rng: Optional[random.Random] = None,
              rejoin: bool = True) -> List[ChurnEvent]:
        """A correlated failure burst: ``count`` random peers fail at once.

        ``rng`` defaults to the process's own stream; fault profiles pass
        their dedicated stream so bursts never perturb the background churn
        schedule of a seeded run.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        draw = rng if rng is not None else self.rng
        alive = self.network.alive_peer_ids()
        budget = max(0, len(alive) - self.min_population)
        size = min(count, budget)
        victims = draw.sample(alive, size) if size else []
        return self.fail_together(victims, rejoin=rejoin)

    # ------------------------------------------------------------------ action
    def _churn_once(self) -> None:
        self.network.now = self.sim.now
        if self.network.size <= self.min_population:
            return
        departing = self.network.random_alive_peer()
        failed = self.rng.random() * 100.0 < self.failure_rate * 100.0
        if failed:
            self.network.fail_peer(departing)
        else:
            self.network.leave_peer(departing)
        joined = self.network.join_peer()
        self.events.append(ChurnEvent(time=self.sim.now, departed_peer=departing,
                                      joined_peer=joined, failed=failed))
