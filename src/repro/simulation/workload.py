"""Update and query workload generators (Section 5.1).

Each replicated data item is updated by a Poisson process (default rate
1/hour, swept in Figure 12); queries requesting a key are issued at times
uniformly distributed over the experiment and the reported metrics are the
averages over those queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Sequence

from repro.simulation.processes import poisson_arrival_times

__all__ = ["QuerySchedule", "ScheduledEvent", "UpdateWorkload", "default_keys",
           "payload_for"]


def default_keys(count: int, prefix: str = "item") -> List[str]:
    """The key population used by the harness: ``item-0 .. item-(count-1)``."""
    if count < 1:
        raise ValueError("count must be >= 1")
    return [f"{prefix}-{index}" for index in range(count)]


def payload_for(key: Any, sequence: int) -> dict:
    """A deterministic update payload: the ``sequence``-th value written to ``key``."""
    return {"key": key, "sequence": sequence, "body": f"value-{key}-{sequence}"}


@dataclass(frozen=True)
class ScheduledEvent:
    """One scheduled workload event."""

    time: float
    key: Any


class UpdateWorkload:
    """Per-key Poisson update schedules.

    Parameters
    ----------
    keys:
        The data items to update.
    rate_per_hour:
        Expected updates per hour for *each* key (Table 1: 1/hour).
    rng:
        Random source (one independent arrival sequence per key).
    """

    def __init__(self, keys: Sequence[Any], rate_per_hour: float,
                 rng: random.Random) -> None:
        if rate_per_hour < 0:
            raise ValueError("rate_per_hour must be >= 0")
        self.keys = list(keys)
        self.rate_per_hour = rate_per_hour
        self.rng = rng

    def schedule(self, duration_s: float) -> List[ScheduledEvent]:
        """All update events over ``[0, duration_s)``, sorted by time."""
        if self.rate_per_hour == 0:
            return []
        rate_per_s = self.rate_per_hour / 3600.0
        events: List[ScheduledEvent] = []
        for key in self.keys:
            for time in poisson_arrival_times(rate_per_s, duration_s, self.rng):
                events.append(ScheduledEvent(time=time, key=key))
        events.sort(key=lambda event: event.time)
        return events


class QuerySchedule:
    """Queries issued at uniformly distributed times over the experiment."""

    def __init__(self, keys: Sequence[Any], num_queries: int,
                 rng: random.Random) -> None:
        if num_queries < 1:
            raise ValueError("num_queries must be >= 1")
        if not keys:
            raise ValueError("the query schedule needs at least one key")
        self.keys = list(keys)
        self.num_queries = num_queries
        self.rng = rng

    def schedule(self, duration_s: float) -> List[ScheduledEvent]:
        """``num_queries`` events at uniform times, each for a random key, sorted."""
        events = [ScheduledEvent(time=self.rng.uniform(0.0, duration_s),
                                 key=self.rng.choice(self.keys))
                  for _ in range(self.num_queries)]
        events.sort(key=lambda event: event.time)
        return events
