"""Adversarial fault profiles: byzantine responsibles and eclipse attacks.

Every scenario shipped before this module is *honest-but-faulty*: peers
crash, partitions cut the identifier space, the network slows — but nobody
lies.  The paper's currency guarantee (Section 3) is only probabilistic,
and the interesting failure mode in a deployed DHT is the hostile one: a
responsible of timestamping that *answers* ``last_ts`` with a stale or
fabricated value, or an adversary that captures the overlay neighbourhood
around a key so every timestamp request lands on a colluding peer.

Two fault profiles (registered in
:data:`repro.simulation.scenarios.faults.FAULT_PROFILES` like the
crash-stop ones) implement that regime:

* :class:`ByzantineTimestamps` — at a configurable instant, a seeded
  fraction of the live population turns byzantine: whenever one of these
  peers answers a ``last_ts`` request as responsible of timestamping, its
  reply is falsified by a :class:`TimestampLiar` strategy (``stale-replay``,
  ``max-lag`` or ``random-lie``);
* :class:`EclipseAttack` — a deterministic *capture set* of peers around a
  target point of the identifier space (per-overlay construction: a Chord
  successor span, the Kademlia XOR-closest peers, a CAN ring
  neighbourhood — see :func:`eclipse_capture_set`) turns byzantine with the
  ``stale-replay`` strategy, modelling an adversary that occupies the
  region a key's timestamp requests route into.

Both profiles act through the value-only reply interceptor of
:meth:`repro.core.kts.KeyBasedTimestampService.set_reply_interceptor`:
message counts, routing and every RNG stream are untouched, which is what
keeps an adversarial run at byzantine ``fraction=0`` bit-identical to its
honest twin (pinned by ``tests/adversary/test_honest_parity.py``).  Lies
target the *retrieval* side (``last_ts``) because that is where the paper's
currency guarantee lives; ``gen_ts`` stays honest.

Three adversarial scenarios register alongside the honest eleven:
``byzantine-timestamps``, ``eclipse`` and ``geo-latency`` (the latter pins
the per-region RTT cost model of
:class:`repro.simulation.cost.GeoLatencyCostModel` as a scenario override).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.simulation.scenarios.faults import FAULT_PROFILES, FaultProfile
from repro.simulation.scenarios.registry import register_scenario
from repro.simulation.scenarios.spec import ScenarioSpec

__all__ = [
    "ByzantineTimestamps",
    "EclipseAttack",
    "TimestampLiar",
    "byzantine_scenario_spec",
    "eclipse_capture_set",
]

#: The three falsification strategies of :class:`TimestampLiar`.
STRATEGIES = ("stale-replay", "max-lag", "random-lie")

#: Overlay protocol class name (:attr:`repro.dht.model.DHTProtocol.protocol_name`)
#: -> eclipse capture-set construction mode.
_PROTOCOL_CAPTURE_MODES = {
    "ChordRing": "successor-span",
    "KademliaOverlay": "xor-closest",
    "CanSpace": "ring-neighbourhood",
}

#: The capture-set construction modes :func:`eclipse_capture_set` accepts.
CAPTURE_MODES = tuple(sorted(_PROTOCOL_CAPTURE_MODES.values()))


class TimestampLiar:
    """Falsifies ``last_ts`` replies of a set of byzantine peers.

    One liar instance is installed per run as the KTS reply interceptor
    (:meth:`~repro.core.kts.KeyBasedTimestampService.set_reply_interceptor`);
    several adversarial profiles in one scenario share it, each corrupting
    its own peer set.  For an honest responsible the true value passes
    through unchanged.

    Strategies (given the true last-generated value ``v`` for a key):

    * ``stale-replay`` — freeze the first value this peer was asked about
      (per key) and replay it forever, hiding every later update;
    * ``max-lag`` — report ``v - lag`` (floored at "no timestamp yet"),
      a bounded-staleness lie;
    * ``random-lie`` — report a value drawn uniformly from
      ``[0, v + lag]`` by the liar's dedicated RNG (it may fabricate a
      timestamp *ahead* of the truth).

    The liar never touches message accounting and only the ``random-lie``
    strategy consumes randomness — from its own stream, seeded off the
    fault RNG at corruption time — so honest RNG streams stay aligned.
    """

    def __init__(self) -> None:
        #: peer id -> (strategy, lag, dedicated rng or None)
        self._byzantine: Dict[int, Tuple[str, int, Optional[random.Random]]] = {}
        #: (peer id, key) -> frozen value for the stale-replay strategy
        self._frozen: Dict[Tuple[int, Any], Optional[int]] = {}
        #: Number of falsified replies served (diagnostics / tests).
        self.lies_served = 0

    def corrupt(self, peers: Sequence[int], strategy: str, *, lag: int = 1,
                rng: Optional[random.Random] = None) -> None:
        """Mark ``peers`` byzantine under ``strategy``.

        ``rng`` is required for ``random-lie`` (the liar's private stream);
        the other strategies are deterministic in the observed truth.
        """
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; "
                             f"expected one of {STRATEGIES}")
        if lag < 0:
            raise ValueError("lag must be >= 0")
        if strategy == "random-lie" and rng is None:
            raise ValueError("the random-lie strategy needs a dedicated rng")
        for peer in peers:
            self._byzantine[peer] = (strategy, lag, rng)

    @property
    def byzantine_peers(self) -> Tuple[int, ...]:
        """The currently corrupted peer ids, sorted."""
        return tuple(sorted(self._byzantine))

    def __call__(self, responsible: int, key: Any,
                 value: Optional[int]) -> Optional[int]:
        """The KTS reply interceptor: falsify ``value`` if ``responsible`` lies."""
        plan = self._byzantine.get(responsible)
        if plan is None:
            return value
        strategy, lag, rng = plan
        self.lies_served += 1
        if strategy == "stale-replay":
            slot = (responsible, key)
            if slot not in self._frozen:
                self._frozen[slot] = value
            return self._frozen[slot]
        if strategy == "max-lag":
            if value is None:
                return None
            lagged = value - lag
            return None if lagged <= 0 else lagged
        # random-lie: fabricate anywhere in [0, truth + lag].
        ceiling = (value if value is not None else 0) + lag
        fabricated = rng.randint(0, ceiling)
        return None if fabricated == 0 else fabricated


def _install_liar(cluster) -> TimestampLiar:
    """The run's shared :class:`TimestampLiar`, installing one if needed."""
    if cluster is None or cluster.kts is None:
        raise ValueError("adversarial profiles need the run's cluster (with a "
                         "KTS instance); the harness passes it to "
                         "Scenario.install_faults")
    interceptor = cluster.kts.reply_interceptor
    if isinstance(interceptor, TimestampLiar):
        return interceptor
    liar = TimestampLiar()
    cluster.kts.set_reply_interceptor(liar)
    return liar


@dataclass
class ByzantineTimestamps(FaultProfile):
    """A seeded fraction of live peers serves falsified ``last_ts`` replies.

    Parameters
    ----------
    fraction:
        Share of the live population that turns byzantine when the profile
        fires (``0`` keeps the profile completely inert: no RNG draws, no
        log entries — the honest-twin parity contract).
    strategy:
        ``stale-replay`` (default), ``max-lag`` or ``random-lie`` — see
        :class:`TimestampLiar`.
    lag:
        Staleness bound of ``max-lag`` and fabrication headroom of
        ``random-lie``.
    at:
        When the peers turn, as a fraction of the run duration (default
        ``0.0``: byzantine from the start).
    """

    fraction: float = 0.1
    strategy: str = "stale-replay"
    lag: int = 1
    at: float = 0.0

    kind = "byzantine-timestamps"

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.strategy not in STRATEGIES:
            raise ValueError(f"strategy must be one of {STRATEGIES}, "
                             f"got {self.strategy!r}")
        if self.lag < 0:
            raise ValueError("lag must be >= 0")
        if not 0.0 <= self.at <= 1.0:
            raise ValueError("at must be a run fraction in [0, 1]")

    def install(self, sim, *, network, cost_model, rng, duration_s: float,
                log: List[Dict[str, Any]], churn=None, cluster=None) -> None:
        """Schedule the byzantine turn; inert (zero draws) at ``fraction=0``."""
        def fire() -> None:
            if self.fraction <= 0.0:
                return
            network.now = sim.now
            alive = network.alive_peer_ids()
            count = min(len(alive), max(1, round(len(alive) * self.fraction)))
            byzantine = rng.sample(alive, count)
            lie_rng = (random.Random(rng.getrandbits(64))
                       if self.strategy == "random-lie" else None)
            liar = _install_liar(cluster)
            liar.corrupt(byzantine, self.strategy, lag=self.lag, rng=lie_rng)
            log.append({"kind": self.kind, "time": sim.now,
                        "byzantine": count, "strategy": self.strategy})

        sim.schedule(self.at * duration_s, fire)

    def to_config(self) -> Dict[str, Any]:
        """The dict that rebuilds this profile via ``build_fault``."""
        return {"kind": self.kind, "fraction": self.fraction,
                "strategy": self.strategy, "lag": self.lag, "at": self.at}


def eclipse_capture_set(mode: str, alive_ids: Sequence[int], *, bits: int,
                        point: int, count: int) -> Tuple[int, ...]:
    """The deterministic set of peers an eclipse adversary captures.

    ``mode`` selects the per-overlay construction over the identifier space
    ``[0, 2^bits)``:

    * ``successor-span`` (Chord) — the ``count`` live peers clockwise from
      ``point`` (the successor span that resolves ``responsible_for``);
    * ``xor-closest`` (Kademlia) — the ``count`` live peers closest to
      ``point`` under the XOR metric (the k-bucket neighbourhood the lookup
      converges into);
    * ``ring-neighbourhood`` (CAN, whose 1-d zone space behaves like a
      ring here) — the ``count`` live peers at smallest ring distance from
      ``point`` (the neighbour zones around the target's zone).

    Pure function of its arguments — no RNG, no network access — so the
    capture set is exact and replayable (pinned by
    ``tests/adversary/test_attack_conformance.py``).
    """
    if mode not in CAPTURE_MODES:
        raise ValueError(f"unknown capture mode {mode!r}; "
                         f"expected one of {CAPTURE_MODES}")
    if count < 1:
        raise ValueError("count must be >= 1")
    space = 1 << bits
    ordered = sorted(set(alive_ids))
    if not ordered:
        return ()
    limit = min(count, len(ordered))
    if mode == "successor-span":
        # Clockwise from `point`, wrapping: sort by (id - point) mod space.
        ring = sorted(ordered, key=lambda peer: ((peer - point) % space, peer))
        return tuple(sorted(ring[:limit]))
    if mode == "xor-closest":
        closest = sorted(ordered, key=lambda peer: (peer ^ point, peer))
        return tuple(sorted(closest[:limit]))
    # ring-neighbourhood: smallest wrap-around distance on the ring.
    def ring_distance(peer: int) -> int:
        ahead = (peer - point) % space
        return min(ahead, space - ahead)

    nearest = sorted(ordered, key=lambda peer: (ring_distance(peer), peer))
    return tuple(sorted(nearest[:limit]))


@dataclass
class EclipseAttack(FaultProfile):
    """An adversary captures the overlay neighbourhood around a target point.

    At ``at`` (run fraction), the :func:`eclipse_capture_set` of ``count``
    live peers around ``point`` (a fraction of the identifier space) turns
    byzantine with the ``stale-replay`` strategy: every ``last_ts`` request
    they answer as responsible of timestamping replays the first value they
    served, freezing the key's visible currency at capture time.

    ``mode`` is one of :data:`CAPTURE_MODES`, or ``"auto"`` (default) to
    derive it from the overlay actually running
    (:attr:`~repro.dht.model.DHTProtocol.protocol_name`).  Capture-set
    construction is deterministic — the profile consumes no randomness at
    all — so the affected set is exact per (overlay, population, point).
    """

    point: float = 0.0
    count: int = 8
    at: float = 0.0
    mode: str = "auto"

    kind = "eclipse"

    def __post_init__(self) -> None:
        if not 0.0 <= self.point < 1.0:
            raise ValueError("point must be a space fraction in [0, 1)")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if not 0.0 <= self.at <= 1.0:
            raise ValueError("at must be a run fraction in [0, 1]")
        if self.mode != "auto" and self.mode not in CAPTURE_MODES:
            raise ValueError(f"mode must be 'auto' or one of {CAPTURE_MODES}, "
                             f"got {self.mode!r}")

    def capture_mode_for(self, network) -> str:
        """Resolve ``"auto"`` against the overlay the network actually runs."""
        if self.mode != "auto":
            return self.mode
        name = network.protocol.protocol_name
        mode = _PROTOCOL_CAPTURE_MODES.get(name)
        if mode is None:
            raise ValueError(
                f"no capture-set construction is registered for overlay "
                f"{name!r}; pass an explicit mode ({', '.join(CAPTURE_MODES)})")
        return mode

    def install(self, sim, *, network, cost_model, rng, duration_s: float,
                log: List[Dict[str, Any]], churn=None, cluster=None) -> None:
        """Schedule the capture event (deterministic: no RNG draws at all)."""
        def fire() -> None:
            network.now = sim.now
            mode = self.capture_mode_for(network)
            target = int(self.point * (1 << network.bits))
            captured = eclipse_capture_set(mode, network.alive_peer_ids(),
                                           bits=network.bits, point=target,
                                           count=self.count)
            if not captured:
                return
            liar = _install_liar(cluster)
            liar.corrupt(captured, "stale-replay")
            log.append({"kind": self.kind, "time": sim.now, "mode": mode,
                        "captured": len(captured), "point": target})

        sim.schedule(self.at * duration_s, fire)

    def to_config(self) -> Dict[str, Any]:
        """The dict that rebuilds this profile via ``build_fault``."""
        return {"kind": self.kind, "point": self.point, "count": self.count,
                "at": self.at, "mode": self.mode}


def byzantine_scenario_spec(fraction: float, *,
                            strategy: str = "stale-replay",
                            lag: int = 1, at: float = 0.0,
                            name: Optional[str] = None) -> ScenarioSpec:
    """A ``byzantine-timestamps`` scenario spec at an explicit ``fraction``.

    The attack grid (:mod:`repro.experiments.attack_grid`) builds one spec
    per grid cell with this helper so every cell shares the baseline
    workload and differs only in the byzantine knobs.
    """
    return ScenarioSpec(
        name=name if name is not None else "byzantine-timestamps",
        description=f"Byzantine responsibles ({strategy}) at fraction "
                    f"{fraction:g} on the baseline workload.",
        faults=({"kind": ByzantineTimestamps.kind, "fraction": fraction,
                 "strategy": strategy, "lag": lag, "at": at},))


# ----------------------------------------------------------- registration
# Adversarial fault kinds join the crash-stop ones in the shared dispatch
# table, so ScenarioSpec fault configs reach them through build_fault.
FAULT_PROFILES[ByzantineTimestamps.kind] = ByzantineTimestamps
FAULT_PROFILES[EclipseAttack.kind] = EclipseAttack

#: The adversarial scenarios shipped by this module (registered below).
_ADVERSARIAL_SCENARIOS = (
    ScenarioSpec(
        name="byzantine-timestamps",
        description="10% of the peers serve stale-replay last_ts lies from "
                    "the start of the run (baseline workload).",
        faults=({"kind": "byzantine-timestamps", "fraction": 0.1,
                 "strategy": "stale-replay"},)),
    ScenarioSpec(
        name="eclipse",
        description="An adversary captures the 8-peer overlay neighbourhood "
                    "around the start of the identifier space (per-overlay "
                    "capture set) and freezes its last_ts answers.",
        faults=({"kind": "eclipse", "point": 0.0, "count": 8},)),
    ScenarioSpec(
        name="geo-latency",
        description="Baseline workload priced by the 3-region geo RTT "
                    "matrix instead of the uniform Table 1 WAN.",
        overrides={"cost_model_preset": "geo", "geo_regions": 3}),
)

for _spec in _ADVERSARIAL_SCENARIOS:
    register_scenario(_spec)
del _spec
