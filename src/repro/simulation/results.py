"""Result containers for simulation runs."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.simulation.metrics import Tally, TimeSeries

__all__ = ["QueryObservation", "RunResult"]


@dataclass(frozen=True)
class QueryObservation:
    """One measured query (retrieve) of the experiment.

    ``stale`` is ground truth only the harness knows: the returned data was
    not the latest committed version of the key (always ``False`` for
    not-found queries).  ``flagged`` records whether the passive timestamp
    cross-check detector (:class:`repro.core.detector.CrossCheckDetector`)
    flagged the retrieval's ``last_ts`` claim as provably behind an observed
    replica.  Both default to ``False`` so observations recorded by earlier
    releases deserialise unchanged.
    """

    time: float
    key: Any
    response_time_s: float
    messages: int
    replicas_inspected: int
    found: bool
    is_current: bool
    stale: bool = False
    flagged: bool = False
    #: Wire bytes attributed to the query (the cost model's
    #: ``traffic_bytes`` over its trace).  Defaults to 0 so observations
    #: recorded by earlier releases deserialise unchanged.
    bytes_sent: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot (used by the execution-layer run cache)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QueryObservation":
        """Rebuild an observation recorded by :meth:`to_dict`."""
        return cls(**payload)


@dataclass
class RunResult:
    """Aggregated outcome of one simulation run (one parameter point, one algorithm)."""

    algorithm: str
    num_peers: int
    num_replicas: int
    queries: List[QueryObservation] = field(default_factory=list)
    updates_performed: int = 0
    churn_events: int = 0
    failures: int = 0
    inspections_performed: int = 0
    counter_corrections: int = 0
    #: Samples of the average probability of currency and availability (p_t)
    #: over the tracked keys; populated when
    #: ``SimulationParameters.currency_sample_interval_s`` > 0.
    currency_series: Optional[TimeSeries] = None
    parameters: Optional[Dict[str, Any]] = None
    #: Name of the scenario that drove this run (``None`` for the plain
    #: Table 1 workload of :class:`~repro.simulation.harness.SimulationHarness`).
    scenario: Optional[str] = None
    #: Number of fault-profile events that fired during the run (bursts,
    #: partitions, lossy-window transitions); 0 without a scenario.
    fault_events: int = 0

    # ------------------------------------------------------------------ record
    def record_query(self, observation: QueryObservation) -> None:
        """Append one query observation."""
        self.queries.append(observation)

    # --------------------------------------------------------------- aggregates
    @property
    def query_count(self) -> int:
        return len(self.queries)

    @property
    def response_time(self) -> Tally:
        """Tally of per-query response times (seconds)."""
        tally = Tally("response_time_s")
        tally.extend(observation.response_time_s for observation in self.queries)
        return tally

    @property
    def messages(self) -> Tally:
        """Tally of per-query message counts (communication cost)."""
        tally = Tally("messages")
        tally.extend(float(observation.messages) for observation in self.queries)
        return tally

    @property
    def bytes_sent(self) -> Tally:
        """Tally of per-query wire bytes (the byte-denominated cost curve)."""
        tally = Tally("bytes_sent")
        tally.extend(float(observation.bytes_sent) for observation in self.queries)
        return tally

    @property
    def replicas_inspected(self) -> Tally:
        """Tally of the number of replicas each query retrieved."""
        tally = Tally("replicas_inspected")
        tally.extend(float(observation.replicas_inspected) for observation in self.queries)
        return tally

    @property
    def avg_response_time_s(self) -> float:
        """Average response time over the measured queries (the paper's metric)."""
        return self.response_time.mean

    @property
    def avg_messages(self) -> float:
        """Average total messages per query (the paper's communication cost)."""
        return self.messages.mean

    @property
    def avg_bytes(self) -> float:
        """Average wire bytes per query (bytes-per-op, the byte cost curve)."""
        return self.bytes_sent.mean

    @property
    def avg_replicas_inspected(self) -> float:
        return self.replicas_inspected.mean

    @property
    def currency_rate(self) -> float:
        """Fraction of queries that returned a replica known to be current."""
        if not self.queries:
            return 0.0
        return sum(1 for observation in self.queries if observation.is_current) / len(self.queries)

    @property
    def found_rate(self) -> float:
        """Fraction of queries that found at least one replica."""
        if not self.queries:
            return 0.0
        return sum(1 for observation in self.queries if observation.found) / len(self.queries)

    @property
    def stale_results(self) -> int:
        """Queries that returned data older than the key's latest version."""
        return sum(1 for observation in self.queries if observation.stale)

    @property
    def currency_violations(self) -> int:
        """Queries certified current (``is_current``) that were in fact stale.

        This is the measured failure count of the paper's currency
        guarantee: 0 on honest runs up to the guarantee's own probabilistic
        slack, and the quantity byzantine responsibles inflate.
        """
        return sum(1 for observation in self.queries
                   if observation.is_current and observation.stale)

    @property
    def detected_lies(self) -> int:
        """Queries the timestamp cross-check detector flagged."""
        return sum(1 for observation in self.queries if observation.flagged)

    @property
    def undetected_stale_rate(self) -> float:
        """Fraction of stale results the detector did *not* flag (0.0 if none)."""
        stale = self.stale_results
        if stale == 0:
            return 0.0
        undetected = sum(1 for observation in self.queries
                         if observation.stale and not observation.flagged)
        return undetected / stale

    @property
    def true_currency_rate(self) -> float:
        """Fraction of queries that returned the key's actual latest version.

        Unlike :attr:`currency_rate` (what the service *certified*), this is
        measured against the harness's ground truth — the degradation-curve
        metric of the attack grid.
        """
        if not self.queries:
            return 0.0
        current = sum(1 for observation in self.queries
                      if observation.found and not observation.stale)
        return current / len(self.queries)

    @property
    def avg_currency_probability(self) -> float:
        """Mean of the sampled p_t values (0.0 when sampling was disabled)."""
        if self.currency_series is None or len(self.currency_series) == 0:
            return 0.0
        values = self.currency_series.values()
        return sum(values) / len(values)

    # ------------------------------------------------------------ serialisation
    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-serialisable snapshot of the run.

        Round-trips through :meth:`from_dict`: every per-query observation,
        the optional currency time series and the flat parameter record are
        preserved, so a cached result is bit-identical (all aggregates are
        recomputed from the same observations) to the freshly executed one.
        """
        return {
            "algorithm": self.algorithm,
            "num_peers": self.num_peers,
            "num_replicas": self.num_replicas,
            "queries": [observation.to_dict() for observation in self.queries],
            "updates_performed": self.updates_performed,
            "churn_events": self.churn_events,
            "failures": self.failures,
            "inspections_performed": self.inspections_performed,
            "counter_corrections": self.counter_corrections,
            "currency_series": (self.currency_series.to_dict()
                                if self.currency_series is not None else None),
            "parameters": self.parameters,
            "scenario": self.scenario,
            "fault_events": self.fault_events,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunResult":
        """Rebuild a run result recorded by :meth:`to_dict`."""
        series = payload.get("currency_series")
        return cls(
            algorithm=payload["algorithm"],
            num_peers=payload["num_peers"],
            num_replicas=payload["num_replicas"],
            queries=[QueryObservation.from_dict(observation)
                     for observation in payload.get("queries", [])],
            updates_performed=payload.get("updates_performed", 0),
            churn_events=payload.get("churn_events", 0),
            failures=payload.get("failures", 0),
            inspections_performed=payload.get("inspections_performed", 0),
            counter_corrections=payload.get("counter_corrections", 0),
            currency_series=(TimeSeries.from_dict(series)
                            if series is not None else None),
            parameters=payload.get("parameters"),
            scenario=payload.get("scenario"),
            fault_events=payload.get("fault_events", 0),
        )

    def summary(self) -> Dict[str, float]:
        """Flat summary used by the experiment tables and benchmarks."""
        return {
            "avg_response_time_s": self.avg_response_time_s,
            "avg_messages": self.avg_messages,
            "avg_bytes": self.avg_bytes,
            "avg_replicas_inspected": self.avg_replicas_inspected,
            "currency_rate": self.currency_rate,
            "true_currency_rate": self.true_currency_rate,
            "found_rate": self.found_rate,
            "stale_results": float(self.stale_results),
            "currency_violations": float(self.currency_violations),
            "detected_lies": float(self.detected_lies),
            "undetected_stale_rate": self.undetected_stale_rate,
            "queries": float(self.query_count),
            "updates": float(self.updates_performed),
            "churn_events": float(self.churn_events),
            "failures": float(self.failures),
            "inspections": float(self.inspections_performed),
            "counter_corrections": float(self.counter_corrections),
            "fault_events": float(self.fault_events),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RunResult(algorithm={self.algorithm!r}, peers={self.num_peers}, "
                f"avg_rt={self.avg_response_time_s:.2f}s, avg_msgs={self.avg_messages:.1f})")
