"""The name-keyed scenario registry, and the shipped scenario library.

Scenarios are registered by name exactly like overlays
(:mod:`repro.dht.registry`) and currency services
(:mod:`repro.api.services`): ``register_scenario`` makes a
:class:`~repro.simulation.scenarios.spec.ScenarioSpec` reachable from the
harness, the CLI (``repro scenario run/compare``), the benchmarks and the
tests, all through the one name string.  Registering validates the spec by
building every component once, so a bad declaration fails at registration
time, not mid-experiment.

Eleven scenarios ship (see ``repro scenario list`` or the "Scenario gallery"
in EXPERIMENTS.md): the paper's baseline workload, skewed and shifting
hotspots, flash-crowd and diurnal arrival shapes, the three application
archetypes, and three correlated-fault regimes.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.simulation.scenarios.spec import ScenarioSpec

__all__ = [
    "get_scenario",
    "is_scenario_registered",
    "register_scenario",
    "scenario_names",
    "unregister_scenario",
]

_SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, *, replace: bool = False) -> None:
    """Register ``spec`` under its name (case-insensitive).

    The spec is validated (every component is built once) before it becomes
    visible.  Raises :class:`ValueError` when the name is already taken,
    unless ``replace=True`` is passed explicitly.
    """
    key = spec.name.lower()
    if key in _SCENARIOS and not replace:
        raise ValueError(f"scenario {key!r} is already registered; "
                         "pass replace=True to override it")
    spec.validate()
    _SCENARIOS[key] = spec


def unregister_scenario(name: str) -> None:
    """Remove ``name`` from the registry (raises ``ValueError`` if absent)."""
    key = name.lower()
    if key not in _SCENARIOS:
        raise ValueError(f"scenario {key!r} is not registered")
    del _SCENARIOS[key]


def is_scenario_registered(name: str) -> bool:
    """Whether ``name`` resolves to a registered scenario."""
    return name.lower() in _SCENARIOS


def scenario_names() -> Tuple[str, ...]:
    """The registered scenario names, sorted."""
    return tuple(sorted(_SCENARIOS))


def get_scenario(name: str) -> ScenarioSpec:
    """The spec registered under ``name``."""
    spec = _SCENARIOS.get(name.lower())
    if spec is None:
        known = ", ".join(repr(known_name) for known_name in scenario_names())
        raise ValueError(f"unknown scenario {name.lower()!r}; "
                         f"registered scenarios: {known}")
    return spec


# ------------------------------------------------------- shipped scenarios
_BUILTIN_SCENARIOS = (
    ScenarioSpec(
        name="uniform",
        description="The paper's Table 1 workload: uniform keys, uniform "
                    "query times, Poisson updates (the control scenario)."),
    ScenarioSpec(
        name="hotspot",
        description="Static Zipf(1.1) key popularity: a few hot keys draw "
                    "most queries.",
        popularity={"model": "zipf", "exponent": 1.1}),
    ScenarioSpec(
        name="shifting-hotspot",
        description="Zipf(1.1) hotspot rotating through the key population "
                    "over four phases (interest drift).",
        popularity={"model": "shifting-hotspot", "exponent": 1.1, "phases": 4}),
    ScenarioSpec(
        name="flashcrowd",
        description="Two narrow burst windows carry 70% of the queries onto "
                    "Zipf-hot keys.",
        popularity={"model": "zipf", "exponent": 1.1},
        arrivals={"model": "flash-crowd",
                  "bursts": [[0.3, 0.1, 0.35], [0.7, 0.1, 0.35]]}),
    ScenarioSpec(
        name="diurnal",
        description="Sinusoidal day/night arrival ramp (two cycles, "
                    "amplitude 0.8) over uniform keys.",
        arrivals={"model": "diurnal", "cycles": 2, "amplitude": 0.8}),
    ScenarioSpec(
        name="auction",
        description="Auction archetype: Zipf-hot items, bids drive 4x "
                    "updates concentrated on the hot keys.",
        popularity={"model": "zipf", "exponent": 1.2},
        profile={"archetype": "auction"}),
    ScenarioSpec(
        name="reservation",
        description="Reservation archetype: mildly skewed slots, bookings "
                    "drive 2x updates on the popular slots.",
        popularity={"model": "zipf", "exponent": 0.9},
        profile={"archetype": "reservation"}),
    ScenarioSpec(
        name="agenda",
        description="Agenda archetype: read-mostly sharing, uniform keys, "
                    "updates at half the Table 1 rate.",
        profile={"archetype": "agenda"}),
    ScenarioSpec(
        name="correlated-failures",
        description="Two correlated bursts each fail 10% of the peers at "
                    "once (compensated by joins), on the baseline workload.",
        faults=({"kind": "correlated-burst", "at": 0.35, "fraction": 0.1},
                {"kind": "correlated-burst", "at": 0.7, "fraction": 0.1})),
    ScenarioSpec(
        name="partition",
        description="A quarter of the identifier space goes dark mid-run "
                    "and heals (fresh joins) near the end.",
        faults=({"kind": "partition", "at": 0.4, "start": 0.25, "span": 0.25,
                 "heal_after": 0.4},)),
    ScenarioSpec(
        name="lossy-network",
        description="Mid-run lossy window: 5x latency and a quarter of the "
                    "bandwidth between 25% and 75% of the run.",
        faults=({"kind": "lossy-period", "start": 0.25, "end": 0.75,
                 "latency_factor": 5.0, "bandwidth_factor": 0.25},)),
)

for _spec in _BUILTIN_SCENARIOS:
    register_scenario(_spec)
del _spec
