"""Key-popularity models: which keys the queries (and skewed updates) hit.

The paper's query model picks keys uniformly at random (Section 5.1).  Real
workloads are skewed: a few auctions attract most of the bids, a few meeting
slots most of the lookups — and skew is exactly where timestamp-certified
retrieval is stressed, because hot keys concentrate both the reads *and* the
updates that can make replicas stale.  Three models ship:

* :class:`UniformPopularity` — the paper's model (every key equally likely);
* :class:`ZipfPopularity` — static hotspot, weight of the *i*-th key
  proportional to ``1 / (i + 1) ** exponent``;
* :class:`ShiftingHotspotPopularity` — a Zipf hotspot whose hottest key
  rotates through the key population over a configurable number of phases,
  modelling interest drift (yesterday's hot auction is cold today).

A model is a deterministic function of its configuration: ``weights`` returns
a normalised distribution over key *indices* for a point in (fractional)
time, and ``choose`` draws one key from it using the caller's RNG — so a
seeded schedule is reproducible bit-for-bit.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import accumulate
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Type

__all__ = [
    "KeyPopularityModel",
    "ShiftingHotspotPopularity",
    "UniformPopularity",
    "ZipfPopularity",
    "build_popularity",
]


class KeyPopularityModel:
    """Base class: a time-dependent probability distribution over key indices."""

    #: Registry key used by :func:`build_popularity` and the scenario specs.
    kind: str = "base"

    def weights(self, num_keys: int, time_fraction: float = 0.0) -> List[float]:
        """Normalised selection weights for ``num_keys`` keys at ``time_fraction``.

        ``time_fraction`` is the elapsed fraction of the run in ``[0, 1]``;
        static models ignore it.  The returned list sums to 1.
        """
        raise NotImplementedError

    def choose(self, keys: Sequence[Any], time_fraction: float, rng) -> Any:
        """Draw one key according to the weights at ``time_fraction``."""
        if not keys:
            raise ValueError("cannot choose from an empty key population")
        cumulative = self._cumulative(len(keys), time_fraction)
        index = bisect_right(cumulative, rng.random())
        return keys[min(index, len(keys) - 1)]

    def _cumulative(self, num_keys: int, time_fraction: float) -> List[float]:
        """Cumulative weights (cached per ``(num_keys, phase)`` by subclasses)."""
        return list(accumulate(self.weights(num_keys, time_fraction)))

    def to_config(self) -> Dict[str, Any]:
        """The dict configuration that rebuilds this model via :func:`build_popularity`."""
        return {"model": self.kind}


class UniformPopularity(KeyPopularityModel):
    """Every key is equally likely — the paper's Section 5.1 query model."""

    kind = "uniform"

    def weights(self, num_keys: int, time_fraction: float = 0.0) -> List[float]:
        if num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        return [1.0 / num_keys] * num_keys

    def choose(self, keys: Sequence[Any], time_fraction: float, rng) -> Any:
        # Matches QuerySchedule's rng.choice: no cumulative-weight machinery.
        if not keys:
            raise ValueError("cannot choose from an empty key population")
        return rng.choice(keys)


class ZipfPopularity(KeyPopularityModel):
    """A static Zipf hotspot: key *i* has weight ``1 / (i + 1) ** exponent``.

    ``exponent`` controls the skew (1.0–1.2 covers most measured web/P2P
    workloads); ``hot_offset`` rotates the ranking so the hottest key is
    ``keys[hot_offset]`` instead of ``keys[0]``.
    """

    kind = "zipf"

    def __init__(self, exponent: float = 1.1, hot_offset: int = 0) -> None:
        if exponent <= 0:
            raise ValueError("exponent must be > 0")
        if hot_offset < 0:
            raise ValueError("hot_offset must be >= 0")
        self.exponent = exponent
        self.hot_offset = hot_offset
        self._cache: Dict[Tuple[int, int], List[float]] = {}

    def _rotation(self, num_keys: int, time_fraction: float) -> int:
        return self.hot_offset % num_keys

    def weights(self, num_keys: int, time_fraction: float = 0.0) -> List[float]:
        if num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        rotation = self._rotation(num_keys, time_fraction)
        raw = [1.0 / (rank + 1) ** self.exponent for rank in range(num_keys)]
        total = sum(raw)
        ranked = [weight / total for weight in raw]
        # Rotate so the hottest rank lands on index ``rotation``.
        return [ranked[(index - rotation) % num_keys] for index in range(num_keys)]

    def _cumulative(self, num_keys: int, time_fraction: float) -> List[float]:
        key = (num_keys, self._rotation(num_keys, time_fraction))
        cumulative = self._cache.get(key)
        if cumulative is None:
            cumulative = list(accumulate(self.weights(num_keys, time_fraction)))
            self._cache[key] = cumulative
        return cumulative

    def to_config(self) -> Dict[str, Any]:
        return {"model": self.kind, "exponent": self.exponent,
                "hot_offset": self.hot_offset}


class ShiftingHotspotPopularity(ZipfPopularity):
    """A Zipf hotspot that rotates through the key population over time.

    The run is divided into ``phases`` equal windows; in phase *p* the
    hottest key is ``keys[p * num_keys // phases]`` and the Zipf ranking
    rotates with it.  This models interest drift: replicas of a *newly* hot
    key were mostly written while the key was cold, so certified retrieval
    faces colder caches and staler replicas than under a static hotspot.
    """

    kind = "shifting-hotspot"

    def __init__(self, exponent: float = 1.1, phases: int = 4) -> None:
        super().__init__(exponent=exponent)
        if phases < 1:
            raise ValueError("phases must be >= 1")
        self.phases = phases

    def _rotation(self, num_keys: int, time_fraction: float) -> int:
        clamped = min(max(time_fraction, 0.0), 1.0)
        phase = min(self.phases - 1, int(clamped * self.phases))
        return (phase * num_keys // self.phases) % num_keys

    def to_config(self) -> Dict[str, Any]:
        return {"model": self.kind, "exponent": self.exponent, "phases": self.phases}


#: Model name -> class, the dispatch table of :func:`build_popularity`.
POPULARITY_MODELS: Dict[str, Type[KeyPopularityModel]] = {
    UniformPopularity.kind: UniformPopularity,
    ZipfPopularity.kind: ZipfPopularity,
    ShiftingHotspotPopularity.kind: ShiftingHotspotPopularity,
}


def build_popularity(config: Mapping[str, Any]) -> KeyPopularityModel:
    """Build a popularity model from a scenario-spec dict.

    ``config["model"]`` selects the class (default ``"uniform"``); the
    remaining keys are passed to its constructor.
    """
    options = dict(config)
    name = options.pop("model", "uniform")
    model_cls = POPULARITY_MODELS.get(name)
    if model_cls is None:
        known = ", ".join(sorted(POPULARITY_MODELS))
        raise ValueError(f"unknown popularity model {name!r}; known models: {known}")
    return model_cls(**options)
