"""Fault profiles: correlated failures layered on top of the background churn.

The paper's churn model (Section 5.1, :class:`repro.simulation.churn.ChurnProcess`)
fails peers *independently* — one Poisson departure at a time.  Correlated
failures are the regime where timestamped retrieval is actually at risk: a
burst can take the responsible of timestamping *and* every replica holder of
a key down inside one event, a partition removes a contiguous arc of the
identifier space, and a lossy network stretches every probe.  Three profiles
ship:

* :class:`CorrelatedFailureBurst` — at one instant, a batch of peers fails
  together (absolute ``size`` or a ``fraction`` of the live population),
  optionally compensated by fresh joins;
* :class:`RegionalPartition` — every peer whose identifier falls in a
  contiguous arc of the identifier space fails at once (a "region" going
  dark), optionally healed later by an equal number of fresh joins;
* :class:`LossyPeriod` — a time window during which the
  :class:`~repro.simulation.cost.NetworkCostModel` is degraded (higher latency,
  lower bandwidth, longer timeouts) via its degradation factors.

A profile ``install``\\ s itself onto the simulation engine; fired events are
appended to the scenario's fault log so runs can report what actually
happened.  Installation consumes no randomness — only fired bursts draw from
the dedicated fault RNG — so seeded runs replay bit-for-bit.

Vocabulary: every profile in this module is **crash-stop** — peers fail,
vanish or slow down, but surviving peers always answer honestly.  The
**byzantine** regime (peers that answer with *falsified* timestamps:
``byzantine-timestamps``, ``eclipse``) lives in
:mod:`repro.simulation.adversary` and registers its profiles into the same
:data:`FAULT_PROFILES` table, so scenario specs reach both families through
one ``kind`` namespace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Type

__all__ = [
    "CorrelatedFailureBurst",
    "FaultProfile",
    "LossyPeriod",
    "RegionalPartition",
    "build_fault",
]


class FaultProfile:
    """Base class: schedules fault events on the simulation engine."""

    #: Registry key used by :func:`build_fault` and the scenario specs.
    kind: str = "base"

    def install(self, sim, *, network, cost_model, rng, duration_s: float,
                log: List[Dict[str, Any]], churn=None, cluster=None) -> None:
        """Schedule this profile's events on ``sim``.

        ``network`` is the :class:`~repro.dht.network.DHTNetwork` under test,
        ``cost_model`` the run's :class:`~repro.simulation.cost.NetworkCostModel`,
        ``rng`` the dedicated fault random stream and ``log`` the shared list
        fired events are appended to.  ``churn`` is the run's
        :class:`~repro.simulation.churn.ChurnProcess` when one is active:
        failure-style profiles execute through it
        (:meth:`~repro.simulation.churn.ChurnProcess.fail_together`) so
        correlated failures appear in the churn accounting; without one they
        fall back to direct network operations.  ``cluster`` is the run's
        :class:`~repro.api.cluster.Cluster` when available: byzantine
        profiles (:mod:`repro.simulation.adversary`) reach the KTS reply
        seam through it, while crash-stop profiles ignore it.
        """
        raise NotImplementedError

    def to_config(self) -> Dict[str, Any]:
        """The dict configuration that rebuilds this profile via :func:`build_fault`."""
        return {"kind": self.kind}

    @staticmethod
    def _fail_batch(network, victims, *, rejoin: bool) -> int:
        """Fail ``victims`` together, then (optionally) join replacements."""
        failed = 0
        for peer_id in victims:
            if network.is_alive(peer_id):
                network.fail_peer(peer_id)
                failed += 1
        if rejoin:
            for _ in range(failed):
                network.join_peer()
        return failed


@dataclass
class CorrelatedFailureBurst(FaultProfile):
    """A batch of simultaneous failures at one instant of the run.

    Parameters
    ----------
    at:
        When the burst fires, as a fraction of the run duration in ``[0, 1]``.
    size / fraction:
        How many peers fail together: an absolute count, or a fraction of
        the live population at burst time (exactly one may be given;
        the default is ``fraction=0.1``).
    rejoin:
        Whether an equal number of fresh peers joins immediately after the
        burst (keeps the population constant, as the paper's churn does).
    min_population:
        Safety floor: the burst never shrinks the network below this size.
    """

    at: float = 0.5
    size: Optional[int] = None
    fraction: Optional[float] = None
    rejoin: bool = True
    min_population: int = 2

    kind = "correlated-burst"

    def __post_init__(self) -> None:
        if not 0.0 <= self.at <= 1.0:
            raise ValueError("at must be a run fraction in [0, 1]")
        if self.size is not None and self.fraction is not None:
            raise ValueError("pass either size or fraction, not both")
        if self.size is None and self.fraction is None:
            self.fraction = 0.1
        if self.size is not None and self.size < 1:
            raise ValueError("size must be >= 1")
        if self.fraction is not None and not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")

    def install(self, sim, *, network, cost_model, rng, duration_s: float,
                log: List[Dict[str, Any]], churn=None, cluster=None) -> None:
        def fire() -> None:
            network.now = sim.now
            alive = network.alive_peer_ids()
            requested = (self.size if self.size is not None
                         else max(1, round(len(alive) * self.fraction)))
            if churn is not None:
                failed = len(churn.burst(requested, rng=rng, rejoin=self.rejoin))
            else:
                budget = max(0, len(alive) - self.min_population)
                count = min(requested, budget)
                victims = rng.sample(alive, count) if count else []
                failed = self._fail_batch(network, victims, rejoin=self.rejoin)
            log.append({"kind": self.kind, "time": sim.now, "failed": failed,
                        "rejoined": failed if self.rejoin else 0})

        sim.schedule(self.at * duration_s, fire)

    def to_config(self) -> Dict[str, Any]:
        config: Dict[str, Any] = {"kind": self.kind, "at": self.at,
                                  "rejoin": self.rejoin,
                                  "min_population": self.min_population}
        if self.size is not None:
            config["size"] = self.size
        else:
            config["fraction"] = self.fraction
        return config


@dataclass
class RegionalPartition(FaultProfile):
    """A contiguous arc of the identifier space goes dark at one instant.

    Every live peer whose identifier lies in ``[start, start + span)`` of the
    identifier space (both as fractions, the arc wraps) fails simultaneously
    — modelling a regional outage or a network partition in which the
    measured side keeps running.  With ``heal_after`` set (a fraction of the
    run duration *after* the partition fires), an equal number of fresh peers
    joins at that later instant (the region's *data* is still lost, as in the
    paper's failure model); ``at + heal_after`` should stay within the run.
    """

    at: float = 0.5
    start: float = 0.0
    span: float = 0.25
    heal_after: Optional[float] = None
    min_population: int = 2

    kind = "partition"

    def __post_init__(self) -> None:
        if not 0.0 <= self.at <= 1.0:
            raise ValueError("at must be a run fraction in [0, 1]")
        if not 0.0 <= self.start < 1.0:
            raise ValueError("start must be in [0, 1)")
        if not 0.0 < self.span < 1.0:
            raise ValueError("span must be in (0, 1)")
        if self.heal_after is not None and self.heal_after <= 0:
            raise ValueError("heal_after must be > 0 when given")

    def install(self, sim, *, network, cost_model, rng, duration_s: float,
                log: List[Dict[str, Any]], churn=None, cluster=None) -> None:
        def fire() -> None:
            network.now = sim.now
            space = 1 << network.bits
            lower = int(self.start * space)
            width = max(1, int(self.span * space))
            in_region = [peer_id for peer_id in network.alive_peer_ids()
                         if (peer_id - lower) % space < width]
            if churn is not None:
                failed = len(churn.fail_together(in_region, rejoin=False))
            else:
                budget = max(0, network.size - self.min_population)
                victims = in_region[:budget]
                failed = self._fail_batch(network, victims, rejoin=False)
            log.append({"kind": self.kind, "time": sim.now, "failed": failed,
                        "region": [self.start, self.span]})
            if self.heal_after is not None and failed:
                def heal() -> None:
                    network.now = sim.now
                    for _ in range(failed):
                        network.join_peer()
                    log.append({"kind": self.kind + "-heal", "time": sim.now,
                                "rejoined": failed})

                sim.schedule(self.heal_after * duration_s, heal)

        sim.schedule(self.at * duration_s, fire)

    def to_config(self) -> Dict[str, Any]:
        config: Dict[str, Any] = {"kind": self.kind, "at": self.at,
                                  "start": self.start, "span": self.span,
                                  "min_population": self.min_population}
        if self.heal_after is not None:
            config["heal_after"] = self.heal_after
        return config


@dataclass
class LossyPeriod(FaultProfile):
    """A window during which the network cost model is degraded.

    Between ``start`` and ``end`` (run fractions), per-message latency is
    multiplied by ``latency_factor``, bandwidth by ``bandwidth_factor`` and
    the failed-peer timeout by ``timeout_factor`` — see
    :meth:`repro.simulation.cost.NetworkCostModel.set_degradation`.  Routing and
    message *counts* are untouched; only the response-time pricing of the
    affected window changes, so the profile isolates "slow network" from
    "lost state".
    """

    start: float = 0.25
    end: float = 0.75
    latency_factor: float = 5.0
    bandwidth_factor: float = 0.25
    timeout_factor: float = 1.0

    kind = "lossy-period"

    def __post_init__(self) -> None:
        if not 0.0 <= self.start < self.end <= 1.0:
            raise ValueError("need 0 <= start < end <= 1")
        if self.latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1 (a lossy period slows)")
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in (0, 1]")
        if self.timeout_factor < 1.0:
            raise ValueError("timeout_factor must be >= 1")

    def install(self, sim, *, network, cost_model, rng, duration_s: float,
                log: List[Dict[str, Any]], churn=None, cluster=None) -> None:
        def degrade() -> None:
            cost_model.set_degradation(latency_factor=self.latency_factor,
                                       bandwidth_factor=self.bandwidth_factor,
                                       timeout_factor=self.timeout_factor)
            log.append({"kind": self.kind, "time": sim.now, "phase": "degrade"})

        def restore() -> None:
            cost_model.clear_degradation()
            log.append({"kind": self.kind, "time": sim.now, "phase": "restore"})

        sim.schedule(self.start * duration_s, degrade)
        sim.schedule(self.end * duration_s, restore)

    def to_config(self) -> Dict[str, Any]:
        return {"kind": self.kind, "start": self.start, "end": self.end,
                "latency_factor": self.latency_factor,
                "bandwidth_factor": self.bandwidth_factor,
                "timeout_factor": self.timeout_factor}


#: Profile kind -> class, the dispatch table of :func:`build_fault`.
FAULT_PROFILES: Dict[str, Type[FaultProfile]] = {
    CorrelatedFailureBurst.kind: CorrelatedFailureBurst,
    RegionalPartition.kind: RegionalPartition,
    LossyPeriod.kind: LossyPeriod,
}


def build_fault(config: Mapping[str, Any]) -> FaultProfile:
    """Build a fault profile from a scenario-spec dict.

    ``config["kind"]`` selects the class; the remaining keys are passed to
    its constructor.
    """
    options = dict(config)
    name = options.pop("kind", None)
    profile_cls = FAULT_PROFILES.get(name)
    if profile_cls is None:
        known = ", ".join(sorted(FAULT_PROFILES))
        raise ValueError(f"unknown fault kind {name!r}; known kinds: {known}")
    return profile_cls(**options)
