"""Arrival models: *when* the measured queries are issued.

The paper issues its queries at uniformly distributed times over the run
(Section 5.1).  That averages over the network's states; bursty arrivals
instead *sample* the states that matter — a flash crowd lands hundreds of
queries inside one churn epoch, a diurnal ramp concentrates load while the
update workload keeps its own clock.  Four models ship:

* :class:`UniformArrivals` — the paper's model (exact count, uniform times);
* :class:`PoissonArrivals` — a homogeneous Poisson stream (count varies);
* :class:`FlashCrowdArrivals` — background uniform traffic plus one or more
  narrow burst windows carrying a configured share of the queries;
* :class:`DiurnalArrivals` — a smooth sinusoidal intensity ramp (inverse-CDF
  sampled), modelling day/night load cycles.

Every model returns a sorted list of times in ``[0, duration_s)`` and is a
pure function of its configuration and the caller's RNG.
"""

from __future__ import annotations

from bisect import bisect_right
from math import pi, sin
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Type

from repro.simulation.processes import poisson_arrival_times

__all__ = [
    "ArrivalModel",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "PoissonArrivals",
    "UniformArrivals",
    "build_arrivals",
]


class ArrivalModel:
    """Base class: generates sorted event times over ``[0, duration_s)``."""

    #: Registry key used by :func:`build_arrivals` and the scenario specs.
    kind: str = "base"

    def times(self, num_events: int, duration_s: float, rng) -> List[float]:
        """Sorted arrival times; ``num_events`` is a target, see each model."""
        raise NotImplementedError

    def to_config(self) -> Dict[str, Any]:
        """The dict configuration that rebuilds this model via :func:`build_arrivals`."""
        return {"model": self.kind}

    @staticmethod
    def _check(num_events: int, duration_s: float) -> None:
        if num_events < 1:
            raise ValueError("num_events must be >= 1")
        if duration_s <= 0:
            raise ValueError("duration_s must be > 0")


class UniformArrivals(ArrivalModel):
    """Exactly ``num_events`` times, uniformly distributed — the paper's model."""

    kind = "uniform"

    def times(self, num_events: int, duration_s: float, rng) -> List[float]:
        self._check(num_events, duration_s)
        return sorted(rng.uniform(0.0, duration_s) for _ in range(num_events))


class PoissonArrivals(ArrivalModel):
    """A homogeneous Poisson stream.

    ``rate_per_s`` fixes the intensity; when omitted it is derived as
    ``num_events / duration_s`` so the *expected* count matches the target
    (the realised count varies run to run, which is the point of the model).
    """

    kind = "poisson"

    def __init__(self, rate_per_s: float = 0.0) -> None:
        if rate_per_s < 0:
            raise ValueError("rate_per_s must be >= 0 (0 derives it from the target)")
        self.rate_per_s = rate_per_s

    def times(self, num_events: int, duration_s: float, rng) -> List[float]:
        self._check(num_events, duration_s)
        rate = self.rate_per_s if self.rate_per_s > 0 else num_events / duration_s
        return poisson_arrival_times(rate, duration_s, rng)

    def to_config(self) -> Dict[str, Any]:
        return {"model": self.kind, "rate_per_s": self.rate_per_s}


class FlashCrowdArrivals(ArrivalModel):
    """Uniform background traffic plus narrow high-intensity burst windows.

    ``bursts`` is a sequence of ``(center, width, share)`` triples, all as
    fractions: the burst window is ``[center - width/2, center + width/2]``
    of the run and carries ``share`` of the total queries (uniformly within
    the window).  Shares must sum to less than 1; the remainder is uniform
    background.  Windows must lie inside ``[0, 1]``, so every generated time
    is guaranteed inside the run — the bound the property tests pin.
    """

    kind = "flash-crowd"

    def __init__(self, bursts: Sequence[Sequence[float]] = ((0.5, 0.1, 0.6),)) -> None:
        parsed: List[Tuple[float, float, float]] = []
        for burst in bursts:
            center, width, share = (float(value) for value in burst)
            if width <= 0 or share <= 0:
                raise ValueError("burst width and share must be > 0")
            if center - width / 2 < 0 or center + width / 2 > 1:
                raise ValueError(f"burst window {burst!r} exceeds the run: "
                                 "center ± width/2 must stay within [0, 1]")
            parsed.append((center, width, share))
        if not parsed:
            raise ValueError("at least one burst is required")
        if sum(share for _, _, share in parsed) >= 1.0:
            raise ValueError("burst shares must sum to < 1 "
                             "(the rest is background traffic)")
        self.bursts = tuple(parsed)

    def times(self, num_events: int, duration_s: float, rng) -> List[float]:
        self._check(num_events, duration_s)
        generated: List[float] = []
        allocated = 0
        for center, width, share in self.bursts:
            count = int(num_events * share)
            allocated += count
            start = (center - width / 2) * duration_s
            stop = (center + width / 2) * duration_s
            generated.extend(rng.uniform(start, stop) for _ in range(count))
        generated.extend(rng.uniform(0.0, duration_s)
                         for _ in range(num_events - allocated))
        generated.sort()
        return generated

    def to_config(self) -> Dict[str, Any]:
        return {"model": self.kind,
                "bursts": [list(burst) for burst in self.bursts]}


class DiurnalArrivals(ArrivalModel):
    """A sinusoidal day/night intensity ramp, inverse-CDF sampled.

    The intensity is ``1 + amplitude * sin(2π * cycles * f - π/2)`` over the
    run fraction ``f`` — the run starts at the trough and completes
    ``cycles`` full cycles.  Exactly ``num_events`` times are drawn by
    inverting the discretised cumulative intensity (``resolution`` bins with
    linear interpolation), so the count is exact and every time lies inside
    the run.
    """

    kind = "diurnal"

    def __init__(self, cycles: int = 1, amplitude: float = 0.8,
                 resolution: int = 512) -> None:
        if cycles < 1:
            raise ValueError("cycles must be >= 1")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if resolution < 8:
            raise ValueError("resolution must be >= 8")
        self.cycles = cycles
        self.amplitude = amplitude
        self.resolution = resolution
        self._cdf = self._build_cdf()

    def _intensity(self, fraction: float) -> float:
        return 1.0 + self.amplitude * sin(2.0 * pi * self.cycles * fraction - pi / 2.0)

    def _build_cdf(self) -> List[float]:
        # Midpoint-rule cumulative intensity over ``resolution`` bins,
        # normalised to [0, 1]; entry i is the CDF at bin edge i + 1.
        step = 1.0 / self.resolution
        masses = [self._intensity((index + 0.5) * step)
                  for index in range(self.resolution)]
        total = sum(masses)
        cdf: List[float] = []
        running = 0.0
        for mass in masses:
            running += mass / total
            cdf.append(running)
        cdf[-1] = 1.0
        return cdf

    def times(self, num_events: int, duration_s: float, rng) -> List[float]:
        self._check(num_events, duration_s)
        step = 1.0 / self.resolution
        generated: List[float] = []
        for _ in range(num_events):
            u = rng.random()
            index = bisect_right(self._cdf, u)
            index = min(index, self.resolution - 1)
            lower = self._cdf[index - 1] if index > 0 else 0.0
            span = self._cdf[index] - lower
            within = (u - lower) / span if span > 0 else 0.0
            fraction = (index + within) * step
            generated.append(min(fraction, 1.0 - 1e-12) * duration_s)
        generated.sort()
        return generated

    def to_config(self) -> Dict[str, Any]:
        return {"model": self.kind, "cycles": self.cycles,
                "amplitude": self.amplitude, "resolution": self.resolution}


#: Model name -> class, the dispatch table of :func:`build_arrivals`.
ARRIVAL_MODELS: Dict[str, Type[ArrivalModel]] = {
    UniformArrivals.kind: UniformArrivals,
    PoissonArrivals.kind: PoissonArrivals,
    FlashCrowdArrivals.kind: FlashCrowdArrivals,
    DiurnalArrivals.kind: DiurnalArrivals,
}


def build_arrivals(config: Mapping[str, Any]) -> ArrivalModel:
    """Build an arrival model from a scenario-spec dict.

    ``config["model"]`` selects the class (default ``"uniform"``); the
    remaining keys are passed to its constructor.  ``bursts`` entries arrive
    as lists after a JSON round-trip; the constructor normalises them.
    """
    options = dict(config)
    name = options.pop("model", "uniform")
    model_cls = ARRIVAL_MODELS.get(name)
    if model_cls is None:
        known = ", ".join(sorted(ARRIVAL_MODELS))
        raise ValueError(f"unknown arrival model {name!r}; known models: {known}")
    return model_cls(**options)
