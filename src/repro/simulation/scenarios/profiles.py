"""Read/write-mix profiles for the paper's application archetypes.

Section 6 of the paper motivates UMS with three applications; each implies a
different mix of queries and updates over the key population:

* **auction** — hot items attract both the reads *and* the writes (bids), so
  updates follow the query popularity and run well above the Table 1 rate;
* **reservation** — bookings update the popular slots, at a moderate rate;
* **agenda** — read-mostly sharing: updates are rare and spread uniformly
  (people edit their own agenda regardless of who reads it).

A :class:`WorkloadProfile` scales the Table 1 update rate, optionally skews
the per-key update rates to follow the scenario's popularity model, and can
scale the query count.  Profiles are declared either field by field or via
``{"archetype": "auction"}`` in a scenario spec.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping

__all__ = ["ARCHETYPES", "WorkloadProfile", "build_profile"]


@dataclass(frozen=True)
class WorkloadProfile:
    """How an application shapes the update/query workload.

    Attributes
    ----------
    name:
        Display name (the archetype name, or ``"default"``).
    update_rate_multiplier:
        Scales ``SimulationParameters.update_rate_per_hour``; the total
        update budget of the run scales with it.
    updates_follow_popularity:
        When true, the *total* update budget is distributed over keys
        proportionally to the scenario's popularity weights (evaluated at the
        start of the run) instead of uniformly — hot keys get hot writes.
    query_multiplier:
        Scales ``SimulationParameters.num_queries`` (rounded, minimum 1).
    """

    name: str = "default"
    update_rate_multiplier: float = 1.0
    updates_follow_popularity: bool = False
    query_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.update_rate_multiplier < 0:
            raise ValueError("update_rate_multiplier must be >= 0")
        if self.query_multiplier <= 0:
            raise ValueError("query_multiplier must be > 0")

    def scaled_queries(self, num_queries: int) -> int:
        """The effective query count for this profile (at least 1)."""
        return max(1, round(num_queries * self.query_multiplier))

    def to_config(self) -> Dict[str, Any]:
        """The dict configuration that rebuilds this profile via :func:`build_profile`."""
        if ARCHETYPES.get(self.name) == self:
            return {"archetype": self.name}
        return {"name": self.name,
                "update_rate_multiplier": self.update_rate_multiplier,
                "updates_follow_popularity": self.updates_follow_popularity,
                "query_multiplier": self.query_multiplier}


#: The shipped application archetypes (Section 6 of the paper).
ARCHETYPES: Dict[str, WorkloadProfile] = {
    "auction": WorkloadProfile(name="auction", update_rate_multiplier=4.0,
                               updates_follow_popularity=True),
    "reservation": WorkloadProfile(name="reservation", update_rate_multiplier=2.0,
                                   updates_follow_popularity=True),
    "agenda": WorkloadProfile(name="agenda", update_rate_multiplier=0.5,
                              updates_follow_popularity=False),
}


def build_profile(config: Mapping[str, Any]) -> WorkloadProfile:
    """Build a workload profile from a scenario-spec dict.

    ``{"archetype": "auction"}`` starts from the named archetype; any other
    keys override its fields.  Without an archetype the keys configure a
    :class:`WorkloadProfile` directly (missing fields keep their defaults).
    """
    options = dict(config)
    archetype = options.pop("archetype", None)
    if archetype is not None:
        base = ARCHETYPES.get(archetype)
        if base is None:
            known = ", ".join(sorted(ARCHETYPES))
            raise ValueError(f"unknown archetype {archetype!r}; known: {known}")
        return replace(base, **options) if options else base
    return WorkloadProfile(**options)
