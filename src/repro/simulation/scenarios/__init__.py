"""Declarative scenario engine: composable workloads and fault profiles.

The paper's evaluation (Section 5) runs one workload: uniformly popular keys,
per-key Poisson updates, queries at uniformly distributed times, and
uncorrelated Poisson churn.  This package opens the regimes that uniform
workloads hide — skewed and shifting key popularity, bursty and diurnal
arrivals, application read/write mixes, and correlated failures — while
keeping every run declarative, seeded and replayable.

A scenario is a :class:`~repro.simulation.scenarios.spec.ScenarioSpec`: a
named, dict-serialisable composition of four orthogonal components:

* **key popularity** (:mod:`~repro.simulation.scenarios.popularity`) —
  which keys the queries ask for (uniform, Zipf hotspot, shifting hotspot);
* **arrivals** (:mod:`~repro.simulation.scenarios.arrivals`) — when the
  queries happen (uniform, Poisson, flash-crowd bursts, diurnal ramp);
* **workload profile** (:mod:`~repro.simulation.scenarios.profiles`) — the
  read/write mix of an application archetype (auction, reservation, agenda);
* **fault profile** (:mod:`~repro.simulation.scenarios.faults`) — events
  layered on top of the background churn (correlated failure bursts,
  regional partitions of the identifier space, lossy network windows).

Scenarios are registered by name exactly like overlays
(:mod:`repro.dht.registry`) and currency services (:mod:`repro.api.services`)
— see :mod:`~repro.simulation.scenarios.registry` — and run through
:func:`~repro.simulation.scenarios.engine.run_scenario`, which drives the
unchanged :class:`~repro.simulation.harness.SimulationHarness`.  The CLI
exposes the same surface as ``repro scenario list|run|compare``.

>>> from repro.simulation.scenarios import run_scenario
>>> from repro.simulation import SimulationParameters
>>> result = run_scenario("hotspot", SimulationParameters.quick(seed=7))
>>> result.scenario
'hotspot'
"""

from repro.simulation.scenarios.arrivals import (
    ArrivalModel,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    UniformArrivals,
    build_arrivals,
)
from repro.simulation.scenarios.engine import Scenario, run_scenario
from repro.simulation.scenarios.faults import (
    CorrelatedFailureBurst,
    FaultProfile,
    LossyPeriod,
    RegionalPartition,
    build_fault,
)
from repro.simulation.scenarios.popularity import (
    KeyPopularityModel,
    ShiftingHotspotPopularity,
    UniformPopularity,
    ZipfPopularity,
    build_popularity,
)
from repro.simulation.scenarios.profiles import (
    ARCHETYPES,
    WorkloadProfile,
    build_profile,
)
from repro.simulation.scenarios.registry import (
    get_scenario,
    is_scenario_registered,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.simulation.scenarios.spec import ScenarioSpec

# Imported last: registers the byzantine fault profiles and the adversarial
# scenarios (byzantine-timestamps, eclipse, geo-latency) into the same
# registries the imports above populated.
from repro.simulation.adversary import (
    ByzantineTimestamps,
    EclipseAttack,
    TimestampLiar,
    eclipse_capture_set,
)

__all__ = [
    "ARCHETYPES",
    "ArrivalModel",
    "ByzantineTimestamps",
    "CorrelatedFailureBurst",
    "DiurnalArrivals",
    "EclipseAttack",
    "FaultProfile",
    "FlashCrowdArrivals",
    "KeyPopularityModel",
    "LossyPeriod",
    "PoissonArrivals",
    "RegionalPartition",
    "Scenario",
    "ScenarioSpec",
    "ShiftingHotspotPopularity",
    "TimestampLiar",
    "UniformArrivals",
    "UniformPopularity",
    "WorkloadProfile",
    "ZipfPopularity",
    "build_arrivals",
    "build_fault",
    "build_popularity",
    "eclipse_capture_set",
    "build_profile",
    "get_scenario",
    "is_scenario_registered",
    "register_scenario",
    "run_scenario",
    "scenario_names",
    "unregister_scenario",
]
