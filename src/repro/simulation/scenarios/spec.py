"""Declarative scenario specifications: dict-serialisable, replayable.

A :class:`ScenarioSpec` names a composition of the four scenario components
(popularity, arrivals, profile, faults) plus optional
:class:`~repro.simulation.config.SimulationParameters` overrides.  Specs are
plain data: ``to_dict``/``from_dict`` round-trip through JSON without loss,
which is what makes record/replay work — a recorded run file stores the spec
and the exact parameters, and replaying it reproduces the same
:class:`~repro.simulation.results.RunResult` bit-for-bit under the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Sequence, Tuple

__all__ = ["ScenarioSpec"]


@dataclass(frozen=True)
class ScenarioSpec:
    """One named scenario, as pure configuration.

    Attributes
    ----------
    name:
        The registry name (``repro scenario run --scenario <name>``).
    description:
        One line shown by ``repro scenario list``.
    popularity / arrivals / profile:
        Component configurations dispatched by
        :func:`~repro.simulation.scenarios.popularity.build_popularity`,
        :func:`~repro.simulation.scenarios.arrivals.build_arrivals` and
        :func:`~repro.simulation.scenarios.profiles.build_profile`.  An empty
        dict selects each component's default (uniform / uniform / neutral).
    faults:
        Zero or more fault-profile configurations for
        :func:`~repro.simulation.scenarios.faults.build_fault`.
    overrides:
        ``SimulationParameters`` fields this scenario pins (e.g. a higher
        ``failure_rate``); explicit caller overrides still win over these.
    """

    name: str
    description: str = ""
    popularity: Mapping[str, Any] = field(default_factory=dict)
    arrivals: Mapping[str, Any] = field(default_factory=dict)
    profile: Mapping[str, Any] = field(default_factory=dict)
    faults: Tuple[Mapping[str, Any], ...] = ()
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        # Normalise to plain dicts / tuple so equality and serialisation are
        # independent of the caller's mapping types.
        object.__setattr__(self, "popularity", dict(self.popularity))
        object.__setattr__(self, "arrivals", dict(self.arrivals))
        object.__setattr__(self, "profile", dict(self.profile))
        object.__setattr__(self, "faults",
                           tuple(dict(fault) for fault in self.faults))
        object.__setattr__(self, "overrides", dict(self.overrides))

    # ------------------------------------------------------------ serialisation
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable dict; ``from_dict`` restores an equal spec."""
        return {
            "name": self.name,
            "description": self.description,
            "popularity": dict(self.popularity),
            "arrivals": dict(self.arrivals),
            "profile": dict(self.profile),
            "faults": [dict(fault) for fault in self.faults],
            "overrides": dict(self.overrides),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON).

        Unknown keys are rejected so typos in hand-written scenario files
        fail loudly instead of silently running the default workload.
        """
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown scenario-spec keys {sorted(unknown)}; "
                             f"expected a subset of {sorted(known)}")
        if "name" not in payload:
            raise ValueError("a scenario spec requires a 'name'")
        faults: Sequence[Mapping[str, Any]] = payload.get("faults", ())
        return cls(name=payload["name"],
                   description=payload.get("description", ""),
                   popularity=payload.get("popularity", {}),
                   arrivals=payload.get("arrivals", {}),
                   profile=payload.get("profile", {}),
                   faults=tuple(faults),
                   overrides=payload.get("overrides", {}))

    # --------------------------------------------------------------- validation
    def validate(self) -> "ScenarioSpec":
        """Build every component once, raising on invalid configuration."""
        # Imported here to keep the spec module free of heavy dependencies.
        from repro.simulation.scenarios.engine import Scenario

        Scenario(self)
        return self
