"""The scenario runtime: built components + the ``run_scenario`` entry point.

:class:`Scenario` turns a declarative
:class:`~repro.simulation.scenarios.spec.ScenarioSpec` into live model
objects and exposes the three hooks the
:class:`~repro.simulation.harness.SimulationHarness` calls: the query
schedule (arrival model × popularity model), the update schedule (profile ×
popularity) and fault installation.  :func:`run_scenario` is the one-call
entry point used by the CLI, the benchmarks and the tests::

    from repro.simulation import SimulationParameters
    from repro.simulation.scenarios import run_scenario

    result = run_scenario("flashcrowd", SimulationParameters.quick(seed=7),
                          protocol="kademlia")

Replay guarantee: the schedules and fault firings are pure functions of the
spec, the parameters and the run seed, so re-running a recorded
``(spec, parameters)`` pair reproduces the same
:class:`~repro.simulation.results.RunResult` metrics bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.simulation.processes import poisson_arrival_times
from repro.simulation.config import SimulationParameters
from repro.simulation.results import RunResult
from repro.simulation.scenarios.arrivals import build_arrivals
from repro.simulation.scenarios.faults import build_fault
from repro.simulation.scenarios.popularity import build_popularity
from repro.simulation.scenarios.profiles import build_profile
from repro.simulation.scenarios.spec import ScenarioSpec
from repro.simulation.workload import ScheduledEvent

__all__ = ["Scenario", "run_scenario"]


class Scenario:
    """A spec's components, built and ready to drive a harness run."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.popularity = build_popularity(spec.popularity)
        self.arrivals = build_arrivals(spec.arrivals)
        self.profile = build_profile(spec.profile)
        self.faults = tuple(build_fault(config) for config in spec.faults)
        #: Fault events fired during the last run (appended by the profiles).
        self.fault_log: List[Dict[str, Any]] = []

    @property
    def name(self) -> str:
        """The spec's registry name."""
        return self.spec.name

    # ----------------------------------------------------------- scheduling
    def query_schedule(self, keys: Sequence[Any], num_queries: int,
                       duration_s: float, rng) -> List[ScheduledEvent]:
        """The measured queries: arrival times × popularity-chosen keys."""
        count = self.profile.scaled_queries(num_queries)
        times = self.arrivals.times(count, duration_s, rng)
        return [ScheduledEvent(time=time,
                               key=self.popularity.choose(keys, time / duration_s, rng))
                for time in times]

    def update_schedule(self, keys: Sequence[Any], rate_per_hour: float,
                        duration_s: float, rng) -> List[ScheduledEvent]:
        """Per-key Poisson update schedules, shaped by the workload profile.

        The total update budget is ``len(keys) * rate_per_hour`` scaled by the
        profile's multiplier; with ``updates_follow_popularity`` it is
        distributed over keys proportionally to the popularity weights at the
        start of the run, otherwise uniformly (the paper's model).
        """
        total_rate_per_s = (len(keys) * rate_per_hour / 3600.0
                            * self.profile.update_rate_multiplier)
        if total_rate_per_s <= 0 or not keys:
            return []
        if self.profile.updates_follow_popularity:
            weights = self.popularity.weights(len(keys), 0.0)
        else:
            weights = [1.0 / len(keys)] * len(keys)
        events: List[ScheduledEvent] = []
        for key, weight in zip(keys, weights):
            rate = total_rate_per_s * weight
            if rate <= 0:
                continue
            for time in poisson_arrival_times(rate, duration_s, rng):
                events.append(ScheduledEvent(time=time, key=key))
        events.sort(key=lambda event: event.time)
        return events

    # --------------------------------------------------------------- faults
    def install_faults(self, sim, *, network, cost_model, rng,
                       duration_s: float, churn=None, cluster=None) -> None:
        """Schedule every fault profile on ``sim``; resets the fault log.

        ``churn`` (the run's :class:`~repro.simulation.churn.ChurnProcess`)
        lets failure-style profiles execute through the churn accounting;
        ``cluster`` (the run's :class:`~repro.api.cluster.Cluster`) gives the
        byzantine profiles of :mod:`repro.simulation.adversary` access to
        the KTS reply seam.
        """
        self.fault_log = []
        for fault in self.faults:
            fault.install(sim, network=network, cost_model=cost_model, rng=rng,
                          duration_s=duration_s, log=self.fault_log, churn=churn,
                          cluster=cluster)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Scenario({self.name!r}, popularity={self.popularity.kind}, "
                f"arrivals={self.arrivals.kind}, profile={self.profile.name}, "
                f"faults={[fault.kind for fault in self.faults]})")


def run_scenario(scenario: Union[str, ScenarioSpec, Scenario],
                 parameters: Optional[SimulationParameters] = None,
                 **overrides) -> RunResult:
    """Run one scenario and return its :class:`RunResult`.

    ``scenario`` is a registered name, a :class:`ScenarioSpec` or a built
    :class:`Scenario`.  ``parameters`` defaults to the Table 1 configuration;
    the spec's ``overrides`` are applied on top of it, and keyword
    ``overrides`` (e.g. ``protocol="kademlia"``, ``seed=7``) win over both.
    """
    # Imported here: the registry registers (and validates) specs at import
    # time, which builds Scenario objects from this module.
    from repro.simulation.harness import SimulationHarness
    from repro.simulation.scenarios.registry import get_scenario

    if isinstance(scenario, str):
        scenario = Scenario(get_scenario(scenario))
    elif isinstance(scenario, ScenarioSpec):
        scenario = Scenario(scenario)
    base = parameters if parameters is not None else SimulationParameters()
    merged = dict(scenario.spec.overrides)
    merged.update(overrides)
    if merged:
        base = base.with_overrides(**merged)
    harness = SimulationHarness(base, scenario=scenario)
    result = harness.run()
    result.scenario = scenario.name
    return result
