"""Network cost model: from message traces to response times.

Table 1 of the paper defines the simulated network: per-message latency drawn
from a normal distribution (mean 200 ms, variance 100) and bandwidth drawn
from a normal distribution (mean 56 kbps, variance 32).  The response time of
an operation is the accumulation of its messages' latency plus transfer
delays; messages that hit a failed peer additionally wait for a timeout before
the sender retries.

Two presets mirror the paper's two testbeds:

* :meth:`NetworkCostModel.wide_area` — Table 1 (the SimJava simulation);
* :meth:`NetworkCostModel.cluster` — the 64-node, 1 Gbps cluster of Section
  5.2, modelled as a small per-message processing latency and LAN bandwidth.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dht.messages import Message, OperationTrace

__all__ = ["GeoLatencyCostModel", "NetworkCostModel"]


@dataclass
class NetworkCostModel:
    """Converts message traces into durations.

    Attributes
    ----------
    latency_mean_s / latency_std_s:
        Per-message network latency (seconds).  Table 1: mean 200 ms,
        variance 100 (ms²) → standard deviation 10 ms.
    bandwidth_mean_bps / bandwidth_std_bps:
        Link bandwidth in bits/second.  Table 1: mean 56 kbps, variance 32
        (kbps²) → standard deviation ≈ 5.66 kbps.
    timeout_s:
        Extra delay paid when a message is sent to a failed peer before the
        sender gives up and retries.
    rng:
        Random source; a model built with a seed is fully reproducible.
    """

    latency_mean_s: float = 0.2
    latency_std_s: float = 0.01
    bandwidth_mean_bps: float = 56_000.0
    bandwidth_std_bps: float = 5_660.0
    timeout_s: float = 2.0
    rng: Optional[random.Random] = None

    def __post_init__(self) -> None:
        if self.latency_mean_s < 0 or self.bandwidth_mean_bps <= 0:
            raise ValueError("latency must be >= 0 and bandwidth must be > 0")
        if self.rng is None:
            # reprolint: allow[REP002] reason=documented convenience default for ad-hoc use; every replayed run injects a seeded rng (tests/simulation/test_cost.py)
            self.rng = random.Random()
        self._latency_factor = 1.0
        self._bandwidth_factor = 1.0
        self._timeout_factor = 1.0

    # ------------------------------------------------------------ degradation
    def set_degradation(self, *, latency_factor: float = 1.0,
                        bandwidth_factor: float = 1.0,
                        timeout_factor: float = 1.0) -> None:
        """Enter a degraded (lossy) period: scale subsequent delay samples.

        Until :meth:`clear_degradation`, sampled latencies are multiplied by
        ``latency_factor``, sampled bandwidths by ``bandwidth_factor`` and the
        failed-peer timeout by ``timeout_factor``.  Sampling still consumes
        exactly one RNG draw per message, so seeded runs stay aligned with
        their undegraded twins — only the pricing changes.  Used by the
        scenario engine's lossy-period fault profile
        (:class:`repro.simulation.scenarios.faults.LossyPeriod`).
        """
        if latency_factor <= 0 or bandwidth_factor <= 0 or timeout_factor <= 0:
            raise ValueError("degradation factors must be > 0")
        self._latency_factor = latency_factor
        self._bandwidth_factor = bandwidth_factor
        self._timeout_factor = timeout_factor

    def clear_degradation(self) -> None:
        """Leave the degraded period: restore nominal pricing."""
        self._latency_factor = 1.0
        self._bandwidth_factor = 1.0
        self._timeout_factor = 1.0

    @property
    def degraded(self) -> bool:
        """Whether a degradation is currently in effect."""
        return (self._latency_factor, self._bandwidth_factor,
                self._timeout_factor) != (1.0, 1.0, 1.0)

    # --------------------------------------------------------------- presets
    @classmethod
    def wide_area(cls, seed: Optional[int] = None) -> "NetworkCostModel":
        """The Table 1 wide-area network (200 ms latency, 56 kbps)."""
        return cls(rng=random.Random(seed))

    @classmethod
    def cluster(cls, seed: Optional[int] = None) -> "NetworkCostModel":
        """The 64-node cluster of Section 5.2.

        The cluster interconnect is 1 Gbps with sub-millisecond wire latency;
        the dominant per-message cost there is protocol/processing overhead,
        which we model as a 50 ms mean per-message latency.  This calibration
        puts the absolute response times in the range reported by Figure 6
        (≈0.3–2.5 s for 10–64 peers).
        """
        return cls(latency_mean_s=0.05, latency_std_s=0.005,
                   bandwidth_mean_bps=1_000_000_000.0, bandwidth_std_bps=0.0,
                   timeout_s=0.5, rng=random.Random(seed))

    # ---------------------------------------------------------------- sampling
    def sample_latency(self) -> float:
        """One per-message latency sample (truncated at a small positive floor)."""
        sample = max(1e-4, self.rng.gauss(self.latency_mean_s, self.latency_std_s))
        return sample * self._latency_factor

    def sample_bandwidth(self) -> float:
        """One bandwidth sample in bits/second (truncated at 1 kbps)."""
        if self.bandwidth_std_bps <= 0:
            return self.bandwidth_mean_bps * self._bandwidth_factor
        sample = max(1_000.0, self.rng.gauss(self.bandwidth_mean_bps,
                                             self.bandwidth_std_bps))
        return sample * self._bandwidth_factor

    # ---------------------------------------------------------------- durations
    def message_delay(self, message: Message) -> float:
        """Latency + transfer time (+ timeout) for a single message."""
        delay = self.sample_latency()
        delay += (message.size_bytes * 8) / self.sample_bandwidth()
        if message.timed_out:
            delay += self.timeout_s * self._timeout_factor
        return delay

    def duration(self, trace: OperationTrace) -> float:
        """Total response time of an operation whose messages are sent sequentially.

        The services of the paper are sequential by construction: UMS probes
        replicas one at a time (stopping at the first current one) and KTS
        performs a lookup followed by a request/reply exchange, so summing the
        per-message delays reproduces the SimJava accounting.
        """
        return sum(self.message_delay(message) for message in trace)

    #: Per-message framing overhead charged by :meth:`traffic_bytes`.  Matches
    #: the 4-byte length prefix of the wire codec's frame format
    #: (``repro.net.codec.FRAME_HEADER_BYTES``) — kept as a local constant so
    #: the simulation layer does not import upward into ``repro.net``.
    frame_overhead_bytes: int = 4

    def traffic_bytes(self, trace: OperationTrace) -> int:
        """Total wire bytes of an operation: payloads plus framing overhead.

        Deterministic (no sampling): the byte-denominated twin of the
        message-count communication cost, used for the bytes-per-op curves.
        """
        return trace.total_bytes + self.frame_overhead_bytes * trace.message_count

    def expected_message_delay(self, size_bytes: int = 128) -> float:
        """Deterministic expectation of a message delay (no sampling); handy in tests."""
        return self.latency_mean_s + (size_bytes * 8) / self.bandwidth_mean_bps


@dataclass
class GeoLatencyCostModel(NetworkCostModel):
    """Per-region RTT pricing: the Table 1 WAN made geography-aware.

    Peers are assigned to ``regions`` deterministically (a seeded hash of
    the peer id — no RNG draws, so attaching the model never perturbs a
    run's random streams) and the per-message latency mean becomes half the
    RTT between the source's and destination's regions instead of the
    uniform ``latency_mean_s``.  Sampling still consumes exactly one latency
    draw and one bandwidth draw per message (``latency_std_s`` prices the
    jitter around the regional mean), and the degradation factors of
    :meth:`NetworkCostModel.set_degradation` apply unchanged — so scenario
    fault profiles compose with geo pricing.

    With ``regions=1`` the default matrix degenerates to
    ``[[2 * latency_mean_s]]`` and the model is bit-identical to the base
    wide-area :class:`NetworkCostModel` (pinned by
    ``tests/adversary/test_honest_parity.py``).

    Attributes
    ----------
    regions:
        Number of geographic regions (>= 1).
    assignment_seed:
        Seed of the deterministic peer -> region hash; two models with the
        same seed agree on every peer's region.
    rtt_matrix:
        Symmetric ``regions x regions`` matrix of round-trip times in
        seconds.  ``None`` builds the default: intra-region RTT
        ``2 * latency_mean_s`` and inter-region RTT growing with region
        distance (see :meth:`default_rtt_matrix`).
    """

    regions: int = 3
    assignment_seed: int = 0
    rtt_matrix: Optional[Tuple[Tuple[float, ...], ...]] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.regions < 1:
            raise ValueError("regions must be >= 1")
        if self.rtt_matrix is None:
            self.rtt_matrix = self.default_rtt_matrix(self.regions,
                                                      self.latency_mean_s)
        else:
            self.rtt_matrix = tuple(tuple(row) for row in self.rtt_matrix)
        if len(self.rtt_matrix) != self.regions:
            raise ValueError(f"rtt_matrix must be {self.regions}x{self.regions}")
        for row_index, row in enumerate(self.rtt_matrix):
            if len(row) != self.regions:
                raise ValueError(f"rtt_matrix must be {self.regions}x{self.regions}")
            for column_index, rtt in enumerate(row):
                if rtt <= 0:
                    raise ValueError("every RTT must be > 0")
                if rtt != self.rtt_matrix[column_index][row_index]:
                    raise ValueError("rtt_matrix must be symmetric")
        self._region_cache: Dict[int, int] = {}

    @staticmethod
    def default_rtt_matrix(regions: int,
                           latency_mean_s: float) -> Tuple[Tuple[float, ...], ...]:
        """The default RTT matrix: Table 1 intra-region, distance-scaled inter.

        Intra-region RTT is ``2 * latency_mean_s`` (so each one-way hop
        matches the uniform model's mean) and the RTT between regions ``i``
        and ``j`` grows by 75% of that base per unit of region distance —
        a coarse continental gradient that keeps the single-region case an
        exact degeneration of the uniform model.
        """
        base = 2.0 * latency_mean_s
        return tuple(
            tuple(base * (1.0 + 0.75 * abs(row - column))
                  for column in range(regions))
            for row in range(regions))

    # ------------------------------------------------------------- regions
    def region_of(self, peer: Optional[int]) -> int:
        """The region of ``peer``: a seeded hash, stable across the run.

        ``None`` (a client-side endpoint with no peer id) is pinned to
        region 0 so every message prices deterministically.
        """
        if peer is None:
            return 0
        region = self._region_cache.get(peer)
        if region is None:
            digest = hashlib.blake2s(
                f"geo-region:{self.assignment_seed}:{peer}".encode()).digest()
            region = int.from_bytes(digest[:8], "big") % self.regions
            self._region_cache[peer] = region
        return region

    def link_latency_mean_s(self, source: Optional[int],
                            dest: Optional[int]) -> float:
        """Half the RTT between the regions of ``source`` and ``dest``."""
        return self.rtt_matrix[self.region_of(source)][self.region_of(dest)] / 2.0

    # ------------------------------------------------------------ sampling
    def message_delay(self, message: Message) -> float:
        """Regional latency + transfer time (+ timeout) for a single message.

        Identical draw accounting to the base model: one latency gauss (mean
        set by the endpoint regions) and one bandwidth sample per message.
        """
        mean = self.link_latency_mean_s(message.source, message.dest)
        delay = max(1e-4, self.rng.gauss(mean, self.latency_std_s))
        delay *= self._latency_factor
        delay += (message.size_bytes * 8) / self.sample_bandwidth()
        if message.timed_out:
            delay += self.timeout_s * self._timeout_factor
        return delay

    def expected_message_delay(self, size_bytes: int = 128) -> float:
        """Expectation over uniformly random region pairs (no sampling)."""
        total = sum(sum(row) for row in self.rtt_matrix)
        mean_rtt = total / (self.regions * self.regions)
        return mean_rtt / 2.0 + (size_bytes * 8) / self.bandwidth_mean_bps
