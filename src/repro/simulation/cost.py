"""Network cost model: from message traces to response times.

Table 1 of the paper defines the simulated network: per-message latency drawn
from a normal distribution (mean 200 ms, variance 100) and bandwidth drawn
from a normal distribution (mean 56 kbps, variance 32).  The response time of
an operation is the accumulation of its messages' latency plus transfer
delays; messages that hit a failed peer additionally wait for a timeout before
the sender retries.

Two presets mirror the paper's two testbeds:

* :meth:`NetworkCostModel.wide_area` — Table 1 (the SimJava simulation);
* :meth:`NetworkCostModel.cluster` — the 64-node, 1 Gbps cluster of Section
  5.2, modelled as a small per-message processing latency and LAN bandwidth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.dht.messages import Message, OperationTrace

__all__ = ["NetworkCostModel"]


@dataclass
class NetworkCostModel:
    """Converts message traces into durations.

    Attributes
    ----------
    latency_mean_s / latency_std_s:
        Per-message network latency (seconds).  Table 1: mean 200 ms,
        variance 100 (ms²) → standard deviation 10 ms.
    bandwidth_mean_bps / bandwidth_std_bps:
        Link bandwidth in bits/second.  Table 1: mean 56 kbps, variance 32
        (kbps²) → standard deviation ≈ 5.66 kbps.
    timeout_s:
        Extra delay paid when a message is sent to a failed peer before the
        sender gives up and retries.
    rng:
        Random source; a model built with a seed is fully reproducible.
    """

    latency_mean_s: float = 0.2
    latency_std_s: float = 0.01
    bandwidth_mean_bps: float = 56_000.0
    bandwidth_std_bps: float = 5_660.0
    timeout_s: float = 2.0
    rng: Optional[random.Random] = None

    def __post_init__(self) -> None:
        if self.latency_mean_s < 0 or self.bandwidth_mean_bps <= 0:
            raise ValueError("latency must be >= 0 and bandwidth must be > 0")
        if self.rng is None:
            # reprolint: allow[REP002] reason=documented convenience default for ad-hoc use; every replayed run injects a seeded rng (tests/simulation/test_cost.py)
            self.rng = random.Random()
        self._latency_factor = 1.0
        self._bandwidth_factor = 1.0
        self._timeout_factor = 1.0

    # ------------------------------------------------------------ degradation
    def set_degradation(self, *, latency_factor: float = 1.0,
                        bandwidth_factor: float = 1.0,
                        timeout_factor: float = 1.0) -> None:
        """Enter a degraded (lossy) period: scale subsequent delay samples.

        Until :meth:`clear_degradation`, sampled latencies are multiplied by
        ``latency_factor``, sampled bandwidths by ``bandwidth_factor`` and the
        failed-peer timeout by ``timeout_factor``.  Sampling still consumes
        exactly one RNG draw per message, so seeded runs stay aligned with
        their undegraded twins — only the pricing changes.  Used by the
        scenario engine's lossy-period fault profile
        (:class:`repro.simulation.scenarios.faults.LossyPeriod`).
        """
        if latency_factor <= 0 or bandwidth_factor <= 0 or timeout_factor <= 0:
            raise ValueError("degradation factors must be > 0")
        self._latency_factor = latency_factor
        self._bandwidth_factor = bandwidth_factor
        self._timeout_factor = timeout_factor

    def clear_degradation(self) -> None:
        """Leave the degraded period: restore nominal pricing."""
        self._latency_factor = 1.0
        self._bandwidth_factor = 1.0
        self._timeout_factor = 1.0

    @property
    def degraded(self) -> bool:
        """Whether a degradation is currently in effect."""
        return (self._latency_factor, self._bandwidth_factor,
                self._timeout_factor) != (1.0, 1.0, 1.0)

    # --------------------------------------------------------------- presets
    @classmethod
    def wide_area(cls, seed: Optional[int] = None) -> "NetworkCostModel":
        """The Table 1 wide-area network (200 ms latency, 56 kbps)."""
        return cls(rng=random.Random(seed))

    @classmethod
    def cluster(cls, seed: Optional[int] = None) -> "NetworkCostModel":
        """The 64-node cluster of Section 5.2.

        The cluster interconnect is 1 Gbps with sub-millisecond wire latency;
        the dominant per-message cost there is protocol/processing overhead,
        which we model as a 50 ms mean per-message latency.  This calibration
        puts the absolute response times in the range reported by Figure 6
        (≈0.3–2.5 s for 10–64 peers).
        """
        return cls(latency_mean_s=0.05, latency_std_s=0.005,
                   bandwidth_mean_bps=1_000_000_000.0, bandwidth_std_bps=0.0,
                   timeout_s=0.5, rng=random.Random(seed))

    # ---------------------------------------------------------------- sampling
    def sample_latency(self) -> float:
        """One per-message latency sample (truncated at a small positive floor)."""
        sample = max(1e-4, self.rng.gauss(self.latency_mean_s, self.latency_std_s))
        return sample * self._latency_factor

    def sample_bandwidth(self) -> float:
        """One bandwidth sample in bits/second (truncated at 1 kbps)."""
        if self.bandwidth_std_bps <= 0:
            return self.bandwidth_mean_bps * self._bandwidth_factor
        sample = max(1_000.0, self.rng.gauss(self.bandwidth_mean_bps,
                                             self.bandwidth_std_bps))
        return sample * self._bandwidth_factor

    # ---------------------------------------------------------------- durations
    def message_delay(self, message: Message) -> float:
        """Latency + transfer time (+ timeout) for a single message."""
        delay = self.sample_latency()
        delay += (message.size_bytes * 8) / self.sample_bandwidth()
        if message.timed_out:
            delay += self.timeout_s * self._timeout_factor
        return delay

    def duration(self, trace: OperationTrace) -> float:
        """Total response time of an operation whose messages are sent sequentially.

        The services of the paper are sequential by construction: UMS probes
        replicas one at a time (stopping at the first current one) and KTS
        performs a lookup followed by a request/reply exchange, so summing the
        per-message delays reproduces the SimJava accounting.
        """
        return sum(self.message_delay(message) for message in trace)

    def expected_message_delay(self, size_bytes: int = 128) -> float:
        """Deterministic expectation of a message delay (no sampling); handy in tests."""
        return self.latency_mean_s + (size_bytes * 8) / self.bandwidth_mean_bps
