"""End-to-end simulation harness reproducing the paper's evaluation setup.

The harness wires together the DHT substrate, the UMS/KTS/BRK services, the
discrete-event engine and the Table 1 workload model (churn, per-key updates,
uniformly spread queries), and produces per-query response times and message
counts — the two metrics reported in Figures 6–12.
"""

from repro.simulation.config import Algorithm, SimulationParameters
from repro.simulation.churn import ChurnEvent, ChurnProcess
from repro.simulation.harness import SimulationHarness, run_simulation
from repro.simulation.results import QueryObservation, RunResult
from repro.simulation.workload import QuerySchedule, UpdateWorkload, payload_for

__all__ = [
    "Algorithm",
    "ChurnEvent",
    "ChurnProcess",
    "QueryObservation",
    "QuerySchedule",
    "RunResult",
    "SimulationHarness",
    "SimulationParameters",
    "UpdateWorkload",
    "payload_for",
    "run_simulation",
]
