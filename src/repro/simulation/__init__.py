"""End-to-end simulation harness reproducing the paper's evaluation setup.

The harness wires together the DHT substrate, the UMS/KTS/BRK services, the
discrete-event engine and the Table 1 workload model (churn, per-key updates,
uniformly spread queries), and produces per-query response times and message
counts — the two metrics reported in Figures 6–12.

Beyond the paper's single workload, :mod:`repro.simulation.scenarios` drives
the same harness with declarative scenarios — skewed/shifting key
popularity, bursty/diurnal arrivals, application read/write mixes and
correlated fault profiles — registered by name and replayable from recorded
specs (``repro scenario run/list/compare`` on the CLI).

The discrete-event substrate (the SimJava substitute) lives here too:
:mod:`repro.simulation.engine` (event heap + generator processes),
:mod:`repro.simulation.processes` (Poisson arrivals),
:mod:`repro.simulation.cost` (the Table 1 network cost model) and
:mod:`repro.simulation.metrics` (tallies, counters, time series).  The stack
reads engine → workload/scenarios → harness → :mod:`repro.execution`.
"""

from repro.simulation.config import Algorithm, SimulationParameters
from repro.simulation.churn import ChurnEvent, ChurnProcess
from repro.simulation.cost import GeoLatencyCostModel, NetworkCostModel
from repro.simulation.engine import Event, Process, SimulationError, Simulator, Timeout
from repro.simulation.metrics import Counter, Tally, TimeSeries
from repro.simulation.processes import PoissonProcess, poisson_arrival_times
from repro.simulation.harness import SimulationHarness, run_simulation
from repro.simulation.results import QueryObservation, RunResult
from repro.simulation.scenarios import (
    Scenario,
    ScenarioSpec,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)
from repro.simulation.workload import (
    QuerySchedule,
    ScheduledEvent,
    UpdateWorkload,
    payload_for,
)

__all__ = [
    "Algorithm",
    "ChurnEvent",
    "ChurnProcess",
    "Counter",
    "Event",
    "GeoLatencyCostModel",
    "NetworkCostModel",
    "PoissonProcess",
    "Process",
    "QueryObservation",
    "QuerySchedule",
    "RunResult",
    "Scenario",
    "ScenarioSpec",
    "ScheduledEvent",
    "SimulationError",
    "SimulationHarness",
    "SimulationParameters",
    "Simulator",
    "Tally",
    "TimeSeries",
    "Timeout",
    "UpdateWorkload",
    "get_scenario",
    "payload_for",
    "register_scenario",
    "run_scenario",
    "run_simulation",
    "scenario_names",
]
