"""Stochastic arrival processes used by the simulation harness.

The paper times both peer departures and data updates with Poisson processes
(Table 1): departures at ``λ = 1/second`` over the whole network, updates at
``λ = 1/hour`` per data item.  :class:`PoissonProcess` wires such a process
into the event engine; :func:`poisson_arrival_times` generates a static
schedule of arrival times (useful for reproducible workloads and tests).
"""

from __future__ import annotations

import math
import random
from typing import Callable, Generator, List, Optional

from repro.simulation.engine import Event, Simulator

__all__ = ["PoissonProcess", "exponential_interval", "poisson_arrival_times"]


def exponential_interval(rate: float, rng: random.Random) -> float:
    """One inter-arrival interval of a Poisson process with the given rate (events/second)."""
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    # Inverse-CDF sampling; guard against u == 0.
    u = rng.random()
    while u <= 0.0:
        u = rng.random()
    return -math.log(u) / rate


def poisson_arrival_times(rate: float, duration: float,
                          rng: random.Random) -> List[float]:
    """Arrival times of a Poisson process with ``rate`` events/second over ``[0, duration)``."""
    if duration < 0:
        raise ValueError(f"duration must be >= 0, got {duration}")
    times: List[float] = []
    clock = 0.0
    while True:
        clock += exponential_interval(rate, rng)
        if clock >= duration:
            return times
        times.append(clock)


class PoissonProcess:
    """A recurring event source attached to a :class:`Simulator`.

    Parameters
    ----------
    sim:
        The simulation engine.
    rate:
        Expected number of events per simulated second.
    action:
        Callable invoked at every arrival (no arguments).  Exceptions
        propagate and stop the simulation, which is what we want in tests.
    rng:
        Random source for the exponential inter-arrival times.
    until:
        Optional end time after which no further arrivals are scheduled.
    """

    def __init__(self, sim: Simulator, rate: float, action: Callable[[], None], *,
                 rng: Optional[random.Random] = None,
                 until: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.sim = sim
        self.rate = rate
        self.action = action
        # reprolint: allow[REP002] reason=documented convenience default for ad-hoc use; scenario runs inject a seeded rng (tests/simulation/test_processes.py)
        self.rng = rng if rng is not None else random.Random()
        self.until = until
        self.arrivals = 0
        self._stopped = False
        self.process = sim.process(self._run(), name=f"poisson(rate={rate})")

    def stop(self) -> None:
        """Stop scheduling further arrivals (already scheduled ones still fire)."""
        self._stopped = True

    def _run(self) -> Generator[Event, None, None]:
        while not self._stopped:
            interval = exponential_interval(self.rate, self.rng)
            next_time = self.sim.now + interval
            if self.until is not None and next_time > self.until:
                return
            yield self.sim.timeout(interval)
            if self._stopped:
                return
            self.arrivals += 1
            self.action()
