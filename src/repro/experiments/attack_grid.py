"""The attack grid: currency degradation under byzantine responsibles.

The paper's currency guarantee (Section 4) is proved for crash-stop faults:
responsibles may fail, but the ones that answer, answer honestly.  This
experiment measures what happens when that assumption breaks.  For every
overlay in the grid it sweeps the byzantine fraction — the share of peers
whose KTS replies are falsified by
:class:`repro.simulation.adversary.ByzantineTimestamps` — and records the
*certified currency rate* (queries the service certified current) against
the analytical guarantee, which is the honest-responsible baseline measured
at fraction 0 on the same seed and workload.

The degradation curve this produces is the repository's ``attack-degradation``
artifact: per overlay, certified currency stays *at* the guarantee up to a
threshold fraction (small byzantine sets often miss the responsibles of the
queried keys entirely) and falls below it past that threshold.  The artifact
reports the measured threshold per overlay, plus the detector's counters
(:class:`repro.core.detector.CrossCheckDetector` flags, ground-truth stale
results, certified-but-stale violations) for every grid point.

Everything runs through the unified execution layer: the grid is one
:class:`~repro.execution.RunPlan`, so ``--jobs N`` fans it out over a process
pool and a cache directory skips already-executed points — bit-identical to
a serial uncached run for the same seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.execution import Executor, RunPlan
from repro.simulation.config import SimulationParameters
from repro.simulation.results import RunResult
from repro.simulation.adversary import STRATEGIES, byzantine_scenario_spec

__all__ = [
    "DEFAULT_FRACTIONS",
    "DEFAULT_PROTOCOLS",
    "build_attack_plan",
    "default_attack_parameters",
    "degradation_report",
    "run_attack_grid",
]

#: Byzantine fractions swept by default; 0.0 (the honest baseline every
#: overlay's guarantee is anchored to) is always included.
DEFAULT_FRACTIONS: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.5)

#: The built-in overlays; any name registered in :mod:`repro.dht.registry`
#: may be swept instead.
DEFAULT_PROTOCOLS: Tuple[str, ...] = ("chord", "can", "kademlia")


def default_attack_parameters(seed: int = 2007) -> SimulationParameters:
    """The grid's default workload: small, fast, and staleness-prone.

    A deliberately repetitive workload — few keys, many queries, a high
    update rate — so that repeated queries of the same key straddle updates,
    which is exactly when a frozen (stale-replay) timestamp claim becomes
    observable.  One point runs in well under a second.
    """
    return SimulationParameters.quick(
        seed=seed, num_peers=120, num_keys=6, num_queries=60,
        duration_s=600.0, update_rate_per_hour=60.0)


def _normalise_fractions(fractions: Sequence[float]) -> List[float]:
    """Sorted, deduplicated fractions with the 0.0 baseline guaranteed."""
    cleaned = sorted(set(float(fraction) for fraction in fractions))
    for fraction in cleaned:
        if not 0.0 <= fraction < 1.0:
            raise ValueError(f"byzantine fraction {fraction} not in [0, 1)")
    if not cleaned or cleaned[0] != 0.0:
        cleaned.insert(0, 0.0)
    return cleaned


def build_attack_plan(parameters: SimulationParameters, *,
                      fractions: Sequence[float] = DEFAULT_FRACTIONS,
                      protocols: Sequence[str] = DEFAULT_PROTOCOLS,
                      strategy: str = "stale-replay", lag: int = 1) -> RunPlan:
    """The grid as one :class:`RunPlan`: ``protocols × fractions`` points.

    Point order is protocols-major, fractions ascending within each overlay;
    labels are ``"<protocol>@f<fraction>"``.  Every overlay's sweep includes
    the 0.0 baseline point, which anchors its analytical guarantee in
    :func:`degradation_report`.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; known: {STRATEGIES}")
    plan = RunPlan(name=f"attack-grid-{strategy}")
    for protocol in protocols:
        for fraction in _normalise_fractions(fractions):
            spec = byzantine_scenario_spec(fraction, strategy=strategy, lag=lag)
            plan.add_scenario(spec, parameters, protocol=protocol,
                              label=f"{protocol}@f{fraction:g}")
    return plan


def degradation_report(plan: RunPlan, results: Sequence[RunResult], *,
                       strategy: str) -> Dict[str, object]:
    """Fold grid results into the ``attack-degradation`` artifact.

    Per overlay: ``baseline_currency`` is the certified currency rate of the
    fraction-0 point (the analytical guarantee — the rate the paper's
    crash-stop analysis certifies on this workload), ``points`` the swept
    curve, and ``threshold`` the smallest byzantine fraction whose measured
    certified currency falls strictly below the guarantee (``None`` if the
    attack never lands).  ``results`` must be :meth:`Executor.run` output for
    ``plan``, in plan order.
    """
    if len(results) != len(plan):
        raise ValueError(f"expected {len(plan)} results, got {len(results)}")
    overlays: Dict[str, Dict[str, object]] = {}
    fractions: List[float] = []
    for point, result in zip(plan, results):
        protocol = point.parameters.protocol
        label = point.label or ""
        fraction = float(label.rsplit("@f", 1)[1]) if "@f" in label else 0.0
        entry = overlays.setdefault(protocol, {"points": []})
        summary = result.summary()
        entry["points"].append({
            "fraction": fraction,
            "currency": summary["currency_rate"],
            "true_currency": summary["true_currency_rate"],
            "stale_results": int(summary["stale_results"]),
            "violations": int(summary["currency_violations"]),
            "detected_lies": int(summary["detected_lies"]),
            "undetected_stale_rate": summary["undetected_stale_rate"],
        })
        if fraction not in fractions:
            fractions.append(fraction)
    for entry in overlays.values():
        points = sorted(entry["points"], key=lambda item: item["fraction"])
        baseline = points[0]["currency"]
        threshold: Optional[float] = None
        for item in points:
            item["guarantee"] = baseline
            if (threshold is None and item["fraction"] > 0.0
                    and item["currency"] < baseline):
                threshold = item["fraction"]
        entry["points"] = points
        entry["baseline_currency"] = baseline
        entry["threshold"] = threshold
    base_parameters = plan[0].parameters.describe() if len(plan) else {}
    return {
        "experiment": "attack-degradation",
        "strategy": strategy,
        "fractions": sorted(fractions),
        "protocols": sorted(overlays),
        "plan_hash": plan.plan_hash,
        "parameters": base_parameters,
        "overlays": overlays,
    }


def run_attack_grid(parameters: Optional[SimulationParameters] = None, *,
                    fractions: Sequence[float] = DEFAULT_FRACTIONS,
                    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
                    strategy: str = "stale-replay", lag: int = 1,
                    executor: Optional[Executor] = None) -> Dict[str, object]:
    """Build the plan, execute it, and return the degradation artifact.

    ``executor`` defaults to a serial :class:`~repro.execution.Executor`;
    pass one built with ``jobs``/``cache_dir`` to parallelise or cache.
    """
    if parameters is None:
        parameters = default_attack_parameters()
    plan = build_attack_plan(parameters, fractions=fractions,
                             protocols=protocols, strategy=strategy, lag=lag)
    runner = executor if executor is not None else Executor()
    results = runner.run(plan)
    return degradation_report(plan, results, strategy=strategy)
