"""Run every reproduced experiment and render a Markdown report.

Usage::

    python -m repro.experiments.runner --scale quick
    python -m repro.experiments.runner --scale paper --output results.md
    python -m repro.experiments.runner --scale paper --jobs 4 --cache-dir .repro-cache

All sweeps execute through the unified execution layer
(:mod:`repro.execution`): ``--jobs N`` fans the grid out over a process pool
(bit-identical results to a serial run for the same seed) and ``--cache-dir``
skips any parameter point that was already executed and cached there
(``--no-cache`` forces re-execution while refreshing the cache).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, TextIO

from repro.dht.registry import overlay_names
from repro.execution import Executor
from repro.experiments import figures
from repro.experiments.reporting import ExperimentTable

__all__ = ["run_all_experiments", "write_experiments_report", "main"]


def run_all_experiments(scale: str = "quick", *, seed: int = 2007,
                        protocol: str = "chord",
                        include_ablations: bool = True,
                        executor: Optional[Executor] = None) -> List[ExperimentTable]:
    """Regenerate every table/figure of the paper (plus the ablations).

    The shared sweeps behind Figures 7/8 and 9/10 are each run once and reused
    for both tables.  ``protocol`` selects the overlay the simulated sweeps
    run on (any name registered in :mod:`repro.dht.registry`); it applies to
    Figures 6-12 and the probe-order ablation, while the stabilisation
    ablation stays on Chord (it ablates a Chord-specific knob) and the
    overlay ablation compares every registered overlay by design.

    ``executor`` runs every sweep (one :class:`~repro.execution.RunPlan` per
    experiment); the default is a serial :class:`~repro.execution.Executor`.
    """
    tables: List[ExperimentTable] = [
        figures.table1_parameters(scale),
        figures.expected_retrievals_table(),
        figures.figure6_cluster_scaleup(scale, seed=seed, protocol=protocol,
                                        executor=executor),
    ]
    scaleup = figures.scaleup_results(scale, seed=seed, protocol=protocol,
                                      executor=executor)
    tables.append(figures.figure7_simulated_scaleup(scale, seed=seed, protocol=protocol,
                                                    precomputed=scaleup))
    tables.append(figures.figure8_messages_vs_peers(scale, seed=seed, protocol=protocol,
                                                    precomputed=scaleup))
    replica_sweep = figures.replica_sweep_results(scale, seed=seed, protocol=protocol,
                                                  executor=executor)
    tables.append(figures.figure9_replicas_response_time(scale, seed=seed,
                                                         protocol=protocol,
                                                         precomputed=replica_sweep))
    tables.append(figures.figure10_replicas_messages(scale, seed=seed,
                                                     protocol=protocol,
                                                     precomputed=replica_sweep))
    tables.append(figures.figure11_failure_rate(scale, seed=seed, protocol=protocol,
                                                executor=executor))
    tables.append(figures.figure12_update_frequency(scale, seed=seed, protocol=protocol,
                                                    executor=executor))
    if include_ablations:
        tables.append(figures.ablation_probe_order(scale, seed=seed, protocol=protocol,
                                                   executor=executor))
        tables.append(figures.ablation_stabilization(scale, seed=seed,
                                                     executor=executor))
        tables.append(figures.ablation_overlay(scale, seed=seed, executor=executor))
        tables.append(figures.ablation_consistency(scale, seed=seed, protocol=protocol,
                                                   executor=executor))
    return tables


def write_experiments_report(tables: List[ExperimentTable], stream: TextIO, *,
                             scale: str, elapsed_s: Optional[float] = None,
                             charts: bool = False) -> None:
    """Render the tables (and optionally ASCII charts) as Markdown to ``stream``."""
    from repro.experiments.plots import ascii_chart

    stream.write("# Reproduced experiments — measured results\n\n")
    stream.write(f"Scale profile: `{scale}`.\n")
    if elapsed_s is not None:
        stream.write(f"Total wall-clock time: {elapsed_s:.1f} s.\n")
    stream.write("\n")
    for table in tables:
        stream.write(table.to_markdown())
        stream.write("\n\n")
        if charts and table.experiment_id.startswith("figure"):
            stream.write("```\n" + ascii_chart(table) + "\n```\n\n")


def _progress_printer(stream=None):
    """A per-run progress callback writing one status line per completion."""
    stream = stream if stream is not None else sys.stderr

    def progress(completed: int, total: int, point) -> None:
        label = point.label or point.content_hash[:12]
        stream.write(f"  [{completed}/{total}] {label}\n")
        stream.flush()

    return progress


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(figures.SCALE_PROFILES), default="quick",
                        help="sweep scale: 'quick' (seconds) or 'paper' (full Table 1 scale)")
    parser.add_argument("--seed", type=int, default=2007, help="master random seed")
    parser.add_argument("--output", default=None,
                        help="write the Markdown report to this file (default: stdout)")
    parser.add_argument("--protocol", choices=overlay_names(), default="chord",
                        help="DHT overlay for figures 6-12 and the probe-order "
                             "ablation (the stabilisation ablation is "
                             "Chord-specific; the overlay ablation always "
                             "compares every registered overlay)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes per sweep (default: serial, or "
                             "the REPRO_EXECUTOR_JOBS environment variable); "
                             "results are bit-identical to a serial run")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk run cache: parameter points already "
                             "executed under DIR are skipped")
    parser.add_argument("--no-cache", action="store_true",
                        help="re-execute every point even when cached "
                             "(refreshing the cache entries)")
    parser.add_argument("--progress", action="store_true",
                        help="print per-run completions to stderr")
    parser.add_argument("--no-ablations", action="store_true",
                        help="skip the ablation studies")
    parser.add_argument("--charts", action="store_true",
                        help="append an ASCII chart under every figure table")
    arguments = parser.parse_args(argv)

    executor = Executor(arguments.jobs, cache_dir=arguments.cache_dir,
                        use_cache=not arguments.no_cache,
                        progress=_progress_printer() if arguments.progress else None)
    # reprolint: allow[REP001] reason=report-only elapsed metadata; experiment values are seed-determined (tests/experiments/test_reporting.py)
    started = time.time()
    tables = run_all_experiments(arguments.scale, seed=arguments.seed,
                                 protocol=arguments.protocol,
                                 include_ablations=not arguments.no_ablations,
                                 executor=executor)
    # reprolint: allow[REP001] reason=report-only elapsed metadata; experiment values are seed-determined (tests/experiments/test_reporting.py)
    elapsed = time.time() - started
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            write_experiments_report(tables, handle, scale=arguments.scale,
                                     elapsed_s=elapsed, charts=arguments.charts)
    else:
        write_experiments_report(tables, sys.stdout, scale=arguments.scale,
                                 elapsed_s=elapsed, charts=arguments.charts)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
