"""Tabular reporting of experiment results.

Every figure/table of the paper is regenerated as an :class:`ExperimentTable`:
an x-axis (number of peers, number of replicas, failure rate, ...), one column
per algorithm/series, and one row per x value.  Tables render to plain text
(for benchmark output) and Markdown (for EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["ExperimentTable"]


@dataclass
class ExperimentTable:
    """A reproduced table or figure, as rows of series values."""

    experiment_id: str
    title: str
    x_label: str
    series: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    # ------------------------------------------------------------------ build
    def add_row(self, x: Any, values: Dict[str, Any]) -> None:
        """Append one row; ``values`` maps series name to measurement."""
        unknown = set(values) - set(self.series)
        if unknown:
            raise ValueError(f"unknown series {sorted(unknown)}; expected {self.series}")
        row: Dict[str, Any] = {"x": x}
        row.update(values)
        self.rows.append(row)

    # ----------------------------------------------------------------- queries
    def x_values(self) -> List[Any]:
        """The x-axis values, in row order."""
        return [row["x"] for row in self.rows]

    def series_values(self, name: str) -> List[Any]:
        """The values of one series, in row order (``None`` when missing)."""
        if name not in self.series:
            raise KeyError(f"unknown series {name!r}; expected one of {self.series}")
        return [row.get(name) for row in self.rows]

    def column(self, name: str) -> List[Any]:
        """Alias of :meth:`series_values` (reads better for table-style data)."""
        return self.series_values(name)

    # --------------------------------------------------------------- rendering
    def _format_value(self, value: Any, float_format: str) -> str:
        if isinstance(value, bool) or value is None:
            return str(value)
        if isinstance(value, float):
            return float_format % value
        return str(value)

    def to_markdown(self, float_format: str = "%.2f") -> str:
        """Render as a GitHub-flavoured Markdown table with a title header."""
        header = [self.x_label] + list(self.series)
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join(["---"] * len(header)) + "|")
        for row in self.rows:
            cells = [self._format_value(row["x"], float_format)]
            cells += [self._format_value(row.get(name), float_format) for name in self.series]
            lines.append("| " + " | ".join(cells) + " |")
        if self.notes:
            lines += ["", self.notes]
        return "\n".join(lines)

    def to_text(self, float_format: str = "%.2f") -> str:
        """Render as an aligned plain-text table (used by benchmark output)."""
        header = [self.x_label] + list(self.series)
        body: List[List[str]] = []
        for row in self.rows:
            cells = [self._format_value(row["x"], float_format)]
            cells += [self._format_value(row.get(name), float_format) for name in self.series]
            body.append(cells)
        widths = [max(len(header[index]), *(len(line[index]) for line in body)) if body
                  else len(header[index])
                  for index in range(len(header))]
        lines = [f"{self.experiment_id}: {self.title}"]
        lines.append("  ".join(name.ljust(width) for name, width in zip(header, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for cells in body:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(cells, widths)))
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)
