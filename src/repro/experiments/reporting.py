"""Tabular reporting of experiment results.

Every figure/table of the paper is regenerated as an :class:`ExperimentTable`:
an x-axis (number of peers, number of replicas, failure rate, ...), one column
per algorithm/series, and one row per x value.  Tables render to plain text
(for benchmark output) and Markdown (for EXPERIMENTS.md).

:func:`comparison_tables` pivots scenario×overlay×service run summaries into
one :class:`ExperimentTable` per metric — the output format of
``repro scenario compare``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = ["ExperimentTable", "comparison_tables"]

#: Default metrics of :func:`comparison_tables`: summary key -> table title.
COMPARISON_METRICS: Tuple[Tuple[str, str], ...] = (
    ("currency_rate", "certified-current retrieval rate"),
    ("avg_response_time_s", "average response time (s)"),
    ("avg_messages", "average messages per query"),
)


@dataclass
class ExperimentTable:
    """A reproduced table or figure, as rows of series values."""

    experiment_id: str
    title: str
    x_label: str
    series: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    # ------------------------------------------------------------------ build
    def add_row(self, x: Any, values: Dict[str, Any]) -> None:
        """Append one row; ``values`` maps series name to measurement."""
        unknown = set(values) - set(self.series)
        if unknown:
            raise ValueError(f"unknown series {sorted(unknown)}; expected {self.series}")
        row: Dict[str, Any] = {"x": x}
        row.update(values)
        self.rows.append(row)

    # ----------------------------------------------------------------- queries
    def x_values(self) -> List[Any]:
        """The x-axis values, in row order."""
        return [row["x"] for row in self.rows]

    def series_values(self, name: str) -> List[Any]:
        """The values of one series, in row order (``None`` when missing)."""
        if name not in self.series:
            raise KeyError(f"unknown series {name!r}; expected one of {self.series}")
        return [row.get(name) for row in self.rows]

    def column(self, name: str) -> List[Any]:
        """Alias of :meth:`series_values` (reads better for table-style data)."""
        return self.series_values(name)

    # --------------------------------------------------------------- rendering
    def _format_value(self, value: Any, float_format: str) -> str:
        if isinstance(value, bool) or value is None:
            return str(value)
        if isinstance(value, float):
            return float_format % value
        return str(value)

    def to_markdown(self, float_format: str = "%.2f") -> str:
        """Render as a GitHub-flavoured Markdown table with a title header."""
        header = [self.x_label] + list(self.series)
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join(["---"] * len(header)) + "|")
        for row in self.rows:
            cells = [self._format_value(row["x"], float_format)]
            cells += [self._format_value(row.get(name), float_format) for name in self.series]
            lines.append("| " + " | ".join(cells) + " |")
        if self.notes:
            lines += ["", self.notes]
        return "\n".join(lines)

    def to_text(self, float_format: str = "%.2f") -> str:
        """Render as an aligned plain-text table (used by benchmark output)."""
        header = [self.x_label] + list(self.series)
        body: List[List[str]] = []
        for row in self.rows:
            cells = [self._format_value(row["x"], float_format)]
            cells += [self._format_value(row.get(name), float_format) for name in self.series]
            body.append(cells)
        widths = [max(len(header[index]), *(len(line[index]) for line in body)) if body
                  else len(header[index])
                  for index in range(len(header))]
        lines = [f"{self.experiment_id}: {self.title}"]
        lines.append("  ".join(name.ljust(width) for name, width in zip(header, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for cells in body:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(cells, widths)))
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)


def comparison_tables(
        records: Iterable[Tuple[str, str, Mapping[str, Any]]], *,
        metrics: Sequence[Tuple[str, str]] = COMPARISON_METRICS,
        experiment_prefix: str = "scenario-compare") -> List[ExperimentTable]:
    """Pivot ``(scenario, series, summary)`` records into per-metric tables.

    Each record is one run: the scenario name becomes the row (x value), the
    series label (e.g. ``"ums@chord"``) the column, and ``summary`` the
    :meth:`repro.simulation.results.RunResult.summary` dict the metric values
    are read from.  One table is produced per ``(summary key, title)`` pair
    in ``metrics``; rows and columns keep first-seen order, and missing cells
    render as ``None``.
    """
    materialised = list(records)
    scenarios: List[str] = []
    series: List[str] = []
    values: Dict[Tuple[str, str], Mapping[str, Any]] = {}
    for scenario, label, summary in materialised:
        if scenario not in scenarios:
            scenarios.append(scenario)
        if label not in series:
            series.append(label)
        values[(scenario, label)] = summary
    tables: List[ExperimentTable] = []
    for metric_key, title in metrics:
        table = ExperimentTable(
            experiment_id=f"{experiment_prefix}-{metric_key.replace('_', '-')}",
            title=title, x_label="scenario", series=list(series))
        for scenario in scenarios:
            row = {label: values[(scenario, label)].get(metric_key)
                   for label in series if (scenario, label) in values}
            table.add_row(scenario, row)
        tables.append(table)
    return tables
