"""Per-figure experiment generators (Section 5 of the paper).

Every public function regenerates one table or figure of the paper's
evaluation as an :class:`~repro.experiments.reporting.ExperimentTable`.  Each
accepts a ``scale`` argument:

* ``"quick"`` (default) — a reduced sweep that preserves the qualitative
  shape (who wins, how curves trend) and completes in seconds; used by the
  test suite and the default benchmark run;
* ``"paper"`` — the full Table 1 scale (up to 10,000 peers, 3 simulated
  hours), matching the parameter ranges of the original figures.

All functions are deterministic for a given ``seed``.  Every sweep runs
through the unified execution layer: the grid is materialised as a
:class:`~repro.execution.RunPlan` and executed by an
:class:`~repro.execution.Executor` — pass ``executor=Executor(jobs=4,
cache_dir=...)`` to any generator to parallelise and cache the runs
(bit-identical to the default serial executor for a fixed seed).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.results import Consistency
from repro.core import analysis
from repro.dht.registry import overlay_names
from repro.execution import Executor, RunPlan
from repro.experiments.reporting import ExperimentTable
from repro.simulation.config import Algorithm, SimulationParameters
from repro.simulation.results import RunResult

__all__ = [
    "SCALE_PROFILES",
    "ablation_consistency",
    "ablation_overlay",
    "ablation_probe_order",
    "ablation_stabilization",
    "expected_retrievals_table",
    "figure6_cluster_scaleup",
    "figure7_simulated_scaleup",
    "figure8_bytes_vs_peers",
    "figure8_messages_vs_peers",
    "figure9_replicas_response_time",
    "figure10_replicas_bytes",
    "figure10_replicas_messages",
    "figure11_failure_rate",
    "figure12_update_frequency",
    "scaleup_results",
    "table1_parameters",
]

#: Sweep ranges for the two scales.  "paper" mirrors the figures' x axes;
#: "quick" keeps the same span with fewer/smaller points.
#:
#: ``departures_per_peer`` keeps the churn *intensity* of Table 1 constant when
#: an experiment scales the population or the duration down: Table 1 runs
#: 1 departure/second across 10,000 peers for ~3 hours, i.e. ~1.08 departures
#: per peer over the experiment.  The network-wide churn rate of a run is then
#: ``departures_per_peer * num_peers / duration`` (exactly 1/s at paper scale).
SCALE_PROFILES: Dict[str, Dict[str, object]] = {
    "tiny": {
        # Minimal sweeps used by the unit tests: every experiment still runs
        # end-to-end, but each sweep has only two points and a short horizon.
        "cluster_peer_counts": (10, 30),
        "peer_counts": (60, 120),
        "replica_counts": (5, 15),
        "failure_rates_percent": (5, 80),
        "update_rates_per_hour": (1.0, 4.0),
        "base_peers": 80,
        "num_keys": 6,
        "duration_s": 400.0,
        "num_queries": 8,
        "departures_per_peer": 1.08,
    },
    "quick": {
        "cluster_peer_counts": (10, 20, 30, 40, 50, 60),
        "peer_counts": (250, 500, 1000, 1500, 2000),
        "replica_counts": (5, 10, 20, 30, 40),
        "failure_rates_percent": (5, 20, 40, 60, 80, 90),
        "update_rates_per_hour": (0.25, 0.5, 1.0, 2.0, 4.0),
        "base_peers": 1000,
        "num_keys": 20,
        "duration_s": 1800.0,
        "num_queries": 30,
        "departures_per_peer": 1.08,
    },
    "paper": {
        "cluster_peer_counts": (10, 20, 30, 40, 50, 60),
        "peer_counts": (2000, 4000, 6000, 8000, 10000),
        "replica_counts": (5, 10, 15, 20, 25, 30, 35, 40),
        "failure_rates_percent": (5, 10, 20, 30, 40, 50, 60, 70, 80, 90),
        "update_rates_per_hour": (0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0),
        "base_peers": 10000,
        "num_keys": 50,
        "duration_s": 3 * 3600.0,
        "num_queries": 30,
        "departures_per_peer": 1.0 * (3 * 3600.0) / 10000.0,
    },
}


def _profile(scale: str) -> Dict[str, object]:
    if scale not in SCALE_PROFILES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {sorted(SCALE_PROFILES)}")
    return SCALE_PROFILES[scale]


def _churn_rate(profile: Dict[str, object], num_peers: int) -> float:
    """Network-wide churn rate preserving Table 1's per-peer churn intensity."""
    return (float(profile["departures_per_peer"]) * num_peers
            / float(profile["duration_s"]))


def _experiment_id(base: str, protocol: str) -> str:
    """Experiment identifier, suffixed when run over a non-default overlay."""
    return base if protocol == "chord" else f"{base}-{protocol}"


def _metric(result: RunResult, metric: str) -> float:
    if metric == "response_time":
        return result.avg_response_time_s
    if metric == "messages":
        return result.avg_messages
    if metric == "bytes":
        return result.avg_bytes
    if metric == "replicas_inspected":
        return result.avg_replicas_inspected
    raise ValueError(f"unknown metric {metric!r}")


def _executor(executor: Optional[Executor]) -> Executor:
    """The given executor, or a fresh default one (serial unless
    ``REPRO_EXECUTOR_JOBS`` says otherwise)."""
    return executor if executor is not None else Executor()


def _run_sweep(x_values: Sequence, parameters_for: Callable[[object, str], SimulationParameters],
               algorithms: Sequence[str], *, executor: Optional[Executor] = None,
               name: str = "sweep") -> Dict[Tuple[object, str], RunResult]:
    """Run every (x, algorithm) combination through the execution layer."""
    plan = RunPlan(name=name)
    order = [(x, algorithm) for x in x_values for algorithm in algorithms]
    for x, algorithm in order:
        plan.add(parameters_for(x, algorithm), label=f"{x}/{algorithm}")
    results = _executor(executor).run(plan)
    return dict(zip(order, results))


def _table_from_results(experiment_id: str, title: str, x_label: str,
                        x_values: Sequence, algorithms: Sequence[str],
                        results: Dict[Tuple[object, str], RunResult],
                        metric: str, notes: str = "") -> ExperimentTable:
    table = ExperimentTable(experiment_id=experiment_id, title=title, x_label=x_label,
                            series=[Algorithm.label(algorithm) for algorithm in algorithms],
                            notes=notes)
    for x in x_values:
        table.add_row(x, {Algorithm.label(algorithm): _metric(results[(x, algorithm)], metric)
                          for algorithm in algorithms})
    return table


# --------------------------------------------------------------------- Table 1
def table1_parameters(scale: str = "paper") -> ExperimentTable:
    """Table 1: the simulation parameters, as configured in this reproduction."""
    profile = _profile(scale)
    parameters = SimulationParameters.table1(
        num_peers=int(profile["base_peers"]), num_keys=int(profile["num_keys"]),
        duration_s=float(profile["duration_s"]))
    table = ExperimentTable(
        experiment_id="table-1", title="Simulation parameters", x_label="parameter",
        series=["value"],
        notes="Latency/bandwidth are normally distributed per Table 1; departures and "
              "updates are Poisson processes.")
    rows = [
        ("bandwidth (kbps, mean)", parameters.bandwidth_mean_bps / 1000.0),
        ("latency (ms, mean)", parameters.latency_mean_s * 1000.0),
        ("number of peers", parameters.num_peers),
        ("|Hr| (replicas per data)", parameters.num_replicas),
        ("peer departure rate (1/s)", parameters.churn_rate_per_s),
        ("updates per data (1/hour)", parameters.update_rate_per_hour),
        ("failure rate (% of departures)", parameters.failure_rate * 100.0),
        ("data items", parameters.num_keys),
        ("queries per experiment", parameters.num_queries),
        ("experiment duration (s)", parameters.duration_s),
    ]
    for name, value in rows:
        table.add_row(name, {"value": value})
    return table


# ------------------------------------------------------- Theorem 1 / cost model
def expected_retrievals_table(pt_values: Sequence[float] = (0.1, 0.2, 0.35, 0.5, 0.7, 0.9, 1.0),
                              num_replicas: int = 10) -> ExperimentTable:
    """Section 3.3: expected number of retrieved replicas vs ``pt`` (Theorem 1).

    Includes the paper's headline data point: with ``pt = 0.35`` the expected
    number of retrieved replicas is below 3.
    """
    table = ExperimentTable(
        experiment_id="theorem-1", title="Expected retrieved replicas vs pt",
        x_label="pt", series=["E[X] (Eq. 1)", "E[probes]", "1/pt bound", "min(1/pt, |Hr|)"],
        notes=f"|Hr| = {num_replicas}. E[X] follows Equation 1; the bound is Theorem 1.")
    for pt in pt_values:
        table.add_row(pt, {
            "E[X] (Eq. 1)": analysis.expected_retrievals(pt, num_replicas),
            "E[probes]": analysis.expected_probes(pt, num_replicas),
            "1/pt bound": analysis.expected_retrievals_upper_bound(pt),
            "min(1/pt, |Hr|)": analysis.retrieval_bound(pt, num_replicas),
        })
    return table


# ------------------------------------------------------------------- Figure 6
def figure6_cluster_scaleup(scale: str = "quick", *, seed: int = 2007,
                            protocol: str = "chord",
                            metric: str = "response_time",
                            executor: Optional[Executor] = None) -> ExperimentTable:
    """Figure 6: response time vs number of peers on the 64-node cluster."""
    profile = _profile(scale)
    peer_counts = list(profile["cluster_peer_counts"])
    algorithms = list(Algorithm.ALL)

    def parameters_for(num_peers: int, algorithm: str) -> SimulationParameters:
        return SimulationParameters.cluster(
            num_peers=num_peers, algorithm=algorithm, seed=seed, protocol=protocol,
            num_queries=int(profile["num_queries"]),
            churn_rate_per_s=_churn_rate(profile, num_peers))

    results = _run_sweep(peer_counts, parameters_for, algorithms,
                         executor=executor,
                         name=_experiment_id("figure-6", protocol))
    return _table_from_results(
        _experiment_id("figure-6", protocol),
        f"Response time vs number of peers (cluster, {protocol})", "peers",
        peer_counts, algorithms, results, metric,
        notes="Cluster cost model (LAN); all three algorithms grow logarithmically, "
              "UMS-Direct < UMS-Indirect < BRK.")


# --------------------------------------------------------------- Figures 7 & 8
def scaleup_results(scale: str = "quick", *, seed: int = 2007, protocol: str = "chord",
                    executor: Optional[Executor] = None
                    ) -> Tuple[List[int], List[str], Dict[Tuple[object, str], RunResult]]:
    """The shared sweep behind Figures 7 and 8 (response time & messages vs peers).

    ``protocol`` selects the overlay (any name registered in
    :mod:`repro.dht.registry`), so the same cost curves can be produced for
    Chord, CAN, Kademlia or a runtime-registered backend.
    """
    profile = _profile(scale)
    peer_counts = list(profile["peer_counts"])
    algorithms = list(Algorithm.ALL)

    def parameters_for(num_peers: int, algorithm: str) -> SimulationParameters:
        return SimulationParameters.table1(
            num_peers=num_peers, algorithm=algorithm, seed=seed, protocol=protocol,
            num_keys=int(profile["num_keys"]), duration_s=float(profile["duration_s"]),
            num_queries=int(profile["num_queries"]),
            churn_rate_per_s=_churn_rate(profile, num_peers))

    return peer_counts, algorithms, _run_sweep(
        peer_counts, parameters_for, algorithms, executor=executor,
        name=_experiment_id("figure-7-8", protocol))


def figure7_simulated_scaleup(scale: str = "quick", *, seed: int = 2007,
                              protocol: str = "chord", precomputed=None,
                              executor: Optional[Executor] = None) -> ExperimentTable:
    """Figure 7: response time vs number of peers (wide-area simulation)."""
    peer_counts, algorithms, results = (precomputed or
                                        scaleup_results(scale, seed=seed,
                                                        protocol=protocol,
                                                        executor=executor))
    return _table_from_results(
        _experiment_id("figure-7", protocol),
        f"Response time vs number of peers (simulation, {protocol})", "peers",
        peer_counts, algorithms, results, "response_time",
        notes="Table 1 parameters; response time grows logarithmically with peers.")


def figure8_messages_vs_peers(scale: str = "quick", *, seed: int = 2007,
                              protocol: str = "chord", precomputed=None,
                              executor: Optional[Executor] = None) -> ExperimentTable:
    """Figure 8: communication cost (total messages) vs number of peers."""
    peer_counts, algorithms, results = (precomputed or
                                        scaleup_results(scale, seed=seed,
                                                        protocol=protocol,
                                                        executor=executor))
    return _table_from_results(
        _experiment_id("figure-8", protocol),
        f"Communication cost vs number of peers ({protocol})", "peers",
        peer_counts, algorithms, results, "messages",
        notes="BRK retrieves every replica (≈|Hr| lookups); UMS needs the KTS lookup "
              "plus a couple of probes.")


def figure8_bytes_vs_peers(scale: str = "quick", *, seed: int = 2007,
                           protocol: str = "chord", precomputed=None,
                           executor: Optional[Executor] = None) -> ExperimentTable:
    """Figure 8 companion: communication cost in *bytes* per query vs peers.

    Same sweep as :func:`figure8_messages_vs_peers`, priced through the cost
    model's ``traffic_bytes`` (payload sizes plus per-message framing
    overhead) — the byte-denominated curve of the wire-efficiency layer.
    """
    peer_counts, algorithms, results = (precomputed or
                                        scaleup_results(scale, seed=seed,
                                                        protocol=protocol,
                                                        executor=executor))
    return _table_from_results(
        _experiment_id("figure-8-bytes", protocol),
        f"Communication cost (bytes) vs number of peers ({protocol})", "peers",
        peer_counts, algorithms, results, "bytes",
        notes="Byte-denominated twin of Figure 8: data-carrying replies dominate, "
              "so BRK's full-replica sweep costs the most bytes too.")


# -------------------------------------------------------------- Figures 9 & 10
def replica_sweep_results(scale: str = "quick", *, seed: int = 2007,
                          protocol: str = "chord",
                          executor: Optional[Executor] = None
                          ) -> Tuple[List[int], List[str], Dict[Tuple[object, str], RunResult]]:
    """The shared sweep behind Figures 9 and 10 (|Hr| sweep at the base population)."""
    profile = _profile(scale)
    replica_counts = list(profile["replica_counts"])
    algorithms = list(Algorithm.ALL)

    def parameters_for(num_replicas: int, algorithm: str) -> SimulationParameters:
        return SimulationParameters.table1(
            num_peers=int(profile["base_peers"]), num_replicas=num_replicas,
            algorithm=algorithm, seed=seed, protocol=protocol,
            num_keys=int(profile["num_keys"]),
            duration_s=float(profile["duration_s"]),
            num_queries=int(profile["num_queries"]),
            churn_rate_per_s=_churn_rate(profile, int(profile["base_peers"])))

    return replica_counts, algorithms, _run_sweep(
        replica_counts, parameters_for, algorithms, executor=executor,
        name=_experiment_id("figure-9-10", protocol))


def figure9_replicas_response_time(scale: str = "quick", *, seed: int = 2007,
                                   protocol: str = "chord", precomputed=None,
                                   executor: Optional[Executor] = None) -> ExperimentTable:
    """Figure 9: response time vs number of replicas (|Hr| from 5 to 40)."""
    replica_counts, algorithms, results = (precomputed or
                                           replica_sweep_results(scale, seed=seed,
                                                                 protocol=protocol,
                                                                 executor=executor))
    return _table_from_results(
        _experiment_id("figure-9", protocol),
        f"Response time vs number of replicas ({protocol})", "replicas",
        replica_counts, algorithms, results, "response_time",
        notes="The replica count strongly affects BRK, slightly affects UMS-Indirect "
              "and has no systematic effect on UMS-Direct.")


def figure10_replicas_messages(scale: str = "quick", *, seed: int = 2007,
                               protocol: str = "chord", precomputed=None,
                               executor: Optional[Executor] = None) -> ExperimentTable:
    """Figure 10: communication cost vs number of replicas."""
    replica_counts, algorithms, results = (precomputed or
                                           replica_sweep_results(scale, seed=seed,
                                                                 protocol=protocol,
                                                                 executor=executor))
    return _table_from_results(
        _experiment_id("figure-10", protocol),
        f"Communication cost vs number of replicas ({protocol})", "replicas",
        replica_counts, algorithms, results, "messages",
        notes="BRK's message count grows linearly with |Hr|.")


def figure10_replicas_bytes(scale: str = "quick", *, seed: int = 2007,
                            protocol: str = "chord", precomputed=None,
                            executor: Optional[Executor] = None) -> ExperimentTable:
    """Figure 10 companion: communication cost in *bytes* vs number of replicas."""
    replica_counts, algorithms, results = (precomputed or
                                           replica_sweep_results(scale, seed=seed,
                                                                 protocol=protocol,
                                                                 executor=executor))
    return _table_from_results(
        _experiment_id("figure-10-bytes", protocol),
        f"Communication cost (bytes) vs number of replicas ({protocol})",
        "replicas", replica_counts, algorithms, results, "bytes",
        notes="Byte-denominated twin of Figure 10: BRK ships a data-sized reply "
              "per replica, so its byte cost grows linearly with |Hr| as well.")


# ------------------------------------------------------------------- Figure 11
def figure11_failure_rate(scale: str = "quick", *, seed: int = 2007,
                          protocol: str = "chord",
                          metric: str = "response_time",
                          executor: Optional[Executor] = None) -> ExperimentTable:
    """Figure 11: response time vs failure rate (percentage of departures that fail)."""
    profile = _profile(scale)
    failure_rates = list(profile["failure_rates_percent"])
    algorithms = list(Algorithm.ALL)

    def parameters_for(failure_percent: float, algorithm: str) -> SimulationParameters:
        return SimulationParameters.table1(
            num_peers=int(profile["base_peers"]), failure_rate=failure_percent / 100.0,
            algorithm=algorithm, seed=seed, protocol=protocol,
            num_keys=int(profile["num_keys"]),
            duration_s=float(profile["duration_s"]),
            num_queries=int(profile["num_queries"]),
            churn_rate_per_s=_churn_rate(profile, int(profile["base_peers"])))

    results = _run_sweep(failure_rates, parameters_for, algorithms,
                         executor=executor,
                         name=_experiment_id("figure-11", protocol))
    return _table_from_results(
        _experiment_id("figure-11", protocol),
        f"Response time vs failure rate ({protocol})", "failure rate (%)",
        failure_rates, algorithms, results, metric,
        notes="Failures leave stale routing state and lost counters; at high failure "
              "rates UMS-Direct converges towards UMS-Indirect.")


# ------------------------------------------------------------------- Figure 12
def figure12_update_frequency(scale: str = "quick", *, seed: int = 2007,
                              protocol: str = "chord",
                              metric: str = "response_time",
                              executor: Optional[Executor] = None) -> ExperimentTable:
    """Figure 12: response time vs update frequency (updates per hour, UMS only)."""
    profile = _profile(scale)
    update_rates = list(profile["update_rates_per_hour"])
    algorithms = [Algorithm.UMS_INDIRECT, Algorithm.UMS_DIRECT]

    def parameters_for(rate_per_hour: float, algorithm: str) -> SimulationParameters:
        return SimulationParameters.table1(
            num_peers=int(profile["base_peers"]), update_rate_per_hour=rate_per_hour,
            algorithm=algorithm, seed=seed, protocol=protocol,
            num_keys=int(profile["num_keys"]),
            duration_s=float(profile["duration_s"]),
            num_queries=int(profile["num_queries"]),
            churn_rate_per_s=_churn_rate(profile, int(profile["base_peers"])))

    results = _run_sweep(update_rates, parameters_for, algorithms,
                         executor=executor,
                         name=_experiment_id("figure-12", protocol))
    return _table_from_results(
        _experiment_id("figure-12", protocol),
        f"Response time vs frequency of updates ({protocol})", "updates/hour",
        update_rates, algorithms, results, metric,
        notes="More frequent updates raise the probability of currency and availability, "
              "so fewer replicas need to be retrieved.")


# ------------------------------------------------------------------- Ablations
def ablation_probe_order(scale: str = "quick", *, seed: int = 2007,
                         protocol: str = "chord",
                         executor: Optional[Executor] = None) -> ExperimentTable:
    """Ablation: random vs fixed replica probe order in UMS.retrieve."""
    profile = _profile(scale)
    orders = ["random", "fixed"]
    table = ExperimentTable(
        experiment_id=_experiment_id("ablation-probe-order", protocol),
        title=f"UMS probe order ablation ({protocol})",
        x_label="probe order", series=["response time (s)", "messages", "replicas inspected"],
        notes="Random order matches the geometric analysis of Section 3.3.")
    plan = RunPlan(name=table.experiment_id)
    for order in orders:
        plan.add(SimulationParameters.table1(
            num_peers=int(profile["base_peers"]), algorithm=Algorithm.UMS_DIRECT,
            probe_order=order, seed=seed, protocol=protocol,
            num_keys=int(profile["num_keys"]),
            duration_s=float(profile["duration_s"]), num_queries=int(profile["num_queries"]),
            churn_rate_per_s=_churn_rate(profile, int(profile["base_peers"]))),
            label=order)
    for order, result in zip(orders, _executor(executor).run(plan)):
        table.add_row(order, {"response time (s)": result.avg_response_time_s,
                              "messages": result.avg_messages,
                              "replicas inspected": result.avg_replicas_inspected})
    return table


def ablation_stabilization(scale: str = "quick", *, seed: int = 2007,
                           intervals: Sequence[float] = (0.0, 30.0, 120.0, 600.0),
                           executor: Optional[Executor] = None
                           ) -> ExperimentTable:
    """Ablation: Chord finger-table stabilisation interval under the default churn."""
    profile = _profile(scale)
    table = ExperimentTable(
        experiment_id="ablation-stabilization", title="Stabilisation interval ablation",
        x_label="stabilisation interval (s)", series=["response time (s)", "messages"],
        notes="Longer intervals leave more stale fingers after failures, inflating "
              "routing retries and timeouts (the mechanism behind Figure 11).")
    plan = RunPlan(name=table.experiment_id)
    for interval in intervals:
        plan.add(SimulationParameters.table1(
            num_peers=int(profile["base_peers"]), algorithm=Algorithm.UMS_DIRECT,
            stabilization_interval_s=interval, failure_rate=0.5, seed=seed,
            num_keys=int(profile["num_keys"]), duration_s=float(profile["duration_s"]),
            num_queries=int(profile["num_queries"]),
            churn_rate_per_s=_churn_rate(profile, int(profile["base_peers"]))),
            label=str(interval))
    for interval, result in zip(intervals, _executor(executor).run(plan)):
        table.add_row(interval, {"response time (s)": result.avg_response_time_s,
                                 "messages": result.avg_messages})
    return table


def ablation_consistency(scale: str = "quick", *, seed: int = 2007,
                         protocol: str = "chord",
                         executor: Optional[Executor] = None) -> ExperimentTable:
    """Ablation: the per-retrieve consistency levels of the client API.

    Runs the identical UMS-Direct workload with the queries issued at each
    :class:`~repro.api.results.Consistency` level.  ``current`` pays the KTS
    lookup and probes until the certificate; ``any`` reads the first replica
    found (cheapest, never certified); ``best-effort`` bounds the probes.
    """
    profile = _profile(scale)
    table = ExperimentTable(
        experiment_id=_experiment_id("ablation-consistency", protocol),
        title=f"Retrieve consistency-level ablation ({protocol})",
        x_label="consistency",
        series=["response time (s)", "messages", "replicas inspected",
                "certified current"],
        notes="UMS-Direct; 'current' is the paper's Figure 2 retrieval, 'any' a "
              "first-replica read without the KTS lookup, 'best-effort' a "
              "bounded-probe read returning the freshest replica found.")
    plan = RunPlan(name=table.experiment_id)
    for level in Consistency.ALL:
        plan.add(SimulationParameters.table1(
            num_peers=int(profile["base_peers"]), algorithm=Algorithm.UMS_DIRECT,
            consistency=level, seed=seed, protocol=protocol,
            num_keys=int(profile["num_keys"]),
            duration_s=float(profile["duration_s"]),
            num_queries=int(profile["num_queries"]),
            churn_rate_per_s=_churn_rate(profile, int(profile["base_peers"]))),
            label=level)
    for level, result in zip(Consistency.ALL, _executor(executor).run(plan)):
        table.add_row(level, {"response time (s)": result.avg_response_time_s,
                              "messages": result.avg_messages,
                              "replicas inspected": result.avg_replicas_inspected,
                              "certified current": result.currency_rate})
    return table


def ablation_overlay(scale: str = "quick", *, seed: int = 2007,
                     overlays: Optional[Sequence[str]] = None,
                     executor: Optional[Executor] = None) -> ExperimentTable:
    """Ablation: every registered overlay under an identical UMS workload.

    By default the comparison covers every overlay in
    :mod:`repro.dht.registry` (Chord, CAN, Kademlia and anything registered at
    runtime); pass ``overlays`` to restrict or reorder the rows.
    """
    profile = _profile(scale)
    if overlays is None:
        overlays = overlay_names()
    # CAN routing is O(n^(1/d)) and the responsibility search is linear in the
    # number of zones, so the overlay comparison runs on a smaller population.
    num_peers = min(200, int(profile["base_peers"]))
    table = ExperimentTable(
        experiment_id="ablation-overlay",
        title=f"Overlay ablation ({' vs '.join(overlays)})",
        x_label="overlay", series=["response time (s)", "messages", "currency rate"],
        notes=f"UMS-Direct over {num_peers} peers; the routing cost differs "
              "(O(log n) for Chord/Kademlia, O(n^1/d) for CAN) but the currency "
              "guarantees are identical on every overlay.")
    plan = RunPlan(name=table.experiment_id)
    for protocol in overlays:
        plan.add(SimulationParameters.quick(
            num_peers=num_peers, algorithm=Algorithm.UMS_DIRECT, protocol=protocol,
            seed=seed, num_queries=int(profile["num_queries"])), label=protocol)
    for protocol, result in zip(overlays, _executor(executor).run(plan)):
        table.add_row(protocol, {"response time (s)": result.avg_response_time_s,
                                 "messages": result.avg_messages,
                                 "currency rate": result.currency_rate})
    return table
