"""ASCII rendering of experiment tables.

The original figures are line charts; for a dependency-free reproduction we
render each :class:`~repro.experiments.reporting.ExperimentTable` as an ASCII
chart (one mark per series) so trends are visible directly in terminal output
and in the benchmark logs.  This is presentation-only — the underlying data is
the table itself.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.reporting import ExperimentTable

__all__ = ["ascii_chart", "render_all"]

#: Fallback marks used when a series' initial letter is already taken.
_FALLBACK_MARKS = "0123456789*#@"


def _assign_marks(series: Sequence[str]) -> Dict[str, str]:
    """One distinct single-character mark per series (initial letter preferred)."""
    marks: Dict[str, str] = {}
    used: set = set()
    fallback = iter(_FALLBACK_MARKS)
    for name in series:
        initial = next((char.upper() for char in name if char.isalnum()), None)
        if initial is None or initial in used:
            initial = next(fallback)
        marks[name] = initial
        used.add(initial)
    return marks


def _numeric_rows(table: ExperimentTable) -> List[Dict[str, float]]:
    rows = []
    for row in table.rows:
        values = {}
        for name in table.series:
            value = row.get(name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                values[name] = float(value)
        if values:
            rows.append({"x": row["x"], **values})
    return rows


def ascii_chart(table: ExperimentTable, *, width: int = 60, height: int = 16) -> str:
    """Render the table as an ASCII chart (series value vs row index).

    Each series gets a single-character mark; the y-axis is linear from zero to
    the maximum observed value.  Returns a multi-line string; tables without
    numeric series render as a short notice.
    """
    if width < 20 or height < 5:
        raise ValueError("chart dimensions are too small to be readable")
    rows = _numeric_rows(table)
    if not rows or not table.series:
        return f"{table.experiment_id}: no numeric series to plot"
    maximum = max(value for row in rows for key, value in row.items() if key != "x")
    if maximum <= 0:
        maximum = 1.0
    columns = len(rows)
    # Horizontal position of each row, spread across the width.
    positions = [int(round(index * (width - 1) / max(1, columns - 1))) for index in range(columns)]

    grid = [[" "] * width for _ in range(height)]
    marks = _assign_marks(table.series)
    for name in table.series:
        mark = marks[name]
        for row, column in zip(rows, positions):
            if name not in row:
                continue
            level = int(round((row[name] / maximum) * (height - 1)))
            grid[height - 1 - level][column] = mark

    y_label_width = len(f"{maximum:.1f}")
    lines = [f"{table.experiment_id}: {table.title}"]
    for line_index, line in enumerate(grid):
        if line_index == 0:
            label = f"{maximum:.1f}".rjust(y_label_width)
        elif line_index == len(grid) - 1:
            label = "0".rjust(y_label_width)
        else:
            label = " " * y_label_width
        lines.append(f"{label} |{''.join(line)}")
    lines.append(" " * y_label_width + " +" + "-" * width)
    x_values = [str(row["x"]) for row in rows]
    lines.append(" " * (y_label_width + 2) + f"{table.x_label}: {x_values[0]} .. {x_values[-1]}")
    legend = "  ".join(f"{marks[name]}={name}" for name in table.series)
    lines.append(" " * (y_label_width + 2) + legend)
    return "\n".join(lines)


def render_all(tables: Sequence[ExperimentTable], *, width: int = 60,
               height: int = 16) -> str:
    """Render several tables, separated by blank lines."""
    return "\n\n".join(ascii_chart(table, width=width, height=height) for table in tables)
