"""Experiment generators reproducing every table and figure of the paper.

Each function returns an :class:`~repro.experiments.reporting.ExperimentTable`
whose rows mirror the corresponding figure's series.  ``scale="quick"``
produces reduced sweeps for fast runs; ``scale="paper"`` runs the full
Table 1 configuration (up to 10,000 peers, 3 simulated hours).

Run everything from the command line with::

    python -m repro.experiments.runner --scale quick
"""

from repro.experiments.figures import (
    SCALE_PROFILES,
    ablation_overlay,
    ablation_probe_order,
    ablation_stabilization,
    expected_retrievals_table,
    figure6_cluster_scaleup,
    figure7_simulated_scaleup,
    figure8_bytes_vs_peers,
    figure8_messages_vs_peers,
    figure9_replicas_response_time,
    figure10_replicas_bytes,
    figure10_replicas_messages,
    figure11_failure_rate,
    figure12_update_frequency,
    replica_sweep_results,
    scaleup_results,
    table1_parameters,
)
from repro.experiments.plots import ascii_chart, render_all
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import run_all_experiments, write_experiments_report

__all__ = [
    "ExperimentTable",
    "ascii_chart",
    "render_all",
    "SCALE_PROFILES",
    "ablation_overlay",
    "ablation_probe_order",
    "ablation_stabilization",
    "expected_retrievals_table",
    "figure6_cluster_scaleup",
    "figure7_simulated_scaleup",
    "figure8_bytes_vs_peers",
    "figure8_messages_vs_peers",
    "figure9_replicas_response_time",
    "figure10_replicas_bytes",
    "figure10_replicas_messages",
    "figure11_failure_rate",
    "figure12_update_frequency",
    "replica_sweep_results",
    "run_all_experiments",
    "scaleup_results",
    "table1_parameters",
    "write_experiments_report",
]
