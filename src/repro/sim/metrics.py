"""Deprecated alias of :mod:`repro.simulation.metrics`."""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.sim.metrics is deprecated; import repro.simulation.metrics",
    DeprecationWarning, stacklevel=2)

from repro.simulation.metrics import *  # noqa: E402,F401,F403
from repro.simulation.metrics import __all__  # noqa: E402,F401
