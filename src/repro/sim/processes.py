"""Deprecated alias of :mod:`repro.simulation.processes`."""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.sim.processes is deprecated; import repro.simulation.processes",
    DeprecationWarning, stacklevel=2)

from repro.simulation.processes import *  # noqa: E402,F401,F403
from repro.simulation.processes import __all__  # noqa: E402,F401
