"""Network cost model: from message traces to response times.

Table 1 of the paper defines the simulated network: per-message latency drawn
from a normal distribution (mean 200 ms, variance 100) and bandwidth drawn
from a normal distribution (mean 56 kbps, variance 32).  The response time of
an operation is the accumulation of its messages' latency plus transfer
delays; messages that hit a failed peer additionally wait for a timeout before
the sender retries.

Two presets mirror the paper's two testbeds:

* :meth:`NetworkCostModel.wide_area` — Table 1 (the SimJava simulation);
* :meth:`NetworkCostModel.cluster` — the 64-node, 1 Gbps cluster of Section
  5.2, modelled as a small per-message processing latency and LAN bandwidth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.dht.messages import Message, OperationTrace

__all__ = ["NetworkCostModel"]


@dataclass
class NetworkCostModel:
    """Converts message traces into durations.

    Attributes
    ----------
    latency_mean_s / latency_std_s:
        Per-message network latency (seconds).  Table 1: mean 200 ms,
        variance 100 (ms²) → standard deviation 10 ms.
    bandwidth_mean_bps / bandwidth_std_bps:
        Link bandwidth in bits/second.  Table 1: mean 56 kbps, variance 32
        (kbps²) → standard deviation ≈ 5.66 kbps.
    timeout_s:
        Extra delay paid when a message is sent to a failed peer before the
        sender gives up and retries.
    rng:
        Random source; a model built with a seed is fully reproducible.
    """

    latency_mean_s: float = 0.2
    latency_std_s: float = 0.01
    bandwidth_mean_bps: float = 56_000.0
    bandwidth_std_bps: float = 5_660.0
    timeout_s: float = 2.0
    rng: Optional[random.Random] = None

    def __post_init__(self) -> None:
        if self.latency_mean_s < 0 or self.bandwidth_mean_bps <= 0:
            raise ValueError("latency must be >= 0 and bandwidth must be > 0")
        if self.rng is None:
            self.rng = random.Random()

    # --------------------------------------------------------------- presets
    @classmethod
    def wide_area(cls, seed: Optional[int] = None) -> "NetworkCostModel":
        """The Table 1 wide-area network (200 ms latency, 56 kbps)."""
        return cls(rng=random.Random(seed))

    @classmethod
    def cluster(cls, seed: Optional[int] = None) -> "NetworkCostModel":
        """The 64-node cluster of Section 5.2.

        The cluster interconnect is 1 Gbps with sub-millisecond wire latency;
        the dominant per-message cost there is protocol/processing overhead,
        which we model as a 50 ms mean per-message latency.  This calibration
        puts the absolute response times in the range reported by Figure 6
        (≈0.3–2.5 s for 10–64 peers).
        """
        return cls(latency_mean_s=0.05, latency_std_s=0.005,
                   bandwidth_mean_bps=1_000_000_000.0, bandwidth_std_bps=0.0,
                   timeout_s=0.5, rng=random.Random(seed))

    # ---------------------------------------------------------------- sampling
    def sample_latency(self) -> float:
        """One per-message latency sample (truncated at a small positive floor)."""
        return max(1e-4, self.rng.gauss(self.latency_mean_s, self.latency_std_s))

    def sample_bandwidth(self) -> float:
        """One bandwidth sample in bits/second (truncated at 1 kbps)."""
        if self.bandwidth_std_bps <= 0:
            return self.bandwidth_mean_bps
        return max(1_000.0, self.rng.gauss(self.bandwidth_mean_bps, self.bandwidth_std_bps))

    # ---------------------------------------------------------------- durations
    def message_delay(self, message: Message) -> float:
        """Latency + transfer time (+ timeout) for a single message."""
        delay = self.sample_latency()
        delay += (message.size_bytes * 8) / self.sample_bandwidth()
        if message.timed_out:
            delay += self.timeout_s
        return delay

    def duration(self, trace: OperationTrace) -> float:
        """Total response time of an operation whose messages are sent sequentially.

        The services of the paper are sequential by construction: UMS probes
        replicas one at a time (stopping at the first current one) and KTS
        performs a lookup followed by a request/reply exchange, so summing the
        per-message delays reproduces the SimJava accounting.
        """
        return sum(self.message_delay(message) for message in trace)

    def expected_message_delay(self, size_bytes: int = 128) -> float:
        """Deterministic expectation of a message delay (no sampling); handy in tests."""
        return self.latency_mean_s + (size_bytes * 8) / self.bandwidth_mean_bps
