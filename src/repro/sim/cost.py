"""Deprecated alias of :mod:`repro.simulation.cost`."""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.sim.cost is deprecated; import repro.simulation.cost",
    DeprecationWarning, stacklevel=2)

from repro.simulation.cost import *  # noqa: E402,F401,F403
from repro.simulation.cost import __all__  # noqa: E402,F401
