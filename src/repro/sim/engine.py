"""Deprecated alias of :mod:`repro.simulation.engine`."""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.sim.engine is deprecated; import repro.simulation.engine",
    DeprecationWarning, stacklevel=2)

from repro.simulation.engine import *  # noqa: E402,F401,F403
from repro.simulation.engine import __all__  # noqa: E402,F401
