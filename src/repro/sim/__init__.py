"""Discrete-event simulation substrate (the SimJava substitute).

The paper evaluates scalability with SimJava, an entity-based discrete-event
simulator.  This sub-package provides the equivalent building blocks in pure
Python:

* :class:`repro.sim.engine.Simulator` — event heap + generator-based processes
  (``yield env.timeout(dt)``) with the usual run-until semantics;
* :mod:`repro.sim.processes` — Poisson arrival processes used for churn and
  update workloads (Table 1);
* :class:`repro.sim.cost.NetworkCostModel` — converts a message trace into a
  response time using the latency/bandwidth distributions of Table 1 (plus a
  cluster preset for the 64-node experiments);
* :mod:`repro.sim.metrics` — tallies and counters for collecting results.
"""

from repro.sim.cost import NetworkCostModel
from repro.sim.engine import Event, Process, SimulationError, Simulator, Timeout
from repro.sim.metrics import Counter, Tally, TimeSeries
from repro.sim.processes import PoissonProcess, poisson_arrival_times

__all__ = [
    "Counter",
    "Event",
    "NetworkCostModel",
    "PoissonProcess",
    "Process",
    "SimulationError",
    "Simulator",
    "Tally",
    "TimeSeries",
    "Timeout",
    "poisson_arrival_times",
]
