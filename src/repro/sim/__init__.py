"""Deprecated alias of the simulation substrate (now in :mod:`repro.simulation`).

The ``repro.sim`` package was folded into :mod:`repro.simulation` so the
stack reads engine → workload/scenarios → harness → execution in a single
package.  Importing this package (or any of its submodules) re-exports the
same objects from their new homes and emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.sim is deprecated; the simulation substrate moved to "
    "repro.simulation (repro.simulation.engine / .cost / .metrics / "
    ".processes)",
    DeprecationWarning, stacklevel=2)

from repro.simulation.cost import NetworkCostModel
from repro.simulation.engine import Event, Process, SimulationError, Simulator, Timeout
from repro.simulation.metrics import Counter, Tally, TimeSeries
from repro.simulation.processes import PoissonProcess, poisson_arrival_times

__all__ = [
    "Counter",
    "Event",
    "NetworkCostModel",
    "PoissonProcess",
    "Process",
    "SimulationError",
    "Simulator",
    "Tally",
    "TimeSeries",
    "Timeout",
    "poisson_arrival_times",
]
