"""Hash functions used by the replicated DHT.

The paper replicates each pair ``(k, data)`` under a set ``Hr`` of *pairwise
independent* hash functions and uses one extra hash function ``h_ts`` to choose
the peer responsible for timestamping a key (Section 3.1 and 4.1).  The paper
points to Luby's construction of pairwise-independent families; we implement
the classical Carter–Wegman family

    h_{a,b}(x) = ((a * x + b) mod p) mod 2^bits

over a Mersenne prime ``p`` larger than the key digest space.  Keys of any
hashable Python type are first mapped to an integer digest with SHA-1 (the
digest plays the role of ``x``).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Optional, Sequence

__all__ = [
    "DIGEST_BITS",
    "HashFamily",
    "PairwiseIndependentHash",
    "key_digest",
]

#: Number of bits of the SHA-1 digest used as the integer representation of keys.
DIGEST_BITS = 160

#: Mersenne prime 2^521 - 1, comfortably larger than the 160-bit digest space so
#: the Carter-Wegman construction is exactly pairwise independent over digests.
_PRIME = (1 << 521) - 1


def key_digest(key: Any) -> int:
    """Map an arbitrary key to a deterministic ``DIGEST_BITS``-bit integer.

    The mapping is stable across processes and Python versions (it does not use
    the built-in ``hash``), which makes stored data and test expectations
    reproducible.

    Parameters
    ----------
    key:
        Any object with a stable ``str`` representation.  Bytes are hashed
        as-is; other objects are hashed through ``repr`` of their type-tagged
        string form so that ``1`` and ``"1"`` digest differently.
    """
    if isinstance(key, bytes):
        payload = b"bytes:" + key
    elif isinstance(key, str):
        payload = b"str:" + key.encode("utf-8")
    elif isinstance(key, bool):
        payload = b"bool:" + str(key).encode("ascii")
    elif isinstance(key, int):
        payload = b"int:" + str(key).encode("ascii")
    else:
        payload = b"repr:" + repr(key).encode("utf-8", "backslashreplace")
    return int.from_bytes(hashlib.sha1(payload).digest(), "big")


@dataclass(frozen=True)
class PairwiseIndependentHash:
    """A single Carter–Wegman hash function ``h(x) = ((a·x + b) mod p) mod 2^bits``.

    Instances are immutable and hashable so they can be used as dictionary
    keys (the network indexes stored values by the hash function that placed
    them).

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"hr-3"`` or ``"h-ts"``.  Names are
        what the storage layer keys on, so two functions with the same name are
        considered the same placement function.
    a, b:
        Coefficients of the affine map.  ``a`` must be non-zero modulo ``p``.
    bits:
        Size of the output identifier space: outputs lie in ``[0, 2^bits)``.
    """

    name: str
    a: int
    b: int
    bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 512:
            raise ValueError(f"bits must be in [1, 512], got {self.bits}")
        if self.a % _PRIME == 0:
            raise ValueError("coefficient 'a' must be non-zero modulo p")

    @property
    def space_size(self) -> int:
        """Number of points in the output identifier space (``2^bits``)."""
        return 1 << self.bits

    def point(self, key: Any) -> int:
        """Return the identifier-space point for ``key`` (alias of ``__call__``)."""
        return self(key)

    def __call__(self, key: Any) -> int:
        digest = key_digest(key)
        return ((self.a * digest + self.b) % _PRIME) % self.space_size

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(bits={self.bits})"


class HashFamily:
    """A sampler of pairwise-independent hash functions sharing one bit-width.

    The family is seeded so that a simulation run is fully reproducible: the
    same seed yields the same replication hash functions ``Hr`` and the same
    timestamping function ``h_ts``.

    Examples
    --------
    >>> family = HashFamily(bits=32, seed=7)
    >>> h1, h2 = family.sample("a"), family.sample("b")
    >>> h1("some-key") != h2("some-key")
    True
    """

    def __init__(self, bits: int = 64, seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        if not 1 <= bits <= 512:
            raise ValueError(f"bits must be in [1, 512], got {bits}")
        if rng is not None and seed is not None:
            raise ValueError("pass either 'seed' or 'rng', not both")
        self.bits = bits
        self._rng = rng if rng is not None else random.Random(seed)
        self._sampled: List[PairwiseIndependentHash] = []

    @property
    def sampled(self) -> Sequence[PairwiseIndependentHash]:
        """All hash functions sampled from this family so far, in order."""
        return tuple(self._sampled)

    def sample(self, name: Optional[str] = None) -> PairwiseIndependentHash:
        """Draw a fresh hash function from the family.

        Parameters
        ----------
        name:
            Optional identifier; defaults to ``"h-<index>"``.
        """
        a = self._rng.randrange(1, _PRIME)
        b = self._rng.randrange(0, _PRIME)
        if name is None:
            name = f"h-{len(self._sampled)}"
        fn = PairwiseIndependentHash(name=name, a=a, b=b, bits=self.bits)
        self._sampled.append(fn)
        return fn

    def sample_many(self, count: int, prefix: str = "hr") -> List[PairwiseIndependentHash]:
        """Draw ``count`` hash functions named ``<prefix>-0 .. <prefix>-(count-1)``.

        This is the helper used to build the replication set ``Hr``.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return [self.sample(f"{prefix}-{index}") for index in range(count)]

    def __iter__(self) -> Iterator[PairwiseIndependentHash]:
        return iter(self._sampled)

    def __len__(self) -> int:
        return len(self._sampled)


def collision_probability(functions: Iterable[PairwiseIndependentHash],
                          keys: Iterable[Any]) -> float:
    """Empirical probability that two distinct keys collide under one function.

    Utility used by tests and the analysis notebook-style example to sanity
    check the pairwise-independence construction: for a family over ``2^bits``
    points the collision probability of a random pair should be ~``2^-bits``.
    """
    functions = list(functions)
    keys = list(keys)
    if len(keys) < 2 or not functions:
        return 0.0
    collisions = 0
    pairs = 0
    for fn in functions:
        points = [fn(key) for key in keys]
        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                pairs += 1
                if points[i] == points[j]:
                    collisions += 1
    return collisions / pairs if pairs else 0.0
