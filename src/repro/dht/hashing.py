"""Hash functions used by the replicated DHT.

The paper replicates each pair ``(k, data)`` under a set ``Hr`` of *pairwise
independent* hash functions and uses one extra hash function ``h_ts`` to choose
the peer responsible for timestamping a key (Section 3.1 and 4.1).  The paper
points to Luby's construction of pairwise-independent families; we implement
the classical Carter–Wegman family

    h_{a,b}(x) = ((a * x + b) mod p) mod 2^bits

over a Mersenne prime ``p`` larger than the key digest space.  Keys of any
hashable Python type are first mapped to an integer digest with SHA-1 (the
digest plays the role of ``x``).
"""

from __future__ import annotations

import hashlib
import itertools
import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Iterable, Iterator, List, Optional, Sequence

__all__ = [
    "DIGEST_BITS",
    "HashFamily",
    "PairwiseIndependentHash",
    "key_digest",
]

#: Number of bits of the SHA-1 digest used as the integer representation of keys.
DIGEST_BITS = 160

#: Mersenne prime 2^521 - 1, comfortably larger than the 160-bit digest space so
#: the Carter-Wegman construction is exactly pairwise independent over digests.
_PRIME = (1 << 521) - 1

#: Bound of the memoisation caches.  Key digests are shared process-wide (the
#: digest of a key is independent of the hash function); per-function point
#: caches live on each :class:`PairwiseIndependentHash` instance.
_DIGEST_CACHE_SIZE = 1 << 16
_POINT_CACHE_SIZE = 1 << 16


def _compute_digest(key: Any) -> int:
    if isinstance(key, bytes):
        payload = b"bytes:" + key
    elif isinstance(key, str):
        payload = b"str:" + key.encode("utf-8")
    elif isinstance(key, bool):
        payload = b"bool:" + str(key).encode("ascii")
    elif isinstance(key, int):
        payload = b"int:" + str(key).encode("ascii")
    else:
        payload = b"repr:" + repr(key).encode("utf-8", "backslashreplace")
    return int.from_bytes(hashlib.sha1(payload).digest(), "big")


#: Key types eligible for memoisation: exactly those whose payload is a
#: function of type + equality.  For anything else (floats, tuples, arbitrary
#: objects) two ``==``-equal keys of the same type can still have different
#: ``repr`` payloads — e.g. ``0.0`` and ``-0.0`` — so caching by equality
#: would make the digest depend on evaluation order.
_CACHEABLE_KEY_TYPES = (bytes, str, bool, int)


@lru_cache(maxsize=_DIGEST_CACHE_SIZE)
def _cached_digest(typed_key: tuple) -> int:
    # The cache key is ``(type(key), key)`` rather than the bare key: ``lru_cache``
    # compares keys with ``==``, and ``True == 1`` while their payloads (hence
    # digests) differ.
    return _compute_digest(typed_key[1])


def key_digest(key: Any) -> int:
    """Map an arbitrary key to a deterministic ``DIGEST_BITS``-bit integer.

    The mapping is stable across processes and Python versions (it does not use
    the built-in ``hash``), which makes stored data and test expectations
    reproducible.  Digests of ``bytes``/``str``/``bool``/``int`` keys — the
    only types whose payload is fully determined by type and equality — are
    memoised in a bounded LRU shared by every hash function, so re-deriving
    the SHA-1 of a hot key is a dictionary hit instead of a hash computation.
    Other key types are always computed fresh.

    Parameters
    ----------
    key:
        Any object with a stable ``str`` representation.  Bytes are hashed
        as-is; other objects are hashed through ``repr`` of their type-tagged
        string form so that ``1`` and ``"1"`` digest differently.
    """
    if isinstance(key, _CACHEABLE_KEY_TYPES):
        return _cached_digest((type(key), key))
    return _compute_digest(key)


@dataclass(frozen=True)
class PairwiseIndependentHash:
    """A single Carter–Wegman hash function ``h(x) = ((a·x + b) mod p) mod 2^bits``.

    Instances are immutable and hashable so they can be used as dictionary
    keys (the network indexes stored values by the hash function that placed
    them).

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"hr-3"`` or ``"h-ts"``.  Names are
        what the storage layer keys on, so two functions with the same name are
        considered the same placement function.
    a, b:
        Coefficients of the affine map.  ``a`` must be non-zero modulo ``p``.
    bits:
        Size of the output identifier space: outputs lie in ``[0, 2^bits)``.
    """

    name: str
    a: int
    b: int
    bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 512:
            raise ValueError(f"bits must be in [1, 512], got {self.bits}")
        if self.a % _PRIME == 0:
            raise ValueError("coefficient 'a' must be non-zero modulo p")
        # Precomputed evaluation state, kept out of the dataclass fields so
        # equality/hashing still compare only (name, a, b, bits).  The output
        # space is a power of two, so the final reduction is a bitmask.
        object.__setattr__(self, "_a_reduced", self.a % _PRIME)
        object.__setattr__(self, "_b_reduced", self.b % _PRIME)
        object.__setattr__(self, "_mask", (1 << self.bits) - 1)
        object.__setattr__(self, "_points", {})

    @property
    def space_size(self) -> int:
        """Number of points in the output identifier space (``2^bits``)."""
        return 1 << self.bits

    def point(self, key: Any) -> int:
        """Return the identifier-space point for ``key`` (alias of ``__call__``)."""
        return self(key)

    def _evaluate(self, key: Any) -> int:
        return ((self._a_reduced * key_digest(key) + self._b_reduced)
                % _PRIME) & self._mask

    def __call__(self, key: Any) -> int:
        # Per-(function, key) memoisation: the placement of a key never
        # changes, so the 521-bit Carter-Wegman reduction runs once per hot
        # key.  Only types whose payload is a function of type + equality are
        # cached (see ``_CACHEABLE_KEY_TYPES``); the memo key is type-tagged
        # because ``True == 1`` but their digests differ.
        if not isinstance(key, _CACHEABLE_KEY_TYPES):
            return self._evaluate(key)
        points = self._points
        cached = points.get((type(key), key))
        if cached is None:
            cached = self._evaluate(key)
            if len(points) >= _POINT_CACHE_SIZE:
                points.clear()
            points[(type(key), key)] = cached
        return cached

    def points_many(self, keys: Iterable[Any]) -> List[int]:
        """Batch evaluation: the identifier-space point of every key, in order.

        Convenience entry point for the bulk paths (collision estimation,
        benchmarks, batched network operations); each key goes through the
        same per-function memo as :meth:`__call__`.
        """
        call = self.__call__
        return [call(key) for key in keys]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(bits={self.bits})"


class HashFamily:
    """A sampler of pairwise-independent hash functions sharing one bit-width.

    The family is seeded so that a simulation run is fully reproducible: the
    same seed yields the same replication hash functions ``Hr`` and the same
    timestamping function ``h_ts``.

    Examples
    --------
    >>> family = HashFamily(bits=32, seed=7)
    >>> h1, h2 = family.sample("a"), family.sample("b")
    >>> h1("some-key") != h2("some-key")
    True
    """

    def __init__(self, bits: int = 64, seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        if not 1 <= bits <= 512:
            raise ValueError(f"bits must be in [1, 512], got {bits}")
        if rng is not None and seed is not None:
            raise ValueError("pass either 'seed' or 'rng', not both")
        self.bits = bits
        self._rng = rng if rng is not None else random.Random(seed)
        self._sampled: List[PairwiseIndependentHash] = []

    @property
    def sampled(self) -> Sequence[PairwiseIndependentHash]:
        """All hash functions sampled from this family so far, in order."""
        return tuple(self._sampled)

    def sample(self, name: Optional[str] = None) -> PairwiseIndependentHash:
        """Draw a fresh hash function from the family.

        Parameters
        ----------
        name:
            Optional identifier; defaults to ``"h-<index>"``.
        """
        a = self._rng.randrange(1, _PRIME)
        b = self._rng.randrange(0, _PRIME)
        if name is None:
            name = f"h-{len(self._sampled)}"
        fn = PairwiseIndependentHash(name=name, a=a, b=b, bits=self.bits)
        self._sampled.append(fn)
        return fn

    def sample_many(self, count: int, prefix: str = "hr") -> List[PairwiseIndependentHash]:
        """Draw ``count`` hash functions named ``<prefix>-0 .. <prefix>-(count-1)``.

        This is the helper used to build the replication set ``Hr``.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return [self.sample(f"{prefix}-{index}") for index in range(count)]

    def __iter__(self) -> Iterator[PairwiseIndependentHash]:
        return iter(self._sampled)

    def __len__(self) -> int:
        return len(self._sampled)


def collision_probability(functions: Iterable[PairwiseIndependentHash],
                          keys: Iterable[Any], *,
                          max_pairs: int = 200_000,
                          seed: int = 0) -> float:
    """Empirical probability that two distinct keys collide under one function.

    Utility used by tests and the analysis notebook-style example to sanity
    check the pairwise-independence construction: for a family over ``2^bits``
    points the collision probability of a random pair should be ~``2^-bits``.

    Pairs are enumerated with :func:`itertools.combinations`.  When a key set
    is large enough that one function would have to examine more than
    ``max_pairs`` pairs, the estimate switches to a deterministic sample:
    ``max_pairs`` index pairs drawn by a ``random.Random(seed)``, so large key
    sets cost O(``max_pairs``) per function instead of O(n²) while the result
    stays reproducible for a given ``seed``.
    """
    functions = list(functions)
    keys = list(keys)
    if len(keys) < 2 or not functions:
        return 0.0
    total_pairs = len(keys) * (len(keys) - 1) // 2
    sample_rng = random.Random(seed) if total_pairs > max_pairs else None
    collisions = 0
    pairs = 0
    for fn in functions:
        points = fn.points_many(keys)
        if sample_rng is None:
            for first, second in itertools.combinations(points, 2):
                pairs += 1
                if first == second:
                    collisions += 1
        else:
            indices = range(len(points))
            for _ in range(max_pairs):
                # ``sample`` draws two distinct indices uniformly, so every
                # unordered pair is equally likely.
                i, j = sample_rng.sample(indices, 2)
                pairs += 1
                if points[i] == points[j]:
                    collisions += 1
    return collisions / pairs if pairs else 0.0
