"""Exception hierarchy for the DHT substrate."""


class DHTError(Exception):
    """Base class for all errors raised by the DHT substrate."""


class EmptyNetworkError(DHTError):
    """An operation required at least one live peer but the network is empty."""


class NoSuchPeerError(DHTError):
    """The peer identifier does not designate a live peer of the network."""

    def __init__(self, peer_id):
        super().__init__(f"no live peer with id {peer_id!r}")
        self.peer_id = peer_id


class PeerUnreachableError(DHTError):
    """A peer could not be contacted (used for fault injection in tests)."""

    def __init__(self, peer_id):
        super().__init__(f"peer {peer_id!r} is unreachable")
        self.peer_id = peer_id


class NodeAlreadyPresentError(DHTError):
    """A node identifier was added twice to the same overlay."""

    def __init__(self, node_id):
        super().__init__(f"node {node_id!r} is already part of the overlay")
        self.node_id = node_id


class InvalidConfigurationError(DHTError):
    """A structural parameter (bits, dimensions, ...) is out of range."""
