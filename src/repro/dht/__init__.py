"""DHT substrate: hashing, overlay protocols (Chord, CAN, Kademlia), storage
and the in-process replicated DHT network used by the UMS/KTS services.

The public surface of this sub-package:

* :class:`repro.dht.hashing.HashFamily` and
  :class:`repro.dht.hashing.PairwiseIndependentHash` — Carter–Wegman hash
  functions used both for data placement (``Hr``) and timestamping (``h_ts``).
* :class:`repro.dht.chord.ChordRing`, :class:`repro.dht.can.CanSpace` and
  :class:`repro.dht.kademlia.KademliaOverlay` — overlay protocols
  implementing :class:`repro.dht.model.DHTProtocol`; the
  :mod:`repro.dht.columnar` package holds their packed-array
  representations (bit-identical behaviour, flat `array('Q')` state).
* :mod:`repro.dht.registry` — the pluggable overlay registry that resolves
  ``protocol`` names (``"chord"``, ``"can"``, ``"kademlia"``, plus any
  overlay registered at runtime) and representation names (``"object"`` /
  ``"columnar"``) to factories.
* :class:`repro.dht.network.DHTNetwork` — a network of peers running one of
  the overlays, exposing the paper's ``put_h`` / ``get_h`` / lookup operations
  with message accounting and churn (join / leave / fail) with data handover.
"""

from repro.dht.errors import (
    DHTError,
    EmptyNetworkError,
    NoSuchPeerError,
    PeerUnreachableError,
)
from repro.dht.hashing import HashFamily, PairwiseIndependentHash, key_digest
from repro.dht.messages import Message, MessageKind, MessageSizes, OperationTrace
from repro.dht.model import (
    DHTProtocol,
    LookupResult,
    ResponsibilityLog,
    ResponsibilityPeriod,
    RouteResult,
)
from repro.dht.storage import LocalStore, StoredValue
from repro.dht.chord import ChordRing
from repro.dht.can import CanSpace
from repro.dht.kademlia import KademliaOverlay
from repro.dht.columnar import (
    ColumnarCanSpace,
    ColumnarChordRing,
    ColumnarKademliaOverlay,
)
from repro.dht.registry import (
    create_overlay,
    is_registered,
    overlay_names,
    register_overlay,
    representation_names,
    unregister_overlay,
)
from repro.dht.network import DHTNetwork, NetworkObserver, PeerState

__all__ = [
    "CanSpace",
    "ChordRing",
    "ColumnarCanSpace",
    "ColumnarChordRing",
    "ColumnarKademliaOverlay",
    "DHTError",
    "DHTNetwork",
    "DHTProtocol",
    "EmptyNetworkError",
    "HashFamily",
    "KademliaOverlay",
    "LocalStore",
    "LookupResult",
    "Message",
    "MessageKind",
    "MessageSizes",
    "NetworkObserver",
    "NoSuchPeerError",
    "OperationTrace",
    "PairwiseIndependentHash",
    "PeerState",
    "PeerUnreachableError",
    "ResponsibilityLog",
    "ResponsibilityPeriod",
    "RouteResult",
    "StoredValue",
    "create_overlay",
    "is_registered",
    "key_digest",
    "overlay_names",
    "register_overlay",
    "representation_names",
    "unregister_overlay",
]
