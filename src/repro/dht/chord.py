"""Chord overlay (Stoica et al., SIGCOMM 2001), the DHT the paper implements on.

The ring assigns every identifier point ``x`` to its *successor*: the first
live node whose identifier is ``>= x`` (wrapping around the ring).  Routing is
the classic greedy finger-table walk: each node forwards a lookup to the
closest finger preceding the target, reaching the responsible node in
``O(log n)`` hops.

Churn realism
-------------
The paper's Figure 11 shows response time degrading with the failure rate
because failed peers leave stale routing state behind.  We reproduce the
mechanism: every node's finger table is a snapshot refreshed lazily every
``stabilization_interval`` simulated seconds.  Between refreshes a finger may
point at a departed node; when routing encounters one, the hop is retried
through the next live candidate.  A retry through a node that left *normally*
costs one extra message (the leaver handed off its pointers), while a retry
through a *failed* node additionally costs a timeout delay in the cost model.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Dict, List, MutableSequence, Optional, Sequence, Set, Tuple

from repro.dht.errors import (
    EmptyNetworkError,
    InvalidConfigurationError,
    NodeAlreadyPresentError,
    NoSuchPeerError,
)
from repro.dht.model import DepartureReason, DHTProtocol, RouteResult

__all__ = ["ChordRing"]


@dataclass
class _FingerTable:
    """Snapshot of a node's fingers plus the time it was last refreshed.

    ``version`` is the membership version the entries were computed at: a
    refresh with an unchanged membership would recompute identical entries, so
    stabilisation only pays the O(bits·log n) finger scan when the ring
    actually changed since the snapshot.
    """

    entries: Sequence[int]
    refreshed_at: float
    version: int = 0


class ChordRing(DHTProtocol):
    """An idealised-but-churn-aware Chord ring.

    Parameters
    ----------
    bits:
        Size of the identifier space (``2^bits`` points).  32 bits comfortably
        holds the paper's 10,000 peers with negligible collision probability.
    stabilization_interval:
        Simulated seconds between refreshes of a node's finger table.  ``0``
        models perfectly fresh routing state (no failure penalty).
    rng:
        Random source used only for tie-breaking utilities; routing itself is
        deterministic.
    """

    def __init__(self, bits: int = 32, *, stabilization_interval: float = 30.0,
                 rng: Optional[random.Random] = None) -> None:
        if not 3 <= bits <= 160:
            raise InvalidConfigurationError(
                f"chord identifier space must use between 3 and 160 bits, got {bits}")
        if stabilization_interval < 0:
            raise InvalidConfigurationError("stabilization_interval must be >= 0")
        self.bits = bits
        self.stabilization_interval = stabilization_interval
        self._rng = rng if rng is not None else random.Random(0)
        # Sorted node identifiers.  Declared as a mutable sequence so the
        # columnar subclass can swap in a packed array('Q') column.
        self._members: MutableSequence[int] = []
        self._member_set: Set[int] = set()
        self._departed: Dict[int, Tuple[str, float]] = {}
        self._fingers: Dict[int, _FingerTable] = {}
        self._init_version_caches()
        self._current_fingers: Dict[int, Sequence[int]] = {}

    def _clear_version_caches(self) -> None:
        self._current_fingers.clear()

    # ------------------------------------------------------------------ sizing
    @property
    def space_size(self) -> int:
        """Number of identifier points on the ring."""
        return 1 << self.bits

    def nodes(self) -> Sequence[int]:
        return self._cached_nodes(lambda: tuple(self._members))

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._member_set

    def __len__(self) -> int:
        return len(self._members)

    # -------------------------------------------------------------- membership
    def add_node(self, node_id: int, *, now: float = 0.0) -> Set[int]:
        if not 0 <= node_id < self.space_size:
            raise InvalidConfigurationError(
                f"node id {node_id} outside identifier space [0, 2^{self.bits})")
        if node_id in self._member_set:
            raise NodeAlreadyPresentError(node_id)
        bisect.insort(self._members, node_id)
        self._member_set.add(node_id)
        self._departed.pop(node_id, None)
        self._membership_changed()
        # The only node that can lose responsibility to the newcomer is its
        # successor: keys in (predecessor(new), new] move from it to the new
        # node (Section 4.2.1, the Chord join argument).
        if len(self._members) == 1:
            return set()
        return {self.successor(self._next_point(node_id))}

    def remove_node(self, node_id: int, *, reason: str = DepartureReason.LEAVE,
                    now: float = 0.0) -> None:
        if node_id not in self._member_set:
            raise NoSuchPeerError(node_id)
        index = bisect.bisect_left(self._members, node_id)
        self._members.pop(index)
        self._member_set.discard(node_id)
        self._fingers.pop(node_id, None)
        self._departed[node_id] = (reason, now)
        self._membership_changed()

    def departure_reason(self, node_id: int) -> Optional[str]:
        """How a departed node left (``"leave"``/``"fail"``), if known."""
        record = self._departed.get(node_id)
        return record[0] if record else None

    # ----------------------------------------------------------- responsibility
    def successor(self, point: int) -> int:
        """First live node whose identifier is ``>= point`` (wrapping)."""
        if not self._members:
            raise EmptyNetworkError("the Chord ring has no live nodes")
        point %= self.space_size
        index = bisect.bisect_left(self._members, point)
        if index == len(self._members):
            index = 0
        return self._members[index]

    def predecessor(self, node_id: int) -> int:
        """The live node immediately preceding ``node_id`` on the ring."""
        if not self._members:
            raise EmptyNetworkError("the Chord ring has no live nodes")
        index = bisect.bisect_left(self._members, node_id % self.space_size)
        return self._members[index - 1] if index > 0 else self._members[-1]

    def responsible_for(self, point: int) -> int:
        # Memoised per membership version (the successor of a point only
        # changes when the ring does).
        return self._memoised_responsible(point, self.successor)

    def claimed_span(self, node_id: int) -> Optional[Tuple[int, int]]:
        """The wrapping interval ``(predecessor, node_id]`` owned by ``node_id``.

        Chord responsibility is contiguous on the ring, which lets the network
        layer hand over data with a range scan of the store's point index
        instead of sweeping every entry.  Returns ``None`` when the node owns
        the whole ring (single member), meaning "no range filter applies".
        """
        if node_id not in self._member_set:
            raise NoSuchPeerError(node_id)
        if len(self._members) < 2:
            return None
        return (self.predecessor(node_id), node_id)

    def next_responsible(self, point: int) -> Optional[int]:
        """``nrsp``: the node that takes over ``point`` if its responsible departs."""
        if len(self._members) < 2:
            return None
        current = self.successor(point)
        return self.successor(self._next_point(current))

    def neighbors(self, node_id: int) -> Set[int]:
        """Successor, predecessor and current finger targets of ``node_id``."""
        if node_id not in self._member_set:
            raise NoSuchPeerError(node_id)
        if len(self._members) == 1:
            return set()
        neighbor_set = {self.successor(self._next_point(node_id)),
                        self.predecessor(node_id)}
        neighbor_set.update(self._compute_fingers(node_id))
        neighbor_set.discard(node_id)
        return neighbor_set

    def successor_list(self, node_id: int, count: int = 4) -> List[int]:
        """The ``count`` nodes following ``node_id`` clockwise (fault tolerance)."""
        if node_id not in self._member_set:
            raise NoSuchPeerError(node_id)
        successors: List[int] = []
        current = node_id
        for _ in range(min(count, max(0, len(self._members) - 1))):
            current = self.successor(self._next_point(current))
            successors.append(current)
        return successors

    # ------------------------------------------------------------------ fingers
    def finger_table(self, node_id: int, *, now: float = 0.0) -> List[int]:
        """The (possibly stale) finger entries of ``node_id`` at time ``now``."""
        return list(self._finger_snapshot(node_id, now).entries)

    def refresh_fingers(self, node_id: int, *, now: float = 0.0) -> None:
        """Force an immediate stabilisation of ``node_id``'s finger table."""
        if node_id not in self._member_set:
            raise NoSuchPeerError(node_id)
        self._fingers[node_id] = _FingerTable(entries=self._compute_fingers(node_id),
                                              refreshed_at=now,
                                              version=self.version)

    def _compute_fingers(self, node_id: int) -> Sequence[int]:
        """Finger ``i`` is the successor of ``node_id + 2^i`` over live members.

        Results are memoised per membership version (shared with
        :meth:`neighbors`); the scan only reruns after a join/leave/failure.
        """
        entries = self._current_fingers.get(node_id)
        if entries is not None:
            return entries
        entries: List[int] = []
        seen: Set[int] = set()
        for exponent in range(self.bits):
            target = (node_id + (1 << exponent)) % self.space_size
            finger = self.successor(target)
            if finger != node_id and finger not in seen:
                seen.add(finger)
                entries.append(finger)
        self._current_fingers[node_id] = entries
        return entries

    def _finger_snapshot(self, node_id: int, now: float) -> _FingerTable:
        if node_id not in self._member_set:
            raise NoSuchPeerError(node_id)
        table = self._fingers.get(node_id)
        stale = (table is None or
                 now - table.refreshed_at >= self.stabilization_interval)
        if stale:
            if table is not None and table.version == self.version:
                # The membership is unchanged since the entries were computed:
                # a recompute would produce the same fingers, so only the
                # refresh clock moves.
                table.refreshed_at = now
            else:
                table = _FingerTable(entries=self._compute_fingers(node_id),
                                     refreshed_at=now, version=self.version)
                self._fingers[node_id] = table
        return table

    # ------------------------------------------------------------------ routing
    def route(self, origin: int, point: int, *, now: float = 0.0) -> RouteResult:
        if origin not in self._member_set:
            raise NoSuchPeerError(origin)
        point %= self.space_size
        responsible = self.responsible_for(point)
        path: List[int] = [origin]
        retries = 0
        timeouts = 0
        current = origin
        max_hops = 4 * self.bits + len(self._members)
        while current != responsible and len(path) <= max_hops:
            next_hop, hop_retries, hop_timeouts = self._next_hop(current, point, now)
            retries += hop_retries
            timeouts += hop_timeouts
            if next_hop == current:
                break
            path.append(next_hop)
            current = next_hop
        if path[-1] != responsible:
            # Safety net: should not trigger, but guarantees a valid route even
            # if stale state confused the greedy walk.
            path.append(responsible)
        return RouteResult(path=tuple(path), responsible=responsible,
                           retries=retries, timeouts=timeouts)

    def _next_hop(self, current: int, point: int, now: float) -> Tuple[int, int, int]:
        """Choose the next hop from ``current`` towards ``point``.

        Returns ``(next_hop, retries, timeouts)`` where retries count fingers
        that turned out to be departed.
        """
        retries = 0
        timeouts = 0
        table = self._finger_snapshot(current, now)
        # Closest preceding finger: the entry that lands strictly inside the
        # clockwise interval (current, point) and is closest to point.
        best: Optional[int] = None
        best_distance: Optional[int] = None
        for finger in table.entries:
            if not self._in_open_interval(finger, current, point):
                continue
            if finger not in self._member_set:
                reason = self._departed.get(finger, (DepartureReason.LEAVE, 0.0))[0]
                retries += 1
                if reason == DepartureReason.FAIL:
                    timeouts += 1
                continue
            distance = self._clockwise_distance(finger, point)
            if best_distance is None or distance < best_distance:
                best = finger
                best_distance = distance
        if best is not None:
            return best, retries, timeouts
        # No usable finger strictly before the target: the live successor of
        # current is the responsible (or at least strictly closer).
        return self.successor(self._next_point(current)), retries, timeouts

    # ---------------------------------------------------------------- intervals
    def _next_point(self, node_id: int) -> int:
        return (node_id + 1) % self.space_size

    def _clockwise_distance(self, start: int, end: int) -> int:
        return (end - start) % self.space_size

    def _in_open_interval(self, value: int, start: int, end: int) -> bool:
        """Whether ``value`` lies in the clockwise-open interval ``(start, end)``."""
        if start == end:
            return value != start
        return 0 < self._clockwise_distance(start, value) < self._clockwise_distance(start, end)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChordRing(bits={self.bits}, nodes={len(self._members)})"
