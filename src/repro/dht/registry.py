"""Pluggable overlay registry.

The paper's services are DHT-agnostic (Section 2 assumes only the lookup
service, ``put_h``/``get_h`` and responsibility notifications), so the
reproduction should be able to swap overlays freely.  This module is the
single place where overlay implementations are registered by name; the
network layer, the simulation configuration, the CLI and the benchmarks all
resolve the ``protocol`` string through it.

Three overlays ship registered: ``"chord"``, ``"can"`` and ``"kademlia"``.
Adding a backend is one call::

    from repro.dht.registry import register_overlay

    def build_pastry(*, bits, stabilization_interval, rng, **extra):
        return PastryOverlay(bits=bits, rng=rng, **extra)

    register_overlay("pastry", build_pastry)

after which ``DHTNetwork(protocol="pastry")``, ``repro simulate --protocol
pastry`` and every experiment sweep accept the new name.

A factory is a callable taking keyword arguments ``bits``,
``stabilization_interval`` and ``rng`` (plus any overlay-specific extras) and
returning a :class:`repro.dht.model.DHTProtocol`.  Factories are free to
ignore knobs that do not apply to their overlay (CAN and Kademlia have no
periodic stabilisation, for example).

Representations
---------------
Every overlay name can carry several *representations*: interchangeable
implementations of the same protocol with different storage layouts.  Two
ship built in:

* ``"columnar"`` (the default) — flat ``array('Q')`` hot state from
  :mod:`repro.dht.columnar`; bit-identical behaviour, built for 100k+-peer
  populations, limited to 64-bit identifier spaces.
* ``"object"`` — the original object-graph classes; works for any ``bits``
  and remains the parity reference.

Selection order: the ``representation`` argument of :func:`create_overlay`,
then the ``REPRO_OVERLAY_REPRESENTATION`` environment variable, then the
``columnar`` default.  Requesting ``columnar`` quietly falls back to
``object`` when the overlay has no columnar factory (third-party overlays)
or when ``bits`` exceeds the 64-bit packed-slot width, so existing callers
never have to care.
"""

from __future__ import annotations

import os
import random
from typing import Callable, Dict, Optional, Tuple

from repro.dht.can import CanSpace
from repro.dht.chord import ChordRing
from repro.dht.columnar import (
    MAX_COLUMNAR_BITS,
    ColumnarCanSpace,
    ColumnarChordRing,
    ColumnarKademliaOverlay,
)
from repro.dht.kademlia import KademliaOverlay
from repro.dht.model import DHTProtocol

__all__ = [
    "COLUMNAR_REPRESENTATION",
    "DEFAULT_REPRESENTATION",
    "OBJECT_REPRESENTATION",
    "OverlayFactory",
    "REPRESENTATION_ENV",
    "create_overlay",
    "is_registered",
    "overlay_names",
    "register_overlay",
    "representation_names",
    "unregister_overlay",
]

#: Signature of an overlay factory: keyword-only ``bits``,
#: ``stabilization_interval`` and ``rng`` plus overlay-specific extras.
OverlayFactory = Callable[..., DHTProtocol]

#: The object-graph reference representation (any ``bits``).
OBJECT_REPRESENTATION = "object"
#: The packed-array representation from :mod:`repro.dht.columnar`.
COLUMNAR_REPRESENTATION = "columnar"
#: Representation used when neither the argument nor the environment picks one.
DEFAULT_REPRESENTATION = COLUMNAR_REPRESENTATION
#: Environment variable overriding the default representation.
REPRESENTATION_ENV = "REPRO_OVERLAY_REPRESENTATION"

#: name -> representation -> factory.
_FACTORIES: Dict[str, Dict[str, OverlayFactory]] = {}


def register_overlay(name: str, factory: OverlayFactory, *,
                     representation: str = OBJECT_REPRESENTATION,
                     replace: bool = False) -> None:
    """Register ``factory`` under ``name`` (case-insensitive).

    ``representation`` names the storage layout the factory builds; plain
    overlays register the default ``"object"`` representation and work
    everywhere.  Raises :class:`ValueError` when the (name, representation)
    pair is already taken, unless ``replace=True`` is passed explicitly.
    """
    key = name.lower()
    if not key:
        raise ValueError("overlay name must be a non-empty string")
    rep_key = representation.lower()
    if not rep_key:
        raise ValueError("representation must be a non-empty string")
    representations = _FACTORIES.setdefault(key, {})
    if rep_key in representations and not replace:
        raise ValueError(
            f"overlay {key!r} is already registered "
            f"(representation {rep_key!r}); pass replace=True to override it")
    representations[rep_key] = factory


def unregister_overlay(name: str) -> None:
    """Remove ``name`` (all its representations) from the registry."""
    key = name.lower()
    if key not in _FACTORIES:
        raise ValueError(f"overlay {key!r} is not registered")
    del _FACTORIES[key]


def is_registered(name: str) -> bool:
    """Whether ``name`` resolves to a registered overlay factory."""
    return name.lower() in _FACTORIES


def overlay_names() -> Tuple[str, ...]:
    """The registered overlay names, sorted."""
    return tuple(sorted(_FACTORIES))


def representation_names(name: str) -> Tuple[str, ...]:
    """The representations registered for overlay ``name``, sorted."""
    key = name.lower()
    if key not in _FACTORIES:
        raise ValueError(f"overlay {key!r} is not registered")
    return tuple(sorted(_FACTORIES[key]))


def _resolve_representation(requested: Optional[str]) -> str:
    """Explicit argument, else environment override, else the default."""
    if requested is not None:
        resolved = requested.lower()
        if not resolved:
            raise ValueError("representation must be a non-empty string")
        return resolved
    env_value = os.environ.get(REPRESENTATION_ENV, "").strip().lower()
    if env_value:
        return env_value
    return DEFAULT_REPRESENTATION


def create_overlay(name: str, *, bits: int = 32,
                   stabilization_interval: float = 30.0,
                   rng: Optional[random.Random] = None,
                   representation: Optional[str] = None,
                   **extra) -> DHTProtocol:
    """Build the overlay registered under ``name``.

    ``bits``, ``stabilization_interval`` and ``rng`` are the knobs every
    caller (network layer, simulation parameters) provides; ``extra`` is
    forwarded verbatim for overlay-specific options (e.g. CAN's
    ``dimensions`` or Kademlia's ``k``).

    ``representation`` picks the storage layout (see the module docstring for
    the resolution order).  ``"columnar"`` falls back to ``"object"`` when no
    columnar factory exists for the overlay or ``bits`` exceeds the packed
    64-bit slot width; any other unknown representation raises
    :class:`ValueError`.
    """
    key = name.lower()
    representations = _FACTORIES.get(key)
    if representations is None:
        known = ", ".join(repr(known_name) for known_name in overlay_names())
        raise ValueError(f"unknown protocol {key!r}; registered overlays: {known}")
    rep_key = _resolve_representation(representation)
    factory = representations.get(rep_key)
    if factory is None or (rep_key == COLUMNAR_REPRESENTATION
                           and bits > MAX_COLUMNAR_BITS):
        if rep_key == COLUMNAR_REPRESENTATION:
            # Documented fallback: columnar is an optimisation, not a
            # requirement, so overlays without one (or identifier spaces too
            # wide to pack) silently build the reference objects.
            factory = representations.get(OBJECT_REPRESENTATION)
        if factory is None:
            known = ", ".join(repr(rep) for rep in sorted(representations))
            raise ValueError(
                f"overlay {key!r} has no {rep_key!r} representation; "
                f"registered representations: {known}")
    return factory(bits=bits, stabilization_interval=stabilization_interval,
                   rng=rng, **extra)


# --------------------------------------------------------- built-in overlays
def _build_chord(*, bits: int, stabilization_interval: float,
                 rng: Optional[random.Random], **extra) -> ChordRing:
    return ChordRing(bits=bits, stabilization_interval=stabilization_interval,
                     rng=rng, **extra)


def _build_can(*, bits: int, stabilization_interval: float,
               rng: Optional[random.Random], **extra) -> CanSpace:
    # CAN has no periodic stabilisation process; the knob is ignored.
    return CanSpace(bits=bits, rng=rng, **extra)


def _build_kademlia(*, bits: int, stabilization_interval: float,
                    rng: Optional[random.Random], **extra) -> KademliaOverlay:
    # Kademlia refreshes buckets through lookup traffic, not stabilisation.
    return KademliaOverlay(bits=bits, rng=rng, **extra)


def _build_chord_columnar(*, bits: int, stabilization_interval: float,
                          rng: Optional[random.Random], **extra) -> ChordRing:
    return ColumnarChordRing(bits=bits,
                             stabilization_interval=stabilization_interval,
                             rng=rng, **extra)


def _build_can_columnar(*, bits: int, stabilization_interval: float,
                        rng: Optional[random.Random], **extra) -> CanSpace:
    return ColumnarCanSpace(bits=bits, rng=rng, **extra)


def _build_kademlia_columnar(*, bits: int, stabilization_interval: float,
                             rng: Optional[random.Random],
                             **extra) -> KademliaOverlay:
    return ColumnarKademliaOverlay(bits=bits, rng=rng, **extra)


register_overlay("chord", _build_chord)
register_overlay("can", _build_can)
register_overlay("kademlia", _build_kademlia)
register_overlay("chord", _build_chord_columnar,
                 representation=COLUMNAR_REPRESENTATION)
register_overlay("can", _build_can_columnar,
                 representation=COLUMNAR_REPRESENTATION)
register_overlay("kademlia", _build_kademlia_columnar,
                 representation=COLUMNAR_REPRESENTATION)
