"""Pluggable overlay registry.

The paper's services are DHT-agnostic (Section 2 assumes only the lookup
service, ``put_h``/``get_h`` and responsibility notifications), so the
reproduction should be able to swap overlays freely.  This module is the
single place where overlay implementations are registered by name; the
network layer, the simulation configuration, the CLI and the benchmarks all
resolve the ``protocol`` string through it.

Three overlays ship registered: ``"chord"``, ``"can"`` and ``"kademlia"``.
Adding a backend is one call::

    from repro.dht.registry import register_overlay

    def build_pastry(*, bits, stabilization_interval, rng, **extra):
        return PastryOverlay(bits=bits, rng=rng, **extra)

    register_overlay("pastry", build_pastry)

after which ``DHTNetwork(protocol="pastry")``, ``repro simulate --protocol
pastry`` and every experiment sweep accept the new name.

A factory is a callable taking keyword arguments ``bits``,
``stabilization_interval`` and ``rng`` (plus any overlay-specific extras) and
returning a :class:`repro.dht.model.DHTProtocol`.  Factories are free to
ignore knobs that do not apply to their overlay (CAN and Kademlia have no
periodic stabilisation, for example).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Tuple

from repro.dht.can import CanSpace
from repro.dht.chord import ChordRing
from repro.dht.kademlia import KademliaOverlay
from repro.dht.model import DHTProtocol

__all__ = [
    "OverlayFactory",
    "create_overlay",
    "is_registered",
    "overlay_names",
    "register_overlay",
    "unregister_overlay",
]

#: Signature of an overlay factory: keyword-only ``bits``,
#: ``stabilization_interval`` and ``rng`` plus overlay-specific extras.
OverlayFactory = Callable[..., DHTProtocol]

_FACTORIES: Dict[str, OverlayFactory] = {}


def register_overlay(name: str, factory: OverlayFactory, *,
                     replace: bool = False) -> None:
    """Register ``factory`` under ``name`` (case-insensitive).

    Raises :class:`ValueError` when the name is already taken, unless
    ``replace=True`` is passed explicitly.
    """
    key = name.lower()
    if not key:
        raise ValueError("overlay name must be a non-empty string")
    if key in _FACTORIES and not replace:
        raise ValueError(f"overlay {key!r} is already registered; "
                         "pass replace=True to override it")
    _FACTORIES[key] = factory


def unregister_overlay(name: str) -> None:
    """Remove ``name`` from the registry (raises ``ValueError`` if absent)."""
    key = name.lower()
    if key not in _FACTORIES:
        raise ValueError(f"overlay {key!r} is not registered")
    del _FACTORIES[key]


def is_registered(name: str) -> bool:
    """Whether ``name`` resolves to a registered overlay factory."""
    return name.lower() in _FACTORIES


def overlay_names() -> Tuple[str, ...]:
    """The registered overlay names, sorted."""
    return tuple(sorted(_FACTORIES))


def create_overlay(name: str, *, bits: int = 32,
                   stabilization_interval: float = 30.0,
                   rng: Optional[random.Random] = None,
                   **extra) -> DHTProtocol:
    """Build the overlay registered under ``name``.

    ``bits``, ``stabilization_interval`` and ``rng`` are the knobs every
    caller (network layer, simulation parameters) provides; ``extra`` is
    forwarded verbatim for overlay-specific options (e.g. CAN's
    ``dimensions`` or Kademlia's ``k``).
    """
    key = name.lower()
    factory = _FACTORIES.get(key)
    if factory is None:
        known = ", ".join(repr(known_name) for known_name in overlay_names())
        raise ValueError(f"unknown protocol {key!r}; registered overlays: {known}")
    return factory(bits=bits, stabilization_interval=stabilization_interval,
                   rng=rng, **extra)


# --------------------------------------------------------- built-in overlays
def _build_chord(*, bits: int, stabilization_interval: float,
                 rng: Optional[random.Random], **extra) -> ChordRing:
    return ChordRing(bits=bits, stabilization_interval=stabilization_interval,
                     rng=rng, **extra)


def _build_can(*, bits: int, stabilization_interval: float,
               rng: Optional[random.Random], **extra) -> CanSpace:
    # CAN has no periodic stabilisation process; the knob is ignored.
    return CanSpace(bits=bits, rng=rng, **extra)


def _build_kademlia(*, bits: int, stabilization_interval: float,
                    rng: Optional[random.Random], **extra) -> KademliaOverlay:
    # Kademlia refreshes buckets through lookup traffic, not stabilisation.
    return KademliaOverlay(bits=bits, rng=rng, **extra)


register_overlay("chord", _build_chord)
register_overlay("can", _build_can)
register_overlay("kademlia", _build_kademlia)
