"""Columnar Kademlia: packed member column and ``array('Q')`` k-bucket rows.

Two hot structures dominate the object overlay's footprint at scale:

* the sorted member list (boxed ints) that the trie-descent responsibility
  search bisects, and
* one :class:`~repro.dht.kademlia.KBucket` object *per populated bucket per
  node* — each holding a ``List[int]`` of boxed contacts — mutated on every
  observe/learn along every lookup path.

:class:`ColumnarKademliaOverlay` packs the member list into an ``array('Q')``
and replaces the bucket objects with :class:`ArrayRoutingTable`, which keeps
each k-bucket as a packed ``array('Q')`` row inside a single per-node dict.
The least-recently-seen update rules are reproduced operation-for-operation,
so bucket contents — and therefore lookup paths, retry counts and learn
traffic — are bit-identical to the object representation.

XOR-nearest scans (``closest``) go through :mod:`repro.dht.columnar.accel`,
which vectorises the distance argsort when numpy (``repro[fast]``) is
installed; XOR distances to a fixed target are unique per contact, so the
accelerated order is the same total order as the pure-python sort.
"""

from __future__ import annotations

import random
from array import array
from typing import Callable, Dict, List, Optional

from repro.dht.columnar import accel
from repro.dht.errors import InvalidConfigurationError
from repro.dht.kademlia import KademliaOverlay, KBucket, RoutingTable

__all__ = ["ArrayRoutingTable", "ColumnarKademliaOverlay"]


class ArrayRoutingTable(RoutingTable):
    """A :class:`RoutingTable` whose k-buckets are packed ``array('Q')`` rows.

    Row order encodes recency exactly like ``KBucket.contacts``: index 0 is
    the least-recently-seen contact, the tail the most-recently-seen one.
    """

    def __init__(self, owner: int, bits: int, k: int) -> None:
        super().__init__(owner, bits, k)
        self._rows: Dict[int, "array[int]"] = {}

    def _row(self, index: int) -> "array[int]":
        row = self._rows.get(index)
        if row is None:
            row = array("Q")
            self._rows[index] = row
        return row

    def bucket(self, index: int) -> KBucket:
        """A :class:`KBucket` *snapshot* of the packed row (diagnostics only).

        Mutating the returned bucket does not write back to the table; the
        update paths are :meth:`observe`/:meth:`learn`/:meth:`discard`.
        """
        row = self._rows.get(index)
        return KBucket(capacity=self.k,
                       contacts=list(row) if row is not None else [])

    def observe(self, contact: int, is_alive: Callable[[int], bool]) -> bool:
        """Direct-communication update; same LRS rule as ``KBucket.observe``."""
        if contact == self.owner:
            return False
        row = self._row(self.bucket_index(contact))
        if contact in row:
            row.remove(contact)
            row.append(contact)
            return True
        if len(row) < self.k:
            row.append(contact)
            return True
        least_recently_seen = row[0]
        if is_alive(least_recently_seen):
            # The LRS contact answered the ping: keep it (old contacts are the
            # most likely to stay online) and drop the newcomer.
            row.pop(0)
            row.append(least_recently_seen)
            return False
        row.pop(0)
        row.append(contact)
        return True

    def learn(self, contact: int) -> bool:
        """Second-hand update; same append-if-room rule as ``KBucket.learn``."""
        if contact == self.owner:
            return False
        row = self._row(self.bucket_index(contact))
        if contact in row:
            return True
        if len(row) >= self.k:
            return False
        row.append(contact)
        return True

    def discard(self, contact: int) -> None:
        """Drop ``contact`` from its row, if present."""
        if contact == self.owner:
            return
        row = self._rows.get(self.bucket_index(contact))
        if row is None:
            return
        try:
            row.remove(contact)
        except ValueError:
            pass

    def _packed_contacts(self) -> "array[int]":
        """Every contact, concatenated over rows in bucket-index order."""
        entries = array("Q")
        for index in sorted(self._rows):
            entries.extend(self._rows[index])
        return entries

    def contacts(self) -> List[int]:
        """Every contact currently held, over all buckets."""
        return list(self._packed_contacts())

    def closest(self, point: int, count: int) -> List[int]:
        """The ``count`` known contacts closest (XOR) to ``point``."""
        return accel.xor_closest(self._packed_contacts(), point, count)

    def __len__(self) -> int:
        return sum(len(row) for row in self._rows.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        populated = sum(1 for row in self._rows.values() if len(row))
        return (f"ArrayRoutingTable(owner={self.owner}, contacts={len(self)}, "
                f"buckets={populated})")


class ColumnarKademliaOverlay(KademliaOverlay):
    """A :class:`KademliaOverlay` with packed member and bucket storage.

    Limited to ``bits <= 64`` (the width of an ``array('Q')`` slot); the
    registry falls back to the object representation for wider identifier
    spaces.
    """

    representation = "columnar"

    def __init__(self, bits: int = 32, *, k: int = 16, alpha: int = 3,
                 rng: Optional[random.Random] = None) -> None:
        if bits > 64:
            raise InvalidConfigurationError(
                "the columnar Kademlia overlay packs identifiers into 64-bit "
                f"array slots and supports at most 64 bits, got {bits} "
                "(use the object representation for wider spaces)")
        super().__init__(bits=bits, k=k, alpha=alpha, rng=rng)
        # Same sorted-ascending invariant as the base class' list; the trie
        # descent bisects the packed column directly.
        self._members = array("Q")

    def _new_table(self, node_id: int) -> RoutingTable:
        return ArrayRoutingTable(node_id, self.bits, self.k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ColumnarKademliaOverlay(bits={self.bits}, k={self.k}, "
                f"nodes={len(self._members)})")
