"""Columnar Chord: packed 64-bit ring and finger tables.

The object :class:`~repro.dht.chord.ChordRing` keeps the sorted ring as a
``List[int]`` (one boxed ``int`` object per member) and every finger table as
another list of boxed ints.  At 100k peers that is hundreds of thousands of
28-byte integer objects plus list-of-pointer overhead, and every successor
bisect chases pointers.  This subclass stores both as ``array('Q')`` columns:
8 bytes per member, contiguous, still binary-searchable with :mod:`bisect`
(and with ``numpy.searchsorted`` through :mod:`repro.dht.columnar.accel`
when the ``repro[fast]`` extra is installed).

All protocol logic — successor rule, stabilisation staleness, greedy finger
routing, RNG usage — is inherited unchanged, so routes, traces and random
streams are bit-identical to the object representation (pinned by the
conformance and parity suites).
"""

from __future__ import annotations

import random
from array import array
from typing import Optional, Sequence, Set

from repro.dht.chord import ChordRing
from repro.dht.columnar import accel
from repro.dht.errors import InvalidConfigurationError

__all__ = ["ColumnarChordRing"]


class ColumnarChordRing(ChordRing):
    """A :class:`ChordRing` whose ring and fingers live in packed arrays.

    Limited to ``bits <= 64`` (the width of an ``array('Q')`` slot); the
    registry falls back to the object representation for wider identifier
    spaces.
    """

    representation = "columnar"

    def __init__(self, bits: int = 32, *, stabilization_interval: float = 30.0,
                 rng: Optional[random.Random] = None) -> None:
        if bits > 64:
            raise InvalidConfigurationError(
                "the columnar Chord ring packs identifiers into 64-bit array "
                f"slots and supports at most 64 bits, got {bits} "
                "(use the object representation for wider spaces)")
        super().__init__(bits=bits, stabilization_interval=stabilization_interval,
                         rng=rng)
        # Same sorted-ascending invariant as the base class' list; bisect and
        # insort operate on the packed column directly.
        self._members = array("Q")

    def _compute_fingers(self, node_id: int) -> Sequence[int]:
        """Finger ``i`` is the successor of ``node_id + 2^i``, packed.

        Identical entries in identical order to the base implementation
        (successor-per-exponent, deduplicated, self excluded) — only the
        container changes, and all ``bits`` successor searches are answered in
        one batched pass over the member column.
        """
        cached = self._current_fingers.get(node_id)
        if cached is not None:
            return cached
        members = self._members
        size = self.space_size
        targets = [(node_id + (1 << exponent)) % size
                   for exponent in range(self.bits)]
        entries = array("Q")
        seen: Set[int] = set()
        for position in accel.successor_positions(members, targets):
            finger = members[position]
            if finger != node_id and finger not in seen:
                seen.add(finger)
                entries.append(finger)
        self._current_fingers[node_id] = entries
        return entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnarChordRing(bits={self.bits}, nodes={len(self._members)})"
