"""Optional numpy acceleration for the columnar overlays (``repro[fast]``).

Every helper here has a pure-python fallback that produces *identical*
results, so installing numpy changes wall-clock time only — never routes,
traces or RNG streams.  The import is attempted once at module load; nothing
else in the package touches numpy directly, which keeps the optional
dependency confined to this single seam (and keeps the simulator stdlib-only
by default, per the project's determinism rules).

Determinism notes:

* :func:`xor_closest` relies on XOR distances being *unique* per contact
  (``a ^ t == b ^ t`` implies ``a == b``), so an unstable ``argsort`` over
  the distances is still a total, deterministic order.
* :func:`successor_positions` matches ``bisect.bisect_left`` exactly:
  ``numpy.searchsorted(..., side="left")`` is specified to return the same
  insertion points.
"""

from __future__ import annotations

import bisect
from array import array
from typing import Any, List, Optional, Sequence

__all__ = ["HAVE_NUMPY", "successor_positions", "xor_closest"]

_np: Optional[Any]
try:  # pragma: no cover - exercised only when the extra is installed
    import numpy as _numpy_module
except ImportError:
    _np = None
else:  # pragma: no cover - exercised only when the extra is installed
    _np = _numpy_module

#: Whether the ``repro[fast]`` extra (numpy) is available in this interpreter.
HAVE_NUMPY = _np is not None

#: Below this many packed entries the pure-python path wins: crossing into
#: numpy costs more than the scan it replaces.
_NUMPY_MIN_ENTRIES = 64


def _as_uint64(packed: "array[int]") -> Any:
    """Zero-copy uint64 view of a packed ``array('Q')`` column."""
    assert _np is not None
    return _np.frombuffer(packed, dtype=_np.uint64)


def xor_closest(contacts: "array[int]", target: int, count: int) -> List[int]:
    """The ``count`` contacts XOR-closest to ``target``, nearest first.

    Exactly equivalent to ``sorted(contacts, key=lambda c: c ^ target)[:count]``
    — the Kademlia nearest-neighbour rule.  The numpy path vectorises the
    distance computation and the argsort when the column is large enough to
    amortise the conversion cost.
    """
    if (
        _np is not None
        and len(contacts) >= _NUMPY_MIN_ENTRIES
        and contacts.itemsize == 8
    ):  # pragma: no cover - exercised only when the extra is installed
        ids = _as_uint64(contacts)
        order = _np.argsort(ids ^ _np.uint64(target))
        if count < len(order):
            order = order[:count]
        return [int(ids[position]) for position in order]
    return sorted(contacts, key=lambda contact: contact ^ target)[:count]


def successor_positions(
    members: "array[int]", targets: Sequence[int]
) -> List[int]:
    """Ring-successor index of each target point in a sorted member column.

    For each target ``t`` this is ``bisect_left(members, t) % len(members)``:
    the index of the first member ``>= t``, wrapping to index 0 past the top
    of the identifier space — Chord's successor rule.  ``members`` must be
    non-empty and sorted ascending.
    """
    size = len(members)
    if (
        _np is not None
        and size >= _NUMPY_MIN_ENTRIES
        and members.itemsize == 8
    ):  # pragma: no cover - exercised only when the extra is installed
        positions = _np.searchsorted(
            _as_uint64(members),
            _np.asarray(targets, dtype=_np.uint64),
            side="left",
        )
        return [int(position) % size for position in positions]
    return [bisect.bisect_left(members, target) % size for target in targets]
