"""Columnar overlay representations: flat-array hot state behind the registry.

The object-graph overlays (:class:`~repro.dht.chord.ChordRing`,
:class:`~repro.dht.can.CanSpace`,
:class:`~repro.dht.kademlia.KademliaOverlay`) keep per-node routing state in
boxed-int lists and dict-of-object tables.  That is the simulator's scaling
ceiling: at 100k+ peers the interpreter spends its time and memory on object
headers, not on the paper's algorithms.  This sub-package provides drop-in
representations of the same three protocols whose *hot* state lives in flat
``array('Q')`` columns:

* :class:`~repro.dht.columnar.chord.ColumnarChordRing` — the sorted ring is
  one packed 64-bit array searched with ``bisect``; finger tables are
  version-snapshotted packed arrays instead of per-node list-of-int graphs.
* :class:`~repro.dht.columnar.kademlia.ColumnarKademliaOverlay` — the member
  list is a packed array and every k-bucket is a packed ``array('Q')`` row;
  XOR-nearest scans vectorise through :mod:`repro.dht.columnar.accel` when
  numpy (the ``repro[fast]`` extra) is installed.
* :class:`~repro.dht.columnar.can.ColumnarCanSpace` — a struct-of-arrays zone
  table (packed-coordinate key -> slot -> owner column) answers point
  ownership by descending the canonical split tree in ``O(log n)`` instead of
  scanning every zone, which is what turns network construction from
  quadratic to ``O(n log n)``.

Behaviour is *bit-identical* to the object representation: same routes, same
affected sets, same RNG streams, same message accounting.  The columnar
classes subclass the object ones and override only storage-representation
hooks (``_new_table``, the CAN zone-table hooks, ``_compute_fingers``), so
the protocol logic itself is shared, and the conformance + fast-path parity
suites (``tests/dht``, ``tests/api``) pin the equivalence for every overlay.

Selection happens in :mod:`repro.dht.registry`: ``columnar`` is the default
representation; pass ``representation="object"`` (or set
``REPRO_OVERLAY_REPRESENTATION=object``) to build the object graphs instead.
Identifier spaces wider than 64 bits fall back to the object representation
because the packed columns hold 64-bit machine integers.
"""

from repro.dht.columnar.accel import HAVE_NUMPY
from repro.dht.columnar.can import ColumnarCanSpace
from repro.dht.columnar.chord import ColumnarChordRing
from repro.dht.columnar.kademlia import ArrayRoutingTable, ColumnarKademliaOverlay

#: Widest identifier space the packed ``array('Q')`` columns can hold.
MAX_COLUMNAR_BITS = 64

__all__ = [
    "ArrayRoutingTable",
    "ColumnarCanSpace",
    "ColumnarChordRing",
    "ColumnarKademliaOverlay",
    "HAVE_NUMPY",
    "MAX_COLUMNAR_BITS",
]
