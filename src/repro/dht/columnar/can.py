"""Columnar CAN: a struct-of-arrays zone table with canonical-tree lookup.

The object :class:`~repro.dht.can.CanSpace` answers "which node owns this
point?" by scanning every node's zone list — ``O(n)`` per miss, which makes
network *construction* quadratic (each join resolves an owner) and is the
single biggest scaling cliff of the simulator.  This subclass adds a
struct-of-arrays index over the same zone table:

* ``_zone_slots`` maps a zone's *packed bounds* (all ``2·d`` bound
  coordinates packed into one integer key) to a slot;
* ``_zone_owner`` is a packed ``array('Q')`` owner column indexed by slot,
  with a free list so churn recycles slots.

Ownership lookup exploits that CAN zones only ever arise from *canonical
halving splits*: a zone is split along its longest axis at the midpoint
(deterministic tie-break), halves are never merged, and takeover reassigns
zones intact.  Every live zone is therefore a node of one fixed binary tree
rooted at the whole space, and the zone containing a point is found by
descending that tree — split, keep the half containing the point, stop at
the first packed key present in the index — in ``O(log n)`` splits instead
of an ``O(n)`` scan.  That turns CAN network construction from quadratic to
``O(n log n)`` while producing exactly the same owner for every point.

The join/leave/takeover protocol itself is inherited unchanged (including
RNG draws), via the base class' ``_grant_zone``/``_revoke_zone``/
``_drop_node_zones`` hooks, so the behaviour stays bit-identical.
"""

from __future__ import annotations

import random
from array import array
from typing import Dict, List, Optional, Sequence

from repro.dht.can import CanSpace, Zone
from repro.dht.errors import EmptyNetworkError, InvalidConfigurationError

__all__ = ["ColumnarCanSpace"]


class ColumnarCanSpace(CanSpace):
    """A :class:`CanSpace` with a packed zone index for O(log n) ownership.

    Limited to ``bits <= 64`` for node identifiers (the width of the owner
    column's ``array('Q')`` slots); the registry falls back to the object
    representation for wider identifier spaces.
    """

    representation = "columnar"

    def __init__(self, bits: int = 32, *, dimensions: int = 2,
                 rng: Optional[random.Random] = None) -> None:
        if bits > 64:
            raise InvalidConfigurationError(
                "the columnar CAN space packs node identifiers into 64-bit "
                f"array slots and supports at most 64 bits, got {bits} "
                "(use the object representation for wider spaces)")
        super().__init__(bits=bits, dimensions=dimensions, rng=rng)
        self._zone_slots: Dict[int, int] = {}
        self._zone_owner: "array[int]" = array("Q")
        self._zone_free: List[int] = []

    # -------------------------------------------------------------- zone index
    def _pack_zone(self, zone: Zone) -> int:
        """Pack a zone's bounds into one integer key.

        Each bound coordinate lies in ``[0, axis_size]`` (inclusive upper
        bounds occur at the space edge), so it needs ``bits_per_dimension + 1``
        bits; the ``2·d`` bounds are concatenated.  Distinct zones always pack
        to distinct keys.
        """
        width = self.bits_per_dimension + 1
        packed = 0
        for low, high in zip(zone.lo, zone.hi):
            packed = (packed << (2 * width)) | (low << width) | high
        return packed

    def _grant_zone(self, node_id: int, zone: Zone) -> None:
        super()._grant_zone(node_id, zone)
        key = self._pack_zone(zone)
        slot = self._zone_slots.get(key)
        if slot is not None:
            # Defensive: a re-grant of an indexed zone just moves ownership.
            self._zone_owner[slot] = node_id
            return
        if self._zone_free:
            slot = self._zone_free.pop()
            self._zone_owner[slot] = node_id
        else:
            slot = len(self._zone_owner)
            self._zone_owner.append(node_id)
        self._zone_slots[key] = slot

    def _revoke_zone(self, node_id: int, zone: Zone) -> None:
        super()._revoke_zone(node_id, zone)
        self._release_key(self._pack_zone(zone))

    def _drop_node_zones(self, node_id: int) -> List[Zone]:
        abandoned = super()._drop_node_zones(node_id)
        for zone in abandoned:
            self._release_key(self._pack_zone(zone))
        return abandoned

    def _release_key(self, key: int) -> None:
        slot = self._zone_slots.pop(key, None)
        if slot is not None:
            self._zone_free.append(slot)

    # ----------------------------------------------------------- responsibility
    def _owner_of(self, coords: Sequence[int]) -> int:
        """Descend the canonical split tree to the zone containing ``coords``.

        Zones only ever arise from deterministic halving splits of the whole
        space (never merged; takeover reassigns them intact), so the live zone
        containing a point is reached by repeatedly splitting from the root
        and following the half containing the point until an indexed zone key
        is hit.  The descent is bounded by ``bits`` splits (each split halves
        one axis).
        """
        if not self._zones:
            raise EmptyNetworkError("the CAN space has no live nodes")
        zone = self._whole_space()
        for _ in range(self.bits + 1):
            slot = self._zone_slots.get(self._pack_zone(zone))
            if slot is not None:
                return self._zone_owner[slot]
            if max(high - low for low, high in zip(zone.lo, zone.hi)) < 2:
                break  # minimal zone missing from the index: inconsistency
            first, second = zone.split()
            zone = first if first.contains(coords) else second
        # Safety net: should be unreachable while the index mirrors the zone
        # table; fall back to the object representation's linear scan.
        return super()._owner_of(coords)  # pragma: no cover

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ColumnarCanSpace(bits={self.bits}, "
                f"dimensions={self.dimensions}, nodes={len(self._zones)})")
