"""Message accounting for DHT operations.

The paper's evaluation reports two quantities for every algorithm:

* *communication cost* — the total number of messages needed to answer a
  request (Figures 8 and 10);
* *response time* — the elapsed time of the request, which in the SimJava
  simulation is the accumulation of per-message latency and transfer delays
  (Figures 6, 7, 9, 11, 12).

Rather than duplicating the UMS/KTS/BRK algorithms for an "analytical" and an
"event-driven" mode, every public operation of the services records the exact
sequence of messages it caused into an :class:`OperationTrace`.  A cost model
(:mod:`repro.simulation.cost`) then converts a trace into a duration, and the
simulation harness schedules the completion of the operation accordingly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

__all__ = ["Message", "MessageKind", "MessageSizes", "OperationTrace"]


class MessageKind(str, enum.Enum):
    """Classification of messages exchanged by the services.

    The names follow the paper's terminology: ``TSR`` is a timestamp request
    sent to the responsible of timestamping (Section 4.1.1), ``LOOKUP_HOP`` is
    one routing hop of the DHT's lookup service, etc.
    """

    LOOKUP_HOP = "lookup-hop"
    LOOKUP_RETRY = "lookup-retry"
    GET_REQUEST = "get-request"
    GET_REPLY = "get-reply"
    PUT_REQUEST = "put-request"
    PUT_ACK = "put-ack"
    TSR = "timestamp-request"
    TSR_REPLY = "timestamp-reply"
    LAST_TS_REQUEST = "last-ts-request"
    LAST_TS_REPLY = "last-ts-reply"
    COUNTER_TRANSFER = "counter-transfer"
    DATA_TRANSFER = "data-transfer"
    CONTROL = "control"
    #: Delta replication (anti-entropy): the destination's compact timestamp
    #: summary of a span, and the source's reply carrying only the entries
    #: that advanced past it.
    SYNC_SUMMARY = "sync-summary"
    SYNC_DELTA = "sync-delta"


@dataclass(frozen=True)
class MessageSizes:
    """Message payload sizes in bytes used by the cost model.

    The paper does not report exact payload sizes; these defaults model small
    control messages and ~1 KiB data items, which combined with the 56 kbps
    mean bandwidth of Table 1 yields transfer delays comparable to the paper's
    absolute response times.
    """

    control_bytes: int = 128
    data_bytes: int = 1024

    def size_of(self, kind: MessageKind) -> int:
        """Payload size for a message of ``kind``."""
        if kind in (MessageKind.GET_REPLY, MessageKind.PUT_REQUEST,
                    MessageKind.DATA_TRANSFER, MessageKind.SYNC_DELTA):
            return self.data_bytes
        return self.control_bytes


@dataclass(frozen=True)
class Message:
    """One network message recorded in an operation trace."""

    kind: MessageKind
    size_bytes: int
    source: Optional[int] = None
    dest: Optional[int] = None
    timed_out: bool = False


class OperationTrace:
    """Accumulates the messages (and timeouts) caused by one service operation.

    Traces compose: a UMS ``retrieve`` merges the trace of its embedded KTS
    ``last_ts`` call with the traces of the ``get_h`` probes it performs.
    """

    def __init__(self, sizes: Optional[MessageSizes] = None) -> None:
        self.sizes = sizes if sizes is not None else MessageSizes()
        self._messages: List[Message] = []

    # ------------------------------------------------------------------ basic
    @property
    def messages(self) -> Tuple[Message, ...]:
        """The recorded messages, in the order they were sent."""
        return tuple(self._messages)

    @property
    def message_count(self) -> int:
        """Total number of messages (the paper's *communication cost*)."""
        return len(self._messages)

    @property
    def total_bytes(self) -> int:
        """Total payload bytes across all messages."""
        return sum(message.size_bytes for message in self._messages)

    @property
    def timeout_count(self) -> int:
        """Number of messages that hit a dead peer and timed out."""
        return sum(1 for message in self._messages if message.timed_out)

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._messages)

    # -------------------------------------------------------------- recording
    def record(self, kind: MessageKind, *, source: Optional[int] = None,
               dest: Optional[int] = None, size_bytes: Optional[int] = None,
               timed_out: bool = False) -> Message:
        """Record a single message and return it."""
        if size_bytes is None:
            size_bytes = self.sizes.size_of(kind)
        message = Message(kind=kind, size_bytes=size_bytes, source=source,
                          dest=dest, timed_out=timed_out)
        self._messages.append(message)
        return message

    def record_route(self, path: Iterable[int], *, retries: int = 0,
                     timeouts: int = 0) -> None:
        """Record the hop messages of a routing path.

        Parameters
        ----------
        path:
            The sequence of node identifiers visited, starting at the origin.
            A path of ``n`` nodes costs ``n - 1`` hop messages.
        retries:
            Extra messages spent re-routing around departed fingers.
        timeouts:
            How many of those retries waited for a timeout (failed peers).
        """
        nodes = list(path)
        for source, dest in zip(nodes, nodes[1:]):
            self.record(MessageKind.LOOKUP_HOP, source=source, dest=dest)
        for index in range(retries):
            self.record(MessageKind.LOOKUP_RETRY, timed_out=index < timeouts)

    def record_request_reply(self, request_kind: MessageKind,
                             reply_kind: MessageKind, *,
                             source: Optional[int] = None,
                             dest: Optional[int] = None) -> None:
        """Record a request message and its reply."""
        self.record(request_kind, source=source, dest=dest)
        self.record(reply_kind, source=dest, dest=source)

    def merge(self, other: "OperationTrace") -> "OperationTrace":
        """Append all messages of ``other`` to this trace (returns ``self``)."""
        self._messages.extend(other._messages)
        return self

    # -------------------------------------------------------------- reporting
    def count_by_kind(self) -> dict:
        """Histogram of message kinds, useful for debugging and reporting."""
        histogram: dict = {}
        for message in self._messages:
            histogram[message.kind] = histogram.get(message.kind, 0) + 1
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"OperationTrace(messages={self.message_count}, "
                f"timeouts={self.timeout_count}, bytes={self.total_bytes})")
