"""Abstract DHT model (Section 2.1 of the paper).

The paper models a DHT by its *mapping function* ``m(k, h, t)``: the peer that
is responsible for key ``k`` with respect to hash function ``h`` at time ``t``.
This module provides:

* :class:`DHTProtocol` — the interface the overlay implementations (Chord,
  CAN) provide to the network layer: membership changes, responsibility
  resolution (``rsp(k, h)``) and greedy routing paths;
* :class:`ResponsibilityLog` — a record of responsibility periods
  (Definition 1 / Example 1), exposing ``rsp``, ``prsp`` and the list of
  ``[t0..t1)`` periods of responsibility for a key;
* small result dataclasses shared by the overlays and the network layer.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "DHTProtocol",
    "DepartureReason",
    "LookupResult",
    "ResponsibilityLog",
    "ResponsibilityPeriod",
    "RouteResult",
]


#: How a node left the overlay; normal leaves allow the direct counter
#: initialisation algorithm, failures force the indirect one.
class DepartureReason:
    LEAVE = "leave"
    FAIL = "fail"


#: Bound of the per-overlay point -> responsible memo (cleared on membership
#: changes and when full).
_RSP_CACHE_SIZE = 1 << 16


@dataclass(frozen=True)
class RouteResult:
    """Result of routing from an origin node towards an identifier point.

    Attributes
    ----------
    path:
        Node identifiers visited, starting at the origin and ending at the
        responsible node.  ``len(path) - 1`` is the number of routing hops.
    responsible:
        The node responsible for the target point (always ``path[-1]``).
    retries:
        Extra messages spent skipping fingers that point to departed nodes.
    timeouts:
        How many of those retries hit a *failed* node (these cost a timeout
        delay in the cost model; nodes that left normally redirect cheaply).
    """

    path: Tuple[int, ...]
    responsible: int
    retries: int = 0
    timeouts: int = 0

    @property
    def hops(self) -> int:
        """Number of routing hops (messages) along the path."""
        return max(0, len(self.path) - 1)

    @property
    def message_count(self) -> int:
        """Total messages attributable to the route, including retries."""
        return self.hops + self.retries


@dataclass(frozen=True)
class LookupResult:
    """Result of the DHT lookup service for ``rsp(k, h)`` seen from a peer."""

    key: object
    hash_name: str
    point: int
    responsible: int
    route: RouteResult

    @property
    def hops(self) -> int:
        return self.route.hops


class DHTProtocol(abc.ABC):
    """Interface of an overlay protocol (Chord, CAN).

    The overlay tracks only membership and responsibility over the identifier
    space ``[0, 2^bits)``; data placement, replication and services live above
    it (in :class:`repro.dht.network.DHTNetwork` and :mod:`repro.core`).
    """

    #: number of bits of the identifier space
    bits: int

    #: Storage representation of the overlay's hot state: ``"object"`` for the
    #: reference object graphs, ``"columnar"`` for the packed-array classes in
    #: :mod:`repro.dht.columnar`.  Representations are behaviourally
    #: interchangeable; the attribute only serves diagnostics and bench
    #: metadata.
    representation: str = "object"

    #: Membership version counter.  Implementations increment it on every
    #: ``add_node``/``remove_node`` (via :meth:`_membership_changed`) so that
    #: responsibility and routing-state caches (both the overlay's own and any
    #: held by callers) can be keyed on the version and invalidated
    #: incrementally instead of recomputed per query.  Overlays that never
    #: change membership may leave it at 0.
    version: int = 0

    @property
    def protocol_name(self) -> str:
        """Representation-independent protocol name.

        The columnar classes subclass the object ones, so the *protocol* a
        peer speaks is named by the deepest base class that directly
        subclasses :class:`DHTProtocol` (``"ChordRing"`` whether the ring is
        object-graph or columnar).  Wire-level info and experiment metadata
        use this so artifacts stay comparable across representations.
        """
        for klass in type(self).__mro__:
            if DHTProtocol in klass.__bases__:
                return klass.__name__
        return type(self).__name__

    # --------------------------------------------- versioned-cache plumbing
    # Shared by the overlay implementations so the invalidation protocol
    # lives in exactly one place: call ``_init_version_caches()`` during
    # construction, ``_membership_changed()`` after every membership
    # mutation, and serve ``responsible_for``/``nodes`` through the memo
    # helpers.  Subclasses with additional version-keyed caches clear them in
    # ``_clear_version_caches``.

    def _init_version_caches(self) -> None:
        self.version = 0
        self._rsp_cache: Dict[int, int] = {}
        self._nodes_cache: Optional[Tuple[int, ...]] = None

    def _membership_changed(self) -> None:
        """Advance the membership version and drop every version-keyed cache."""
        self.version += 1
        self._rsp_cache.clear()
        self._nodes_cache = None
        self._clear_version_caches()

    def _clear_version_caches(self) -> None:
        """Hook: subclasses drop any additional version-keyed caches here."""

    def _memoised_responsible(self, point: int,
                              compute: Callable[[int], int]) -> int:
        """Bounded point -> responsible memo, valid for the current version."""
        cached = self._rsp_cache.get(point)
        if cached is None:
            cached = compute(point)
            if len(self._rsp_cache) >= _RSP_CACHE_SIZE:
                self._rsp_cache.clear()
            self._rsp_cache[point] = cached
        return cached

    def _cached_nodes(self, materialise: Callable[[], Tuple[int, ...]]
                      ) -> Tuple[int, ...]:
        """Node tuple for the current version (random-origin draws are hot)."""
        if self._nodes_cache is None:
            self._nodes_cache = materialise()
        return self._nodes_cache

    # --------------------------------------------------------------- topology
    @abc.abstractmethod
    def add_node(self, node_id: int, *, now: float = 0.0) -> Set[int]:
        """Add ``node_id`` to the overlay.

        Returns the set of *affected* live nodes — the nodes that may have
        lost responsibility for part of their identifier range to the new
        node.  The network layer re-examines their stored data and hands over
        what now belongs to the newcomer (this is what makes the overlay
        *Responsibility Loss Aware*, Section 4.3).
        """

    @abc.abstractmethod
    def remove_node(self, node_id: int, *, reason: str = DepartureReason.LEAVE,
                    now: float = 0.0) -> None:
        """Remove ``node_id`` from the overlay (normal leave or failure)."""

    @abc.abstractmethod
    def nodes(self) -> Sequence[int]:
        """Identifiers of the live nodes, in protocol-defined order."""

    @abc.abstractmethod
    def __contains__(self, node_id: int) -> bool:
        """Whether ``node_id`` is a live overlay node."""

    def __len__(self) -> int:
        return len(self.nodes())

    # ----------------------------------------------------------- responsibility
    @abc.abstractmethod
    def responsible_for(self, point: int) -> int:
        """The live node currently responsible for identifier ``point``.

        This is the overlay-level realisation of the paper's ``rsp(k, h)``
        where ``point = h(k)``.
        """

    @abc.abstractmethod
    def next_responsible(self, point: int) -> Optional[int]:
        """The node that would take over ``point`` if its responsible departed.

        This is the paper's ``nrsp(k, h)``.  Both Chord and CAN guarantee the
        next responsible is a *neighbour* of the current one (Section 4.2.1),
        which is what makes the direct counter-transfer algorithm O(1).
        """

    @abc.abstractmethod
    def neighbors(self, node_id: int) -> Set[int]:
        """The overlay neighbours of ``node_id`` (routing-table peers)."""

    def claimed_span(self, node_id: int) -> Optional[Tuple[int, int]]:
        """The contiguous identifier interval owned by ``node_id``, if any.

        Overlays whose responsibility regions are contiguous in the integer
        identifier space (Chord) return the wrapping interval
        ``(predecessor, node_id]`` so the network layer can hand data over
        with a range scan of the stores' point indexes.  Overlays with
        non-contiguous regions (CAN's packed coordinates, Kademlia's XOR
        balls) return ``None`` and the network falls back to a per-point
        responsibility check.
        """
        return None

    # ------------------------------------------------------------------ routing
    @abc.abstractmethod
    def route(self, origin: int, point: int, *, now: float = 0.0) -> RouteResult:
        """Greedy-route from ``origin`` towards ``point``.

        The returned path ends at ``responsible_for(point)``.  Implementations
        model routing-state staleness (e.g. Chord fingers pointing at departed
        peers) through the ``retries``/``timeouts`` fields of the result.
        """

    # ---------------------------------------------------------------- utilities
    def random_node(self, rng: random.Random) -> int:
        """A uniformly random live node (raises ``IndexError`` when empty)."""
        members = self.nodes()
        return members[rng.randrange(len(members))]


@dataclass(frozen=True)
class ResponsibilityPeriod:
    """A half-open interval ``[start..end)`` during which ``peer`` was
    responsible for a key (``end`` is ``None`` while the period is open)."""

    peer: int
    start: float
    end: Optional[float] = None

    def contains(self, time: float) -> bool:
        """Whether ``time`` falls inside the period."""
        if time < self.start:
            return False
        return self.end is None or time < self.end


class ResponsibilityLog:
    """History of the mapping function ``m(k, h, t)`` for a set of tracked keys.

    The network layer records a transition every time the responsible for a
    tracked ``(key, hash)`` pair changes.  The log then answers the queries the
    paper defines in Section 2.1: current responsible ``rsp``, previous
    responsible ``prsp`` and the periods of responsibility.
    """

    def __init__(self) -> None:
        self._periods: Dict[Tuple[object, str], List[ResponsibilityPeriod]] = {}

    def record(self, key: object, hash_name: str, peer: int, time: float) -> None:
        """Record that ``peer`` became responsible for ``(key, hash_name)`` at ``time``.

        Recording the same peer twice in a row is a no-op (the responsibility
        did not actually change).
        """
        history = self._periods.setdefault((key, hash_name), [])
        if history and history[-1].peer == peer and history[-1].end is None:
            return
        if history and history[-1].end is None:
            history[-1] = ResponsibilityPeriod(peer=history[-1].peer,
                                               start=history[-1].start, end=time)
        history.append(ResponsibilityPeriod(peer=peer, start=time))

    def periods(self, key: object, hash_name: str) -> List[ResponsibilityPeriod]:
        """All recorded periods of responsibility for ``(key, hash_name)``."""
        return list(self._periods.get((key, hash_name), []))

    def rsp(self, key: object, hash_name: str) -> Optional[int]:
        """The peer currently responsible for the key (paper's ``rsp(k,h)``)."""
        history = self._periods.get((key, hash_name))
        if not history:
            return None
        return history[-1].peer

    def prsp(self, key: object, hash_name: str) -> Optional[int]:
        """The peer that was responsible just before the current one."""
        history = self._periods.get((key, hash_name))
        if not history or len(history) < 2:
            return None
        return history[-2].peer

    def responsible_at(self, key: object, hash_name: str,
                       time: float) -> Optional[int]:
        """Evaluate the mapping function ``m(k, h, t)`` from the log."""
        for period in self._periods.get((key, hash_name), []):
            if period.contains(time):
                return period.peer
        return None

    def tracked(self) -> List[Tuple[object, str]]:
        """The ``(key, hash_name)`` pairs with at least one recorded period."""
        return list(self._periods.keys())
