"""Kademlia overlay (Maymounkov & Mazières, IPTPS 2002).

Kademlia organises peers by the *XOR metric*: the distance between two
identifiers is their bitwise exclusive-or interpreted as an integer.  The
metric is symmetric, satisfies the triangle inequality and is *unidirectional*
— for any point there is exactly one node at a given distance — so the peer
responsible for a key is simply the live node whose identifier is XOR-closest
to ``h(k)``.

The paper's UMS/KTS design (Section 2) is deliberately DHT-agnostic: it only
needs the lookup service, ``put_h``/``get_h`` and responsibility-change
notifications.  This module provides the third overlay (after Chord and CAN)
implementing :class:`repro.dht.model.DHTProtocol`, which lets the services and
the simulation harness run over Kademlia unchanged and stress-tests the
paper's claim that timestamp correctness survives dynamic membership
regardless of the routing substrate.

Routing state and churn realism
-------------------------------
Every node keeps a routing table of *k-buckets*: bucket ``i`` holds up to
``k`` contacts whose XOR distance to the node has its top bit at position
``i`` (i.e. contacts sharing exactly ``bits - 1 - i`` leading prefix bits).
Buckets are maintained with Kademlia's least-recently-seen eviction policy:
contacts are kept in least-recently-seen order, a contact that communicates
moves to the tail, and when a full bucket sees a new contact the
least-recently-seen entry is pinged — if it is still alive the newcomer is
dropped (long-lived contacts are the most reliable ones), otherwise it is
evicted and the newcomer appended.

Lookups are *iterative*: the origin repeatedly queries the closest contact it
knows of, each queried node answers with the ``k`` closest contacts from its
own buckets, and the search stops when no contact closer than the best node
already queried remains.  Tables are only updated through this traffic (there
is no global stabilisation), so after churn they may still hold departed
contacts; querying one costs a retry message — plus a timeout when the
contact *failed* rather than left — exactly the staleness mechanism behind
the paper's Figure 11.

Responsibility handover
-----------------------
On a join the set of nodes that can lose part of the identifier space to the
newcomer ``u`` is exactly the set of live nodes with the *longest* common
prefix with ``u`` (the occupants of the bucket that ``u`` splits): viewing
the membership as a binary trie, every point that ``u`` steals used to fall
through ``u``'s attach point into that sibling subtree.  ``add_node`` returns
this set, which makes the overlay Responsibility Loss Aware (Section 4.3) —
the network layer re-examines only those nodes' stores, and KTS transfers
only those nodes' displaced counters.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    MutableSequence,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.dht.errors import (
    EmptyNetworkError,
    InvalidConfigurationError,
    NodeAlreadyPresentError,
    NoSuchPeerError,
)
from repro.dht.model import DepartureReason, DHTProtocol, RouteResult

__all__ = [
    "KBucket",
    "KademliaOverlay",
    "RoutingTable",
    "common_prefix_length",
    "xor_distance",
]


def xor_distance(first: int, second: int) -> int:
    """The Kademlia distance ``d(a, b) = a XOR b``."""
    return first ^ second


def common_prefix_length(first: int, second: int, bits: int) -> int:
    """Number of leading bits shared by two ``bits``-wide identifiers."""
    distance = first ^ second
    if distance == 0:
        return bits
    return bits - distance.bit_length()


@dataclass
class KBucket:
    """One k-bucket: up to ``capacity`` contacts in least-recently-seen order.

    ``contacts[0]`` is the least recently seen contact, ``contacts[-1]`` the
    most recently seen one.
    """

    capacity: int
    contacts: List[int] = field(default_factory=list)

    def __contains__(self, contact: int) -> bool:
        return contact in self.contacts

    def __len__(self) -> int:
        return len(self.contacts)

    @property
    def full(self) -> bool:
        return len(self.contacts) >= self.capacity

    def observe(self, contact: int, is_alive: Callable[[int], bool]) -> bool:
        """Record direct communication with ``contact`` (Kademlia's update rule).

        A known contact moves to the most-recently-seen end.  A new contact is
        appended while there is room; when the bucket is full the
        least-recently-seen entry is pinged: if it answers it moves to the
        tail and the newcomer is dropped, otherwise it is evicted and the
        newcomer takes its place.  Returns ``True`` when ``contact`` is in the
        bucket afterwards.
        """
        if contact in self.contacts:
            self.contacts.remove(contact)
            self.contacts.append(contact)
            return True
        if not self.full:
            self.contacts.append(contact)
            return True
        least_recently_seen = self.contacts[0]
        if is_alive(least_recently_seen):
            # The LRS contact answered the ping: keep it (old contacts are the
            # most likely to stay online) and drop the newcomer.
            self.contacts.pop(0)
            self.contacts.append(least_recently_seen)
            return False
        self.contacts.pop(0)
        self.contacts.append(contact)
        return True

    def learn(self, contact: int) -> bool:
        """Record a contact learned second-hand (from a lookup reply).

        Passively learned contacts never displace existing entries and do not
        refresh recency; they are only appended when there is room.
        """
        if contact in self.contacts:
            return True
        if self.full:
            return False
        self.contacts.append(contact)
        return True

    def discard(self, contact: int) -> None:
        """Drop ``contact`` (e.g. after it failed to answer a lookup)."""
        try:
            self.contacts.remove(contact)
        except ValueError:
            pass


class RoutingTable:
    """The k-buckets of one node, indexed by XOR-distance magnitude.

    Bucket ``i`` holds contacts at distance ``[2^i, 2^(i+1))`` from the owner,
    i.e. contacts whose common prefix with the owner is ``bits - 1 - i`` bits.
    Buckets are created lazily; most of the ``bits`` buckets stay empty.
    """

    def __init__(self, owner: int, bits: int, k: int) -> None:
        self.owner = owner
        self.bits = bits
        self.k = k
        self._buckets: Dict[int, KBucket] = {}

    def bucket_index(self, contact: int) -> int:
        """Index of the bucket responsible for ``contact``."""
        distance = self.owner ^ contact
        if distance == 0:
            raise InvalidConfigurationError(
                f"node {self.owner} cannot keep itself in its routing table")
        return distance.bit_length() - 1

    def bucket(self, index: int) -> KBucket:
        """The bucket at ``index`` (created empty on first access)."""
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = KBucket(capacity=self.k)
            self._buckets[index] = bucket
        return bucket

    def observe(self, contact: int, is_alive: Callable[[int], bool]) -> bool:
        """Record direct communication with ``contact``."""
        if contact == self.owner:
            return False
        return self.bucket(self.bucket_index(contact)).observe(contact, is_alive)

    def learn(self, contact: int) -> bool:
        """Record a contact learned from a lookup reply."""
        if contact == self.owner:
            return False
        return self.bucket(self.bucket_index(contact)).learn(contact)

    def discard(self, contact: int) -> None:
        """Drop ``contact`` from its bucket, if present."""
        if contact == self.owner:
            return
        bucket = self._buckets.get(self.bucket_index(contact))
        if bucket is not None:
            bucket.discard(contact)

    def contacts(self) -> List[int]:
        """Every contact currently held, over all buckets."""
        entries: List[int] = []
        for index in sorted(self._buckets):
            entries.extend(self._buckets[index].contacts)
        return entries

    def closest(self, point: int, count: int) -> List[int]:
        """The ``count`` known contacts closest (XOR) to ``point``."""
        return sorted(self.contacts(), key=lambda contact: contact ^ point)[:count]

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        populated = sum(1 for bucket in self._buckets.values() if len(bucket))
        return (f"RoutingTable(owner={self.owner}, contacts={len(self)}, "
                f"buckets={populated})")


class KademliaOverlay(DHTProtocol):
    """A Kademlia overlay over the integer identifier space ``[0, 2^bits)``.

    Parameters
    ----------
    bits:
        Size of the identifier space; the same 32-bit default as the other
        overlays so one hash family drives all of them.
    k:
        Bucket capacity (the system-wide replication/bucket parameter of the
        Kademlia paper; 20 there, a smaller default here to match the
        simulated population sizes).
    alpha:
        Lookup concurrency of the original protocol.  The simulated lookup is
        sequential (messages, not wall-clock, are what the cost model needs),
        but ``alpha`` is kept as the number of fallback candidates retained
        per iteration.
    rng:
        Random source used for bootstrap-contact selection on joins.
    """

    def __init__(self, bits: int = 32, *, k: int = 16, alpha: int = 3,
                 rng: Optional[random.Random] = None) -> None:
        if not 3 <= bits <= 160:
            raise InvalidConfigurationError(
                f"kademlia identifier space must use between 3 and 160 bits, got {bits}")
        if k < 1:
            raise InvalidConfigurationError("bucket capacity k must be >= 1")
        if alpha < 1:
            raise InvalidConfigurationError("lookup concurrency alpha must be >= 1")
        self.bits = bits
        self.k = k
        self.alpha = alpha
        self._rng = rng if rng is not None else random.Random(0)
        # Sorted live node identifiers.  Declared as a mutable sequence so the
        # columnar subclass can swap in a packed array('Q') column.
        self._members: MutableSequence[int] = []
        self._member_set: Set[int] = set()
        self._departed: Dict[int, Tuple[str, float]] = {}
        self._tables: Dict[int, RoutingTable] = {}
        # Routing *tables* mutate continuously with lookup traffic, but XOR
        # responsibility depends only on the live membership, so the
        # point -> closest-member memo keys on the version counter alone.
        self._init_version_caches()

    # ------------------------------------------------------------------ sizing
    @property
    def space_size(self) -> int:
        """Number of points in the identifier space."""
        return 1 << self.bits

    def nodes(self) -> Sequence[int]:
        return self._cached_nodes(lambda: tuple(self._members))

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._member_set

    def __len__(self) -> int:
        return len(self._members)

    def _is_live(self, node_id: int) -> bool:
        return node_id in self._member_set

    # -------------------------------------------------------------- membership
    def add_node(self, node_id: int, *, now: float = 0.0) -> Set[int]:
        if not 0 <= node_id < self.space_size:
            raise InvalidConfigurationError(
                f"node id {node_id} outside identifier space [0, 2^{self.bits})")
        if node_id in self._member_set:
            raise NodeAlreadyPresentError(node_id)
        affected = self._deepest_bucket_members(node_id)
        index = bisect.bisect_left(self._members, node_id)
        self._members.insert(index, node_id)
        self._member_set.add(node_id)
        self._departed.pop(node_id, None)
        self._membership_changed()
        table = self._new_table(node_id)
        self._tables[node_id] = table
        if affected:
            # Join protocol: seed the table with a bootstrap contact (a
            # uniformly random member other than the newcomer), then look up
            # the own identifier to populate the buckets near it.
            draw = self._rng.randrange(len(self._members) - 1)
            bootstrap = self._members[draw if draw < index else draw + 1]
            table.observe(bootstrap, self._is_live)
            self._iterative_lookup(node_id, node_id, self_distance=None)
            # The newcomer and the nodes it displaces exchange the handover
            # traffic, so they learn about each other directly.
            for previous_owner in affected:
                self._observe(node_id, previous_owner)
                self._observe(previous_owner, node_id)
        return affected

    def _new_table(self, node_id: int) -> RoutingTable:
        """Representation hook: build the routing table of a joining node.

        The columnar overlay (:mod:`repro.dht.columnar.kademlia`) overrides
        this to return packed-array-backed buckets; the routing algorithms
        above only use the :class:`RoutingTable` API, so the two
        representations stay behaviourally identical.
        """
        return RoutingTable(node_id, self.bits, self.k)

    def _deepest_bucket_members(self, node_id: int) -> Set[int]:
        """The live nodes sharing the longest common prefix with ``node_id``.

        Viewing the membership as a binary trie, these are the occupants of
        the sibling subtree at ``node_id``'s attach point — exactly the nodes
        a join can steal identifier points from (see the module docstring).
        Found by descending the sorted member list as a trie: follow
        ``node_id``'s bits while members still share the prefix; the interval
        reached when no member shares the next bit is the deepest bucket.
        """
        if not self._members:
            return set()
        members = self._members
        lo, hi, prefix = 0, len(members), 0
        for bit in range(self.bits - 1, -1, -1):
            mid_value = prefix | (1 << bit)
            split = bisect.bisect_left(members, mid_value, lo, hi)
            if node_id & (1 << bit):
                if split == hi:
                    break  # nobody shares the next bit: [lo, hi) is the bucket
                lo, prefix = split, mid_value
            else:
                if split == lo:
                    break
                hi = split
        return set(members[lo:hi])

    def remove_node(self, node_id: int, *, reason: str = DepartureReason.LEAVE,
                    now: float = 0.0) -> None:
        if node_id not in self._member_set:
            raise NoSuchPeerError(node_id)
        index = bisect.bisect_left(self._members, node_id)
        self._members.pop(index)
        self._member_set.discard(node_id)
        self._tables.pop(node_id, None)
        self._departed[node_id] = (reason, now)
        self._membership_changed()
        # Other nodes keep the departed contact in their buckets until a
        # lookup runs into it (stale-state realism; there is no oracle purge).

    def departure_reason(self, node_id: int) -> Optional[str]:
        """How a departed node left (``"leave"``/``"fail"``), if known."""
        record = self._departed.get(node_id)
        return record[0] if record else None

    # ----------------------------------------------------------- responsibility
    def _descend(self, point: int, lo: int, hi: int
                 ) -> Tuple[int, Optional[Tuple[int, int]]]:
        """Trie-descend the sorted member slice ``[lo, hi)`` towards ``point``.

        The members sharing any given prefix form a contiguous slice, so the
        binary trie over the membership can be walked with two bisects per
        bit, narrowing to the half matching ``point``'s next bit (falling
        back to the other half when it is empty) — ``O(bits · log n)``
        instead of a linear scan.

        Returns ``(index, sibling)``: the index of the XOR-closest member and
        the deepest non-empty sibling slice passed on the way down (or
        ``None`` when the slice was a single member).  The runner-up in XOR
        distance always lives in that deepest sibling — it shares the longest
        prefix with ``point`` among all non-winners — which is what answers
        ``nrsp``.
        """
        members = self._members
        prefix = 0
        sibling: Optional[Tuple[int, int]] = None
        for bit in range(self.bits - 1, -1, -1):
            if hi - lo == 1:
                break
            mid_value = prefix | (1 << bit)
            split = bisect.bisect_left(members, mid_value, lo, hi)
            if point & (1 << bit):
                if split < hi:
                    if split > lo:
                        sibling = (lo, split)
                    lo, prefix = split, mid_value
                # else: every member has this bit clear; the prefix keeps a 0.
            else:
                if split > lo:
                    if split < hi:
                        sibling = (split, hi)
                    hi = split
                else:
                    prefix = mid_value  # every member has this bit set
        return lo, sibling

    def responsible_for(self, point: int) -> int:
        if not self._members:
            raise EmptyNetworkError("the Kademlia overlay has no live nodes")
        point %= self.space_size
        return self._memoised_responsible(
            point,
            lambda p: self._members[self._descend(p, 0, len(self._members))[0]])

    def next_responsible(self, point: int) -> Optional[int]:
        """``nrsp``: the second XOR-closest live node to ``point``.

        The XOR metric is static (unlike zone splits in CAN), so the node that
        takes over after the responsible departs is always the current
        runner-up in distance.
        """
        if len(self._members) < 2:
            return None
        point %= self.space_size
        _, sibling = self._descend(point, 0, len(self._members))
        if sibling is None:  # pragma: no cover - unreachable with >= 2 members
            return None
        return self._members[self._descend(point, sibling[0], sibling[1])[0]]

    def neighbors(self, node_id: int) -> Set[int]:
        """The live contacts currently held in ``node_id``'s k-buckets."""
        table = self._table_of(node_id)
        return {contact for contact in table.contacts() if contact in self._member_set}

    # ------------------------------------------------------------------ routing
    def route(self, origin: int, point: int, *, now: float = 0.0) -> RouteResult:
        if origin not in self._member_set:
            raise NoSuchPeerError(origin)
        point %= self.space_size
        responsible = self.responsible_for(point)
        path, retries, timeouts = self._iterative_lookup(
            origin, point, self_distance=origin ^ point)
        if path[-1] != responsible:
            # Safety net (as in the other overlays): very sparse or very stale
            # tables may leave the iterative search short of the true closest
            # node; the final forced hop keeps the route well-defined and is
            # charged as a normal message.
            path.append(responsible)
        return RouteResult(path=tuple(path), responsible=responsible,
                           retries=retries, timeouts=timeouts)

    def _iterative_lookup(self, origin: int, target: int, *,
                          self_distance: Optional[int]) -> Tuple[List[int], int, int]:
        """Kademlia's iterative node lookup, with message accounting.

        Returns ``(path, retries, timeouts)``: the nodes queried in order
        (starting at ``origin``), the number of queries that hit departed
        contacts, and how many of those had *failed* (timeout cost).

        ``self_distance`` is the origin's own distance to the target; a
        lookup stops once no known contact improves on the best node queried
        so far.  Passing ``None`` (bootstrap self-lookup) forces at least one
        round of queries even though the origin is trivially closest to its
        own identifier.
        """
        table = self._tables[origin]
        shortlist: Set[int] = set(table.contacts())
        shortlist.discard(origin)
        queried: Set[int] = {origin}
        dead: Set[int] = set()
        path: List[int] = [origin]
        retries = 0
        timeouts = 0
        best_distance = self_distance
        limit = 4 * self.bits + len(self._members)
        while len(path) + retries <= limit:
            candidates = [contact for contact in shortlist if contact not in queried]
            if not candidates:
                break
            candidate = min(candidates, key=lambda contact: contact ^ target)
            if best_distance is not None and candidate ^ target >= best_distance:
                break  # converged: nobody known is closer than the best queried
            queried.add(candidate)
            if candidate not in self._member_set:
                # Stale bucket entry: the query is wasted (a retry); failures
                # additionally cost a timeout in the cost model.  The origin
                # drops the unresponsive contact from its table.
                reason = self._departed.get(candidate, (DepartureReason.LEAVE, 0.0))[0]
                retries += 1
                if reason == DepartureReason.FAIL:
                    timeouts += 1
                dead.add(candidate)
                table.discard(candidate)
                shortlist.discard(candidate)
                continue
            path.append(candidate)
            # Direct communication updates both parties' buckets...
            self._observe(origin, candidate)
            self._observe(candidate, origin)
            # ...and the reply carries the k contacts closest to the target
            # from the queried node's table, which the origin learns (except
            # contacts this very lookup already found to be dead).
            for learned in self._tables[candidate].closest(target, self.k):
                if learned != origin and learned not in dead:
                    shortlist.add(learned)
                    table.learn(learned)
            distance = candidate ^ target
            if best_distance is None or distance < best_distance:
                best_distance = distance
            if distance == 0:
                break
        return path, retries, timeouts

    def _observe(self, node_id: int, contact: int) -> None:
        table = self._tables.get(node_id)
        if table is not None and contact != node_id:
            table.observe(contact, self._is_live)

    # ---------------------------------------------------------------- utilities
    def routing_table(self, node_id: int) -> RoutingTable:
        """The k-buckets of a live node (read access for tests/diagnostics)."""
        return self._table_of(node_id)

    def _table_of(self, node_id: int) -> RoutingTable:
        table = self._tables.get(node_id)
        if table is None:
            raise NoSuchPeerError(node_id)
        return table

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"KademliaOverlay(bits={self.bits}, k={self.k}, "
                f"nodes={len(self._members)})")
