"""Per-peer local storage of replicated pairs ``(k, {data, timestamp})``.

Each peer of the DHT stores, for every replication hash function ``h`` for
which it is ``rsp(k, h)``, the pair ``(k, newData)`` where ``newData`` bundles
the application data with either a KTS timestamp (UMS) or a version number
(the BRK baseline).  The store implements the peer-side reconciliation rule of
the paper's ``insert`` operation: an incoming replica only overwrites the local
one if it carries a strictly newer timestamp (respectively a newer version).
"""

from __future__ import annotations

import bisect
from array import array
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["LocalStore", "StoredValue", "advanced_past", "reconciliation_token"]


@dataclass(frozen=True)
class StoredValue:
    """One replica stored at a peer.

    Attributes
    ----------
    key:
        The application-level key ``k``.
    data:
        The application data.
    timestamp:
        The KTS timestamp attached by UMS (``None`` for BRK replicas).
        Any totally-ordered value works; the services use
        :class:`repro.core.timestamps.Timestamp`.
    version:
        The BRICKS-style version number (``None`` for UMS replicas).
    hash_name:
        Name of the replication hash function under which the replica was
        placed (identifies *which* replica of ``k`` this is).
    point:
        The identifier-space point ``h(k)``; kept so churn-induced rebalancing
        does not need to re-hash keys.
    stored_at:
        Simulated time at which the replica was last written (0.0 when no
        clock is in use).
    """

    key: Any
    data: Any
    timestamp: Any = None
    version: Optional[int] = None
    hash_name: str = ""
    point: int = 0
    stored_at: float = 0.0

    def is_newer_than(self, other: Optional["StoredValue"]) -> bool:
        """Peer-side reconciliation rule (Section 3.2).

        Returns ``True`` when this replica should overwrite ``other``:

        * there is no existing replica, or
        * both carry timestamps and this timestamp is strictly greater, or
        * both carry versions and this version is greater or equal (BRICKS has
          no tie-break, so the last writer wins on equal versions — that
          ambiguity is exactly the baseline's documented weakness), or
        * the existing replica carries neither timestamp nor version.
        """
        if other is None:
            return True
        if self.timestamp is not None and other.timestamp is not None:
            return self.timestamp > other.timestamp
        if self.version is not None and other.version is not None:
            return self.version >= other.version
        if other.timestamp is None and other.version is None:
            return True
        # Mixing stamped and un-stamped replicas for the same key: keep the
        # stamped one.
        return self.timestamp is not None or self.version is not None


def reconciliation_token(entry: StoredValue) -> Tuple[str, Any]:
    """The compact comparison token a summary carries for ``entry``.

    ``("ts", counter)`` for timestamped replicas (the counter of
    :class:`repro.core.timestamps.Timestamp`, or the raw value for plain
    ordered timestamps), ``("version", n)`` for versioned ones and
    ``("none", 0)`` for bare entries.  Tokens are orders of magnitude smaller
    than the data they stand for, which is what makes a summary exchange
    cheaper than a full-state transfer.
    """
    if entry.timestamp is not None:
        return ("ts", getattr(entry.timestamp, "value", entry.timestamp))
    if entry.version is not None:
        return ("version", entry.version)
    return ("none", 0)


def advanced_past(entry: StoredValue, token: Tuple[str, Any]) -> bool:
    """Whether ``entry`` must be shipped given the destination's ``token``.

    Only a provable non-advance is skipped; any mismatch of kinds ships the
    entry and lets the destination's reconciliation decide.
    """
    kind, value = token[0], token[1]
    if kind == "ts" and entry.timestamp is not None:
        return getattr(entry.timestamp, "value", entry.timestamp) > value
    if kind == "version" and entry.version is not None:
        return entry.version > value
    if kind == "none":
        return entry.timestamp is not None or entry.version is not None
    return True


class LocalStore:
    """Storage of one peer, indexed by ``(hash_name, key)``.

    A peer may hold several replicas of the same key when it happens to be
    responsible for the key under more than one replication hash function, so
    the hash function name is part of the index.

    Entries live in a *slab*: a flat list of :class:`StoredValue` slots with a
    free list, so deletes and overwrites recycle slots instead of churning
    dictionary-of-dictionary buckets.  Two indexes point into the slab:

    * ``(hash_name, key) -> slot`` for point reads (insertion-ordered, which
      fixes the iteration order of :meth:`values`/:meth:`keys`);
    * ``point -> array('I', slots)`` so churn-induced rebalancing can locate
      the entries of a moving identifier interval with a range scan
      (:meth:`entries_in_span`) instead of sweeping the whole store.  The
      per-point slot arrays are packed machine integers, not objects, keeping
      the index a few bytes per entry at 100k+-peer populations.
    """

    def __init__(self) -> None:
        self._slab: List[Optional[StoredValue]] = []
        self._free: List[int] = []
        self._index: Dict[Tuple[str, Any], int] = {}
        self._point_slots: Dict[int, "array[int]"] = {}
        self._sorted_points: Optional[List[int]] = None  # rebuilt lazily

    def _allocate(self, value: StoredValue) -> int:
        """Place ``value`` in a free slab slot (extending the slab if full)."""
        if self._free:
            slot = self._free.pop()
            self._slab[slot] = value
            return slot
        self._slab.append(value)
        return len(self._slab) - 1

    # ------------------------------------------------------------------ write
    def put(self, value: StoredValue, *, reconcile: bool = True) -> bool:
        """Store ``value``; return ``True`` if the store was modified.

        With ``reconcile=True`` (the default, and the paper's behaviour) the
        incoming replica only replaces an existing one when
        :meth:`StoredValue.is_newer_than` says so.
        """
        index = (value.hash_name, value.key)
        slot = self._index.get(index)
        existing = self._slab[slot] if slot is not None else None
        if reconcile and not value.is_newer_than(existing):
            return False
        if slot is None:
            self._index[index] = self._allocate(value)
            self._index_point(value.point, self._index[index])
            return True
        self._slab[slot] = value
        if existing is not None and existing.point != value.point:
            self._unindex_point(existing.point, slot)
            self._index_point(value.point, slot)
        return True

    def delete(self, hash_name: str, key: Any) -> Optional[StoredValue]:
        """Remove and return the replica of ``key`` under ``hash_name``."""
        slot = self._index.pop((hash_name, key), None)
        if slot is None:
            return None
        entry = self._slab[slot]
        self._slab[slot] = None
        self._free.append(slot)
        assert entry is not None
        self._unindex_point(entry.point, slot)
        return entry

    def _index_point(self, point: int, slot: int) -> None:
        slots = self._point_slots.get(point)
        if slots is None:
            self._point_slots[point] = array("I", (slot,))
            self._sorted_points = None
        else:
            slots.append(slot)

    def _unindex_point(self, point: int, slot: int) -> None:
        slots = self._point_slots.get(point)
        if slots is None:
            return
        try:
            slots.remove(slot)
        except ValueError:
            return
        if not slots:
            del self._point_slots[point]
            self._sorted_points = None

    def clear(self) -> None:
        """Drop every replica (used when a peer's data is lost on failure)."""
        self._slab.clear()
        self._free.clear()
        self._index.clear()
        self._point_slots.clear()
        self._sorted_points = None

    # ------------------------------------------------------------------- read
    def get(self, hash_name: str, key: Any) -> Optional[StoredValue]:
        """Return the replica of ``key`` placed by ``hash_name``, if any."""
        slot = self._index.get((hash_name, key))
        return self._slab[slot] if slot is not None else None

    def contains(self, hash_name: str, key: Any) -> bool:
        """Whether a replica of ``key`` under ``hash_name`` is present."""
        return (hash_name, key) in self._index

    def values(self) -> List[StoredValue]:
        """All replicas held by the peer, in first-insertion order."""
        slab = self._slab
        return [slab[slot] for slot in self._index.values()]  # type: ignore[misc]

    def keys(self) -> List[Tuple[str, Any]]:
        """All ``(hash_name, key)`` indexes currently stored."""
        return list(self._index.keys())

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[StoredValue]:
        return iter(self.values())

    def __contains__(self, index: Tuple[str, Any]) -> bool:
        return index in self._index

    def replicas_of(self, key: Any) -> List[StoredValue]:
        """All replicas of ``key`` held by this peer, across hash functions."""
        slab = self._slab
        return [slab[slot] for (_, stored_key), slot in self._index.items()  # type: ignore[misc]
                if stored_key == key]

    # ------------------------------------------------------------- point index
    def _points_sorted(self) -> List[int]:
        """The lazily-maintained sorted point list (internal: do not mutate)."""
        if self._sorted_points is None:
            self._sorted_points = sorted(self._point_slots)
        return self._sorted_points

    def points(self) -> List[int]:
        """The distinct identifier points present in the store, sorted."""
        return list(self._points_sorted())

    def entries_at(self, point: int) -> List[StoredValue]:
        """All entries whose identifier point equals ``point``."""
        slots = self._point_slots.get(point)
        if slots is None:
            return []
        slab = self._slab
        return [slab[slot] for slot in slots]  # type: ignore[misc]

    def entries_in_span(self, lo: int, hi: int) -> List[StoredValue]:
        """Entries whose point lies in the wrapping interval ``(lo, hi]``.

        This is the range scan behind join/leave handover on overlays with
        contiguous responsibility (Chord's ``claimed_span``): only the entries
        of the moving interval are visited, in point order.  ``lo == hi``
        denotes the whole space.
        """
        points = self._points_sorted()
        selected: List[int]
        if lo == hi:
            selected = points
        elif lo < hi:
            selected = points[bisect.bisect_right(points, lo):
                              bisect.bisect_right(points, hi)]
        else:  # interval wraps past the top of the identifier space
            selected = (points[bisect.bisect_right(points, lo):]
                        + points[:bisect.bisect_right(points, hi)])
        slab = self._slab
        entries: List[StoredValue] = []
        for point in selected:
            entries.extend(slab[slot] for slot in self._point_slots[point])  # type: ignore[misc]
        return entries

    # ------------------------------------------------------------- delta sync
    def timestamp_summary(self, lo: int, hi: int) -> Dict[Tuple[str, Any], Tuple[str, Any]]:
        """Reconciliation tokens of every entry in the span ``(lo, hi]``.

        The summary maps ``(hash_name, key)`` to a compact token — the KTS
        timestamp counter for stamped replicas, the version number for BRK
        replicas — and is what a peer ships *instead of* its data during a
        delta sync: the other side compares tokens and sends back only the
        entries that advanced (:meth:`entries_newer_than`).  ``lo == hi``
        summarises the whole store, mirroring :meth:`entries_in_span`.
        """
        return {(entry.hash_name, entry.key): reconciliation_token(entry)
                for entry in self.entries_in_span(lo, hi)}

    def entries_newer_than(self, lo: int, hi: int,
                           summary: Dict[Tuple[str, Any], Tuple[str, Any]]
                           ) -> List[StoredValue]:
        """Entries in ``(lo, hi]`` that advanced past ``summary``'s tokens.

        This is the sender side of delta replication: given the destination's
        :meth:`timestamp_summary`, return only the entries the destination is
        missing or holds an older copy of.  The filter is conservative — an
        entry is skipped only when its token *provably* has not advanced
        (same kind, not strictly greater) — so the destination's
        ``put(reconcile=True)`` remains the final authority and no advanced
        entry is ever withheld.
        """
        selected: List[StoredValue] = []
        for entry in self.entries_in_span(lo, hi):
            token = summary.get((entry.hash_name, entry.key))
            if token is None or advanced_past(entry, token):
                selected.append(entry)
        return selected

    def touch(self, hash_name: str, key: Any, stored_at: float) -> None:
        """Update the ``stored_at`` time of an entry (used by handover)."""
        slot = self._index.get((hash_name, key))
        if slot is not None:
            entry = self._slab[slot]
            assert entry is not None
            self._slab[slot] = replace(entry, stored_at=stored_at)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalStore(entries={len(self._index)})"
