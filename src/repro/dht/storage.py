"""Per-peer local storage of replicated pairs ``(k, {data, timestamp})``.

Each peer of the DHT stores, for every replication hash function ``h`` for
which it is ``rsp(k, h)``, the pair ``(k, newData)`` where ``newData`` bundles
the application data with either a KTS timestamp (UMS) or a version number
(the BRK baseline).  The store implements the peer-side reconciliation rule of
the paper's ``insert`` operation: an incoming replica only overwrites the local
one if it carries a strictly newer timestamp (respectively a newer version).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["LocalStore", "StoredValue"]


@dataclass(frozen=True)
class StoredValue:
    """One replica stored at a peer.

    Attributes
    ----------
    key:
        The application-level key ``k``.
    data:
        The application data.
    timestamp:
        The KTS timestamp attached by UMS (``None`` for BRK replicas).
        Any totally-ordered value works; the services use
        :class:`repro.core.timestamps.Timestamp`.
    version:
        The BRICKS-style version number (``None`` for UMS replicas).
    hash_name:
        Name of the replication hash function under which the replica was
        placed (identifies *which* replica of ``k`` this is).
    point:
        The identifier-space point ``h(k)``; kept so churn-induced rebalancing
        does not need to re-hash keys.
    stored_at:
        Simulated time at which the replica was last written (0.0 when no
        clock is in use).
    """

    key: Any
    data: Any
    timestamp: Any = None
    version: Optional[int] = None
    hash_name: str = ""
    point: int = 0
    stored_at: float = 0.0

    def is_newer_than(self, other: Optional["StoredValue"]) -> bool:
        """Peer-side reconciliation rule (Section 3.2).

        Returns ``True`` when this replica should overwrite ``other``:

        * there is no existing replica, or
        * both carry timestamps and this timestamp is strictly greater, or
        * both carry versions and this version is greater or equal (BRICKS has
          no tie-break, so the last writer wins on equal versions — that
          ambiguity is exactly the baseline's documented weakness), or
        * the existing replica carries neither timestamp nor version.
        """
        if other is None:
            return True
        if self.timestamp is not None and other.timestamp is not None:
            return self.timestamp > other.timestamp
        if self.version is not None and other.version is not None:
            return self.version >= other.version
        if other.timestamp is None and other.version is None:
            return True
        # Mixing stamped and un-stamped replicas for the same key: keep the
        # stamped one.
        return self.timestamp is not None or self.version is not None


class LocalStore:
    """Storage of one peer, indexed by ``(hash_name, key)``.

    A peer may hold several replicas of the same key when it happens to be
    responsible for the key under more than one replication hash function, so
    the hash function name is part of the index.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, Any], StoredValue] = {}

    # ------------------------------------------------------------------ write
    def put(self, value: StoredValue, *, reconcile: bool = True) -> bool:
        """Store ``value``; return ``True`` if the store was modified.

        With ``reconcile=True`` (the default, and the paper's behaviour) the
        incoming replica only replaces an existing one when
        :meth:`StoredValue.is_newer_than` says so.
        """
        index = (value.hash_name, value.key)
        existing = self._entries.get(index)
        if reconcile and not value.is_newer_than(existing):
            return False
        self._entries[index] = value
        return True

    def delete(self, hash_name: str, key: Any) -> Optional[StoredValue]:
        """Remove and return the replica of ``key`` under ``hash_name``."""
        return self._entries.pop((hash_name, key), None)

    def clear(self) -> None:
        """Drop every replica (used when a peer's data is lost on failure)."""
        self._entries.clear()

    # ------------------------------------------------------------------- read
    def get(self, hash_name: str, key: Any) -> Optional[StoredValue]:
        """Return the replica of ``key`` placed by ``hash_name``, if any."""
        return self._entries.get((hash_name, key))

    def contains(self, hash_name: str, key: Any) -> bool:
        """Whether a replica of ``key`` under ``hash_name`` is present."""
        return (hash_name, key) in self._entries

    def values(self) -> List[StoredValue]:
        """All replicas held by the peer (copy of the current snapshot)."""
        return list(self._entries.values())

    def keys(self) -> List[Tuple[str, Any]]:
        """All ``(hash_name, key)`` indexes currently stored."""
        return list(self._entries.keys())

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[StoredValue]:
        return iter(list(self._entries.values()))

    def __contains__(self, index: Tuple[str, Any]) -> bool:
        return index in self._entries

    def replicas_of(self, key: Any) -> List[StoredValue]:
        """All replicas of ``key`` held by this peer, across hash functions."""
        return [value for (_, stored_key), value in self._entries.items()
                if stored_key == key]

    def touch(self, hash_name: str, key: Any, stored_at: float) -> None:
        """Update the ``stored_at`` time of an entry (used by handover)."""
        index = (hash_name, key)
        if index in self._entries:
            self._entries[index] = replace(self._entries[index], stored_at=stored_at)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalStore(entries={len(self._entries)})"
