"""Per-peer local storage of replicated pairs ``(k, {data, timestamp})``.

Each peer of the DHT stores, for every replication hash function ``h`` for
which it is ``rsp(k, h)``, the pair ``(k, newData)`` where ``newData`` bundles
the application data with either a KTS timestamp (UMS) or a version number
(the BRK baseline).  The store implements the peer-side reconciliation rule of
the paper's ``insert`` operation: an incoming replica only overwrites the local
one if it carries a strictly newer timestamp (respectively a newer version).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["LocalStore", "StoredValue"]


@dataclass(frozen=True)
class StoredValue:
    """One replica stored at a peer.

    Attributes
    ----------
    key:
        The application-level key ``k``.
    data:
        The application data.
    timestamp:
        The KTS timestamp attached by UMS (``None`` for BRK replicas).
        Any totally-ordered value works; the services use
        :class:`repro.core.timestamps.Timestamp`.
    version:
        The BRICKS-style version number (``None`` for UMS replicas).
    hash_name:
        Name of the replication hash function under which the replica was
        placed (identifies *which* replica of ``k`` this is).
    point:
        The identifier-space point ``h(k)``; kept so churn-induced rebalancing
        does not need to re-hash keys.
    stored_at:
        Simulated time at which the replica was last written (0.0 when no
        clock is in use).
    """

    key: Any
    data: Any
    timestamp: Any = None
    version: Optional[int] = None
    hash_name: str = ""
    point: int = 0
    stored_at: float = 0.0

    def is_newer_than(self, other: Optional["StoredValue"]) -> bool:
        """Peer-side reconciliation rule (Section 3.2).

        Returns ``True`` when this replica should overwrite ``other``:

        * there is no existing replica, or
        * both carry timestamps and this timestamp is strictly greater, or
        * both carry versions and this version is greater or equal (BRICKS has
          no tie-break, so the last writer wins on equal versions — that
          ambiguity is exactly the baseline's documented weakness), or
        * the existing replica carries neither timestamp nor version.
        """
        if other is None:
            return True
        if self.timestamp is not None and other.timestamp is not None:
            return self.timestamp > other.timestamp
        if self.version is not None and other.version is not None:
            return self.version >= other.version
        if other.timestamp is None and other.version is None:
            return True
        # Mixing stamped and un-stamped replicas for the same key: keep the
        # stamped one.
        return self.timestamp is not None or self.version is not None


class LocalStore:
    """Storage of one peer, indexed by ``(hash_name, key)``.

    A peer may hold several replicas of the same key when it happens to be
    responsible for the key under more than one replication hash function, so
    the hash function name is part of the index.

    A secondary index groups entries by their identifier-space ``point`` so
    churn-induced rebalancing can locate the entries of a moving identifier
    interval with a range scan (:meth:`entries_in_span`) instead of sweeping
    the whole store.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, Any], StoredValue] = {}
        self._by_point: Dict[int, Dict[Tuple[str, Any], StoredValue]] = {}
        self._sorted_points: Optional[List[int]] = None  # rebuilt lazily

    # ------------------------------------------------------------------ write
    def put(self, value: StoredValue, *, reconcile: bool = True) -> bool:
        """Store ``value``; return ``True`` if the store was modified.

        With ``reconcile=True`` (the default, and the paper's behaviour) the
        incoming replica only replaces an existing one when
        :meth:`StoredValue.is_newer_than` says so.
        """
        index = (value.hash_name, value.key)
        existing = self._entries.get(index)
        if reconcile and not value.is_newer_than(existing):
            return False
        self._entries[index] = value
        if existing is not None and existing.point != value.point:
            self._unindex_point(existing.point, index)
        bucket = self._by_point.get(value.point)
        if bucket is None:
            bucket = self._by_point[value.point] = {}
            self._sorted_points = None
        bucket[index] = value
        return True

    def delete(self, hash_name: str, key: Any) -> Optional[StoredValue]:
        """Remove and return the replica of ``key`` under ``hash_name``."""
        entry = self._entries.pop((hash_name, key), None)
        if entry is not None:
            self._unindex_point(entry.point, (hash_name, key))
        return entry

    def _unindex_point(self, point: int, index: Tuple[str, Any]) -> None:
        bucket = self._by_point.get(point)
        if bucket is None:
            return
        bucket.pop(index, None)
        if not bucket:
            del self._by_point[point]
            self._sorted_points = None

    def clear(self) -> None:
        """Drop every replica (used when a peer's data is lost on failure)."""
        self._entries.clear()
        self._by_point.clear()
        self._sorted_points = None

    # ------------------------------------------------------------------- read
    def get(self, hash_name: str, key: Any) -> Optional[StoredValue]:
        """Return the replica of ``key`` placed by ``hash_name``, if any."""
        return self._entries.get((hash_name, key))

    def contains(self, hash_name: str, key: Any) -> bool:
        """Whether a replica of ``key`` under ``hash_name`` is present."""
        return (hash_name, key) in self._entries

    def values(self) -> List[StoredValue]:
        """All replicas held by the peer (copy of the current snapshot)."""
        return list(self._entries.values())

    def keys(self) -> List[Tuple[str, Any]]:
        """All ``(hash_name, key)`` indexes currently stored."""
        return list(self._entries.keys())

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[StoredValue]:
        return iter(list(self._entries.values()))

    def __contains__(self, index: Tuple[str, Any]) -> bool:
        return index in self._entries

    def replicas_of(self, key: Any) -> List[StoredValue]:
        """All replicas of ``key`` held by this peer, across hash functions."""
        return [value for (_, stored_key), value in self._entries.items()
                if stored_key == key]

    # ------------------------------------------------------------- point index
    def _points_sorted(self) -> List[int]:
        """The lazily-maintained sorted point list (internal: do not mutate)."""
        if self._sorted_points is None:
            self._sorted_points = sorted(self._by_point)
        return self._sorted_points

    def points(self) -> List[int]:
        """The distinct identifier points present in the store, sorted."""
        return list(self._points_sorted())

    def entries_at(self, point: int) -> List[StoredValue]:
        """All entries whose identifier point equals ``point``."""
        bucket = self._by_point.get(point)
        return list(bucket.values()) if bucket else []

    def entries_in_span(self, lo: int, hi: int) -> List[StoredValue]:
        """Entries whose point lies in the wrapping interval ``(lo, hi]``.

        This is the range scan behind join/leave handover on overlays with
        contiguous responsibility (Chord's ``claimed_span``): only the entries
        of the moving interval are visited, in point order.  ``lo == hi``
        denotes the whole space.
        """
        points = self._points_sorted()
        selected: List[int]
        if lo == hi:
            selected = points
        elif lo < hi:
            selected = points[bisect.bisect_right(points, lo):
                              bisect.bisect_right(points, hi)]
        else:  # interval wraps past the top of the identifier space
            selected = (points[bisect.bisect_right(points, lo):]
                        + points[:bisect.bisect_right(points, hi)])
        entries: List[StoredValue] = []
        for point in selected:
            entries.extend(self._by_point[point].values())
        return entries

    def touch(self, hash_name: str, key: Any, stored_at: float) -> None:
        """Update the ``stored_at`` time of an entry (used by handover)."""
        index = (hash_name, key)
        entry = self._entries.get(index)
        if entry is not None:
            updated = replace(entry, stored_at=stored_at)
            self._entries[index] = updated
            self._by_point[entry.point][index] = updated

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalStore(entries={len(self._entries)})"
