"""In-process replicated DHT network.

:class:`DHTNetwork` hosts a population of peers on top of an overlay protocol
(any overlay registered in :mod:`repro.dht.registry`: Chord, CAN, Kademlia or
a runtime-registered backend) and exposes the two operations the paper
assumes of the DHT (Section 2.2):

* ``put_h(k, data)`` — store a pair at ``rsp(k, h)``;
* ``get_h(k)``       — retrieve the pair stored at ``rsp(k, h)``;

plus the churn operations (join, normal leave, failure) with the data handover
behaviour of a *Responsibility Loss Aware* DHT: on joins and normal leaves the
previous responsible hands its pairs to the new responsible, while failures
lose the failed peer's replicas.

Every operation can record its messages in an
:class:`~repro.dht.messages.OperationTrace`, which the services and the
simulation harness use for communication-cost and response-time accounting.
Services that need to react to churn (notably KTS, for counter transfer and
Rule 3 of the Valid Counter Set) register a :class:`NetworkObserver`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.dht import registry
from repro.dht.errors import (
    EmptyNetworkError,
    InvalidConfigurationError,
    NoSuchPeerError,
)
from repro.dht.hashing import PairwiseIndependentHash
from repro.dht.messages import MessageKind, MessageSizes, OperationTrace
from repro.dht.model import (
    DepartureReason,
    DHTProtocol,
    LookupResult,
    ResponsibilityLog,
    RouteResult,
)
from repro.dht.storage import LocalStore, StoredValue

__all__ = ["DHTNetwork", "NetworkObserver", "NetworkStats", "PeerState",
           "SYNC_SUMMARY_ENTRY_BYTES", "SyncReport"]


class NetworkObserver:
    """Callbacks invoked by the network when membership changes.

    Subclasses override the hooks they care about; the defaults are no-ops.
    """

    def peer_joined(self, network: "DHTNetwork", peer_id: int,
                    affected: Set[int]) -> None:
        """A new peer joined; ``affected`` are peers that may have lost keys to it."""

    def peer_leaving(self, network: "DHTNetwork", peer_id: int) -> None:
        """A peer is about to leave normally (still part of the overlay)."""

    def peer_left(self, network: "DHTNetwork", peer_id: int) -> None:
        """A peer has left normally (already removed from the overlay)."""

    def peer_failed(self, network: "DHTNetwork", peer_id: int) -> None:
        """A peer failed abruptly (state lost, already removed from the overlay)."""


@dataclass
class PeerState:
    """Mutable state of one peer: its local replica store and liveness."""

    peer_id: int
    store: LocalStore = field(default_factory=LocalStore)
    joined_at: float = 0.0
    alive: bool = True


@dataclass
class NetworkStats:
    """Global counters maintained by the network (maintenance traffic etc.)."""

    maintenance_messages: int = 0
    handover_entries: int = 0
    #: Entries a handover or sync *skipped* because the destination's copy
    #: had not fallen behind — the savings of delta replication.
    handover_entries_skipped: int = 0
    lost_entries: int = 0
    joins: int = 0
    leaves: int = 0
    failures: int = 0
    sync_rounds: int = 0
    sync_entries_shipped: int = 0


#: Modeled size of one per-entry token inside a SYNC_SUMMARY message: a key
#: digest plus a timestamp/version counter.  Tiny next to ``data_bytes``,
#: which is why shipping summaries beats shipping state.
SYNC_SUMMARY_ENTRY_BYTES = 8


@dataclass(frozen=True)
class SyncReport:
    """Outcome of one delta-sync exchange (:meth:`DHTNetwork.sync_span`).

    ``full_bytes`` is the modeled cost of the naive alternative — shipping
    every entry the source holds in the span — so
    :attr:`transfer_ratio` measures what the delta exchange saved.
    """

    source: int
    dest: int
    entries_considered: int
    entries_shipped: int
    entries_applied: int
    summary_entries: int
    summary_bytes: int
    delta_bytes: int
    full_bytes: int

    @property
    def transfer_bytes(self) -> int:
        """Total bytes the delta exchange put on the wire (summary + delta)."""
        return self.summary_bytes + self.delta_bytes

    @property
    def transfer_ratio(self) -> float:
        """Delta-exchange bytes as a fraction of a full-state transfer."""
        if self.full_bytes <= 0:
            return 0.0
        return self.transfer_bytes / self.full_bytes

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (embedded in sync artifacts and reports)."""
        return {"source": self.source, "dest": self.dest,
                "entries_considered": self.entries_considered,
                "entries_shipped": self.entries_shipped,
                "entries_applied": self.entries_applied,
                "summary_entries": self.summary_entries,
                "summary_bytes": self.summary_bytes,
                "delta_bytes": self.delta_bytes,
                "full_bytes": self.full_bytes,
                "transfer_bytes": self.transfer_bytes,
                "transfer_ratio": self.transfer_ratio}


class DHTNetwork:
    """A population of peers running a DHT overlay with replica storage.

    Parameters
    ----------
    protocol:
        Either an already-built :class:`DHTProtocol`, or the name of an
        overlay registered in :mod:`repro.dht.registry` (``"chord"``,
        ``"can"``, ``"kademlia"``, ...) to build one with the given ``bits``.
    bits:
        Identifier-space size used when ``protocol`` is a string.
    stabilization_interval:
        Passed to the Chord overlay: how often (simulated seconds) peers
        refresh their finger tables.  Governs how strongly failures degrade
        routing (paper Figure 11).
    representation:
        Storage representation used when ``protocol`` is a string:
        ``"columnar"`` (packed arrays, the default) or ``"object"`` (the
        reference object graphs).  ``None`` defers to the
        ``REPRO_OVERLAY_REPRESENTATION`` environment variable, then the
        registry default; both representations behave bit-identically.
    seed / rng:
        Randomness source for peer identifiers and random origins.
    track_responsibility:
        When ``True`` the network records responsibility transitions in
        :attr:`responsibility_log` (Definition 1).  Off by default because the
        log grows with churn.
    """

    def __init__(self, protocol: Union[str, DHTProtocol] = "chord", *,
                 bits: int = 32, stabilization_interval: float = 30.0,
                 seed: Optional[int] = None, rng: Optional[random.Random] = None,
                 message_sizes: Optional[MessageSizes] = None,
                 track_responsibility: bool = False,
                 representation: Optional[str] = None) -> None:
        if rng is not None and seed is not None:
            raise ValueError("pass either 'seed' or 'rng', not both")
        self.rng = rng if rng is not None else random.Random(seed)
        if isinstance(protocol, str):
            protocol = self._build_protocol(protocol, bits, stabilization_interval,
                                            representation)
        self.protocol = protocol
        self.bits = protocol.bits
        self.message_sizes = message_sizes if message_sizes is not None else MessageSizes()
        self.track_responsibility = track_responsibility
        self.responsibility_log = ResponsibilityLog()
        self.now: float = 0.0
        self.stats = NetworkStats()
        self._peers: Dict[int, PeerState] = {}
        self._departed_peers: Dict[int, PeerState] = {}
        self._observers: List[NetworkObserver] = []
        # Interned trace-free routes: untraced lookups for the same
        # (origin, responsible) pair return one shared frozen RouteResult
        # instead of allocating a fresh path tuple + result pair per
        # operation.  Version-keyed like every responsibility cache.
        self._route_cache: Dict[Tuple[int, int], RouteResult] = {}
        self._route_cache_version = -1

    def _build_protocol(self, name: str, bits: int,
                        stabilization_interval: float,
                        representation: Optional[str] = None) -> DHTProtocol:
        return registry.create_overlay(
            name, bits=bits, stabilization_interval=stabilization_interval,
            rng=random.Random(self.rng.getrandbits(64)),
            representation=representation)

    # ------------------------------------------------------------- construction
    @classmethod
    def build(cls, num_peers: int, *, protocol: Union[str, DHTProtocol] = "chord",
              **kwargs: Any) -> "DHTNetwork":
        """Create a network and join ``num_peers`` peers with fresh identifiers.

        The maintenance counters are reset afterwards so that experiment
        statistics only reflect post-construction activity.
        """
        if num_peers < 1:
            raise ValueError("num_peers must be >= 1")
        network = cls(protocol=protocol, **kwargs)
        for _ in range(num_peers):
            network.join_peer()
        network.stats = NetworkStats()
        return network

    # ----------------------------------------------------------------- peers
    @property
    def size(self) -> int:
        """Number of live peers."""
        return len(self._peers)

    def alive_peer_ids(self) -> List[int]:
        """Identifiers of the live peers (overlay order)."""
        return list(self.protocol.nodes())

    def peer(self, peer_id: int) -> PeerState:
        """The state of a live peer (raises :class:`NoSuchPeerError` otherwise)."""
        state = self._peers.get(peer_id)
        if state is None or not state.alive:
            raise NoSuchPeerError(peer_id)
        return state

    def departed_peer(self, peer_id: int) -> Optional[PeerState]:
        """The final state of a departed peer, if it ever existed."""
        return self._departed_peers.get(peer_id)

    def is_alive(self, peer_id: int) -> bool:
        """Whether ``peer_id`` designates a live peer."""
        return peer_id in self._peers

    def random_alive_peer(self) -> int:
        """A uniformly random live peer identifier."""
        if not self._peers:
            raise EmptyNetworkError("the network has no live peers")
        return self.protocol.random_node(self.rng)

    def new_peer_id(self) -> int:
        """Draw an unused identifier from the overlay's identifier space.

        Raises :class:`InvalidConfigurationError` when every identifier is
        taken (tiny ``bits`` with too many peers), instead of rejection-sampling
        forever.  The check happens before any RNG draw, so seeded runs
        consume the same random stream as before the guard existed.
        """
        space = 1 << self.bits
        if len(self._peers) >= space or len(self.protocol) >= space:
            raise InvalidConfigurationError(
                f"identifier space of 2^{self.bits} points is exhausted by "
                f"{len(self._peers)} peers; increase 'bits'")
        while True:
            candidate = self.rng.randrange(space)
            if candidate not in self.protocol and candidate not in self._peers:
                return candidate

    def add_observer(self, observer: NetworkObserver) -> None:
        """Register a membership observer (e.g. the KTS service)."""
        self._observers.append(observer)

    def remove_observer(self, observer: NetworkObserver) -> None:
        """Unregister an observer; a no-op when it was never registered."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # ------------------------------------------------------------------ churn
    def join_peer(self, peer_id: Optional[int] = None) -> int:
        """Add a peer to the network, handing over the keys it now owns."""
        if peer_id is None:
            peer_id = self.new_peer_id()
        affected = self.protocol.add_node(peer_id, now=self.now)
        state = PeerState(peer_id=peer_id, joined_at=self.now)
        self._peers[peer_id] = state
        self.stats.joins += 1
        for previous_owner in affected:
            self._hand_over_entries(previous_owner, to_peer=peer_id)
        for observer in self._observers:
            observer.peer_joined(self, peer_id, set(affected))
        return peer_id

    def leave_peer(self, peer_id: int) -> None:
        """Remove a peer *normally*: its replicas are handed to the new owners."""
        state = self.peer(peer_id)
        for observer in self._observers:
            observer.peer_leaving(self, peer_id)
        entries = state.store.values()
        self.protocol.remove_node(peer_id, reason=DepartureReason.LEAVE, now=self.now)
        state.alive = False
        del self._peers[peer_id]
        self.stats.leaves += 1
        if self._peers:
            for entry in entries:
                new_owner = self.protocol.responsible_for(entry.point)
                existing = self._peers[new_owner].store.get(entry.hash_name,
                                                            entry.key)
                if existing is not None and not entry.is_newer_than(existing):
                    # Delta handover: the new owner's copy has not fallen
                    # behind, so shipping the entry would only be rejected by
                    # its reconciliation — skip the transfer entirely.
                    self.stats.handover_entries_skipped += 1
                    continue
                self._store_entry(new_owner, entry, record_responsibility=True)
                self.stats.maintenance_messages += 1
                self.stats.handover_entries += 1
        else:
            self.stats.lost_entries += len(entries)
        state.store.clear()
        self._departed_peers[peer_id] = state
        for observer in self._observers:
            observer.peer_left(self, peer_id)

    def fail_peer(self, peer_id: int) -> None:
        """Remove a peer *abruptly*: its replicas and counters are lost."""
        state = self.peer(peer_id)
        self.protocol.remove_node(peer_id, reason=DepartureReason.FAIL, now=self.now)
        state.alive = False
        del self._peers[peer_id]
        self.stats.failures += 1
        self.stats.lost_entries += len(state.store)
        state.store.clear()
        self._departed_peers[peer_id] = state
        for observer in self._observers:
            observer.peer_failed(self, peer_id)

    def _hand_over_entries(self, previous_owner: int, *, to_peer: int) -> None:
        """Move entries from ``previous_owner`` that now belong to ``to_peer``.

        On overlays with contiguous responsibility (Chord) the moving entries
        are found with a range scan of the store's point index over the
        newcomer's claimed interval; otherwise the store's distinct points are
        checked against the (version-cached) responsibility map.  Either way
        the cost scales with the data actually moving, not the store size.

        The transfer itself is *delta-based*: entries the destination already
        holds a same-or-newer copy of (per
        :meth:`~repro.dht.storage.StoredValue.is_newer_than`) are dropped at
        the source instead of shipped — its reconciliation would reject them
        anyway, so only the skip counter observes the difference.
        """
        if previous_owner not in self._peers or previous_owner == to_peer:
            return
        source = self._peers[previous_owner].store
        if not len(source):
            return
        span = self.protocol.claimed_span(to_peer)
        if span is not None:
            moving = source.entries_in_span(span[0], span[1])
        else:
            responsible_for = self.protocol.responsible_for
            moving = []
            for point in source.points():
                if responsible_for(point) == to_peer:
                    moving.extend(source.entries_at(point))
        dest = self._peers[to_peer].store
        for entry in moving:
            source.delete(entry.hash_name, entry.key)
            existing = dest.get(entry.hash_name, entry.key)
            if existing is not None and not entry.is_newer_than(existing):
                self.stats.handover_entries_skipped += 1
                continue
            self._store_entry(to_peer, entry, record_responsibility=True)
            self.stats.maintenance_messages += 1
            self.stats.handover_entries += 1

    def _store_entry(self, peer_id: int, entry: StoredValue, *,
                     record_responsibility: bool = False) -> bool:
        stored = self._peers[peer_id].store.put(entry)
        if record_responsibility and self.track_responsibility:
            self.responsibility_log.record(entry.key, entry.hash_name, peer_id, self.now)
        return stored

    # ------------------------------------------------------------------ lookup
    def responsible_peer(self, key: Any, hash_fn: PairwiseIndependentHash) -> int:
        """``rsp(k, h)``: the live peer responsible for ``key`` wrt ``hash_fn``."""
        return self.protocol.responsible_for(hash_fn(key))

    def lookup(self, key: Any, hash_fn: PairwiseIndependentHash, *,
               origin: Optional[int] = None,
               trace: Optional[OperationTrace] = None) -> LookupResult:
        """Locate ``rsp(k, h)`` from ``origin`` through the overlay's routing.

        Records one message per routing hop (plus retries around departed
        fingers) in ``trace`` when provided.  Without a trace nobody is
        accounting for hops, so the responsible is resolved directly from the
        overlay's (version-cached) responsibility map — same responsible,
        same operation result, no hop-by-hop simulation.  The returned route
        then only names the origin and the responsible; its ``hops`` are not
        a cost measurement.  Note that skipping the walk also skips the
        walk's routing-state upkeep (Kademlia lookups evict dead contacts and
        learn fresh ones as they go), so experiments that *measure* stale-state
        effects must not interleave untraced traffic with their traced
        operations — the services always trace, so harness runs are
        unaffected.
        """
        origin = self._resolve_origin(origin)
        point = hash_fn(key)
        if trace is None:
            responsible = self.protocol.responsible_for(point)
            return LookupResult(key=key, hash_name=hash_fn.name, point=point,
                                responsible=responsible,
                                route=self._fast_route(origin, responsible))
        route = self.protocol.route(origin, point, now=self.now)
        trace.record_route(route.path, retries=route.retries,
                           timeouts=route.timeouts)
        return LookupResult(key=key, hash_name=hash_fn.name, point=point,
                            responsible=route.responsible, route=route)

    def _resolve_origin(self, origin: Optional[int]) -> int:
        if origin is not None and origin in self._peers:
            return origin
        return self.random_alive_peer()

    def _fast_route(self, origin: int, responsible: int) -> RouteResult:
        """The interned trace-free route for ``(origin, responsible)``.

        The returned :class:`RouteResult` only names the endpoints (nobody is
        accounting for hops on the trace-free path), so identical pairs can
        share one frozen instance instead of allocating per operation.
        """
        if self.protocol.version != self._route_cache_version:
            self._route_cache.clear()
            self._route_cache_version = self.protocol.version
        route = self._route_cache.get((origin, responsible))
        if route is None:
            path = (origin,) if origin == responsible else (origin, responsible)
            route = RouteResult(path=path, responsible=responsible)
            if len(self._route_cache) >= 65536:
                self._route_cache.clear()
            self._route_cache[(origin, responsible)] = route
        return route

    # --------------------------------------------------------------------- put
    def put(self, key: Any, hash_fn: PairwiseIndependentHash, data: Any, *,
            timestamp: Any = None, version: Optional[int] = None,
            origin: Optional[int] = None, trace: Optional[OperationTrace] = None,
            unreachable: FrozenSet[int] = frozenset()) -> bool:
        """The paper's ``put_h(k, data)``: store a replica at ``rsp(k, h)``.

        Returns ``True`` when the responsible peer accepted (stored) the
        replica, ``False`` when it kept a newer one or was unreachable.
        ``unreachable`` injects the paper's motivating fault scenario — an
        update that cannot reach one of the replica holders.
        """
        if trace is None:
            # Trace-free fast path: same origin resolution (identical RNG
            # stream), same responsible, no result-object churn per hop.
            self._resolve_origin(origin)
            point = hash_fn(key)
            responsible = self.protocol.responsible_for(point)
            if responsible in unreachable:
                return False
        else:
            lookup = self.lookup(key, hash_fn, origin=origin, trace=trace)
            responsible = lookup.responsible
            point = lookup.point
            if responsible in unreachable:
                trace.record(MessageKind.PUT_REQUEST, dest=responsible, timed_out=True)
                return False
            trace.record_request_reply(MessageKind.PUT_REQUEST, MessageKind.PUT_ACK,
                                       dest=responsible)
        entry = StoredValue(key=key, data=data, timestamp=timestamp, version=version,
                            hash_name=hash_fn.name, point=point,
                            stored_at=self.now)
        return self._store_entry(responsible, entry, record_responsibility=True)

    # --------------------------------------------------------------------- get
    def get(self, key: Any, hash_fn: PairwiseIndependentHash, *,
            origin: Optional[int] = None, trace: Optional[OperationTrace] = None,
            unreachable: FrozenSet[int] = frozenset()) -> Optional[StoredValue]:
        """The paper's ``get_h(k)``: fetch the replica stored at ``rsp(k, h)``."""
        if trace is None:
            self._resolve_origin(origin)
            responsible = self.protocol.responsible_for(hash_fn(key))
            if responsible in unreachable:
                return None
            return self._peers[responsible].store.get(hash_fn.name, key)
        lookup = self.lookup(key, hash_fn, origin=origin, trace=trace)
        responsible = lookup.responsible
        if responsible in unreachable:
            trace.record(MessageKind.GET_REQUEST, dest=responsible, timed_out=True)
            return None
        trace.record_request_reply(MessageKind.GET_REQUEST, MessageKind.GET_REPLY,
                                   dest=responsible)
        return self._peers[responsible].store.get(hash_fn.name, key)

    # ------------------------------------------------------------ batched ops
    def _batched_exchanges(self, points: Sequence[int], origin: int,
                           trace: Optional[OperationTrace],
                           unreachable: FrozenSet[int],
                           request_kind: MessageKind, reply_kind: MessageKind,
                           *, data_on_request: bool):
        """Shared skeleton of the batched operations.

        Groups the request indices by the current responsible of their
        ``points``, routes once per distinct responsible, records the batched
        request/reply exchange (or a single timed-out request when the
        responsible is unreachable) and yields ``(responsible, indices,
        reachable)`` per group.  The data-bearing message — the request for
        puts, the reply for gets — is sized per entry carried, so batching
        saves round-trips and routing hops, never under-accounted bytes.
        """
        grouped: Dict[int, List[int]] = {}
        for index, point in enumerate(points):
            grouped.setdefault(self.protocol.responsible_for(point), []).append(index)
        for responsible, indices in grouped.items():
            if trace is not None:
                # Only routed when someone accounts for the hops; the
                # responsible itself is already known from the grouping.
                route = self.protocol.route(origin, points[indices[0]], now=self.now)
                trace.record_route(route.path, retries=route.retries,
                                   timeouts=route.timeouts)
            if responsible in unreachable:
                if trace is not None:
                    trace.record(request_kind, dest=responsible, timed_out=True)
                yield responsible, indices, False
                continue
            if trace is not None:
                batch_bytes = self.message_sizes.data_bytes * len(indices)
                trace.record(request_kind, source=origin, dest=responsible,
                             size_bytes=(batch_bytes if data_on_request else None))
                trace.record(reply_kind, source=responsible, dest=origin,
                             size_bytes=(None if data_on_request else batch_bytes))
            yield responsible, indices, True

    def get_many(self, requests: Sequence[tuple], *,
                 origin: Optional[int] = None,
                 trace: Optional[OperationTrace] = None,
                 unreachable: FrozenSet[int] = frozenset()
                 ) -> List[Optional[StoredValue]]:
        """Batched ``get_h``: fetch several ``(key, hash_fn)`` replicas at once.

        Requests destined for the same responsible peer are coalesced: the
        origin routes *once* per distinct responsible and exchanges a single
        (larger) request/reply pair carrying every entry held there, instead
        of one lookup + request/reply per replica.  This is the message
        amortisation behind ``retrieve_many``.

        Returns one ``Optional[StoredValue]`` per request, in request order.
        """
        origin = self._resolve_origin(origin)
        results: List[Optional[StoredValue]] = [None] * len(requests)
        points = [hash_fn(key) for key, hash_fn in requests]
        for responsible, indices, reachable in self._batched_exchanges(
                points, origin, trace, unreachable,
                MessageKind.GET_REQUEST, MessageKind.GET_REPLY,
                data_on_request=False):
            if not reachable:
                continue
            store = self._peers[responsible].store
            for index in indices:
                key, hash_fn = requests[index]
                results[index] = store.get(hash_fn.name, key)
        return results

    def put_many(self, requests: Sequence[tuple], *,
                 origin: Optional[int] = None,
                 trace: Optional[OperationTrace] = None,
                 unreachable: FrozenSet[int] = frozenset()) -> List[bool]:
        """Batched ``put_h``: store several replicas at once.

        Each request is ``(key, hash_fn, data, timestamp, version)``
        (``timestamp``/``version`` may be ``None``).  Writes destined for the
        same responsible peer share one routed request/ack exchange, the
        request's payload size scaling with the entries it carries.  Returns
        one acceptance flag per request, in request order.
        """
        origin = self._resolve_origin(origin)
        results: List[bool] = [False] * len(requests)
        points = [hash_fn(key) for key, hash_fn, _data, _timestamp, _version
                  in requests]
        for responsible, indices, reachable in self._batched_exchanges(
                points, origin, trace, unreachable,
                MessageKind.PUT_REQUEST, MessageKind.PUT_ACK,
                data_on_request=True):
            if not reachable:
                continue
            for index in indices:
                key, hash_fn, data, timestamp, version = requests[index]
                entry = StoredValue(key=key, data=data, timestamp=timestamp,
                                    version=version, hash_name=hash_fn.name,
                                    point=points[index], stored_at=self.now)
                results[index] = self._store_entry(responsible, entry,
                                                   record_responsibility=True)
        return results

    # -------------------------------------------------------------- delta sync
    def sync_span(self, source: int, dest: int, lo: int, hi: int, *,
                  trace: Optional[OperationTrace] = None) -> SyncReport:
        """One pull-based delta-sync exchange over the span ``(lo, hi]``.

        The anti-entropy primitive behind replica reconciliation: ``dest``
        ships its compact timestamp summary of the span
        (:meth:`~repro.dht.storage.LocalStore.timestamp_summary`, one
        ``SYNC_SUMMARY`` message), and ``source`` replies with only the
        entries whose timestamp (or version) advanced past it
        (:meth:`~repro.dht.storage.LocalStore.entries_newer_than`, one
        ``SYNC_DELTA`` message).  The destination reconciles the delta with
        the ordinary newest-wins ``put``.  ``lo == hi`` syncs the whole
        identifier space.

        Draws no randomness and records messages only on the provided
        ``trace``, so seeded runs that never sync are bit-identical to
        earlier releases.
        """
        source_store = self.peer(source).store
        dest_store = self.peer(dest).store
        summary = dest_store.timestamp_summary(lo, hi)
        considered = source_store.entries_in_span(lo, hi)
        delta = source_store.entries_newer_than(lo, hi, summary)
        sizes = self.message_sizes
        summary_bytes = (sizes.control_bytes
                         + SYNC_SUMMARY_ENTRY_BYTES * len(summary))
        delta_bytes = sizes.control_bytes + sizes.data_bytes * len(delta)
        full_bytes = sizes.control_bytes + sizes.data_bytes * len(considered)
        if trace is not None:
            trace.record(MessageKind.SYNC_SUMMARY, source=dest, dest=source,
                         size_bytes=summary_bytes)
            trace.record(MessageKind.SYNC_DELTA, source=source, dest=dest,
                         size_bytes=delta_bytes)
        applied = 0
        for entry in delta:
            if self._store_entry(dest, entry):
                applied += 1
        self.stats.maintenance_messages += 2
        self.stats.sync_rounds += 1
        self.stats.sync_entries_shipped += len(delta)
        self.stats.handover_entries_skipped += len(considered) - len(delta)
        return SyncReport(source=source, dest=dest,
                          entries_considered=len(considered),
                          entries_shipped=len(delta), entries_applied=applied,
                          summary_entries=len(summary),
                          summary_bytes=summary_bytes, delta_bytes=delta_bytes,
                          full_bytes=full_bytes)

    # ----------------------------------------------------------------- storage
    def store_locally(self, peer_id: int, entry: StoredValue) -> bool:
        """Store an entry directly at ``peer_id`` without routing (handover, tests)."""
        self.peer(peer_id)
        return self._store_entry(peer_id, entry)

    def stored_replicas(self, key: Any,
                        hash_fns: Iterable[PairwiseIndependentHash]) -> List[StoredValue]:
        """All replicas of ``key`` currently held at their responsibles.

        Diagnostic helper used by tests and by the probability-of-currency
        estimator: for each hash function, look at the current responsible and
        return its replica if it holds one.
        """
        replicas: List[StoredValue] = []
        for hash_fn in hash_fns:
            responsible = self.responsible_peer(key, hash_fn)
            entry = self._peers[responsible].store.get(hash_fn.name, key)
            if entry is not None:
                replicas.append(entry)
        return replicas

    def new_trace(self) -> OperationTrace:
        """A fresh :class:`OperationTrace` using the network's message sizes."""
        return OperationTrace(sizes=self.message_sizes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DHTNetwork(protocol={type(self.protocol).__name__}, "
                f"peers={self.size}, now={self.now:.1f})")
