"""CAN overlay (Ratnasamy et al., SIGCOMM 2001).

CAN partitions a *d*-dimensional coordinate space among peers; a peer is
responsible for a key when the key's point falls inside (one of) its zones.
The paper uses CAN (together with Chord) in Section 4.2.1 to argue that the
*next* responsible for a key is always a neighbour of the current responsible,
which is what makes the direct counter-transfer algorithm O(1):

* **join** — the newcomer splits the zone of the current owner in half, so the
  previous owner is a neighbour of the newcomer;
* **leave / fail** — the departing peer's zone is taken over by the neighbour
  owning the smallest zone.

The identifier space is the same ``[0, 2^bits)`` integer space used by Chord;
a point is interpreted as *d* packed coordinates so that the same hash
functions drive both overlays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dht.errors import (
    EmptyNetworkError,
    InvalidConfigurationError,
    NodeAlreadyPresentError,
    NoSuchPeerError,
)
from repro.dht.model import DepartureReason, DHTProtocol, RouteResult

__all__ = ["CanSpace", "Zone"]


@dataclass(frozen=True)
class Zone:
    """A half-open axis-aligned box ``[lo, hi)`` of the coordinate space."""

    lo: Tuple[int, ...]
    hi: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise InvalidConfigurationError("zone bounds must have equal dimensionality")
        for low, high in zip(self.lo, self.hi):
            if low >= high:
                raise InvalidConfigurationError(f"degenerate zone bounds {self.lo}..{self.hi}")

    @property
    def dimensions(self) -> int:
        return len(self.lo)

    @property
    def volume(self) -> int:
        volume = 1
        for low, high in zip(self.lo, self.hi):
            volume *= high - low
        return volume

    def contains(self, coords: Sequence[int]) -> bool:
        return all(low <= value < high
                   for value, low, high in zip(coords, self.lo, self.hi))

    def center(self) -> Tuple[float, ...]:
        return tuple((low + high) / 2.0 for low, high in zip(self.lo, self.hi))

    def split(self) -> Tuple["Zone", "Zone"]:
        """Split the zone in half along its longest dimension."""
        extents = [high - low for low, high in zip(self.lo, self.hi)]
        axis = max(range(len(extents)), key=lambda index: extents[index])
        if extents[axis] < 2:
            raise InvalidConfigurationError("zone is too small to split")
        mid = (self.lo[axis] + self.hi[axis]) // 2
        first_hi = list(self.hi)
        first_hi[axis] = mid
        second_lo = list(self.lo)
        second_lo[axis] = mid
        return (Zone(self.lo, tuple(first_hi)), Zone(tuple(second_lo), self.hi))

    def touches(self, other: "Zone") -> bool:
        """True when the two zones share a (d-1)-dimensional face."""
        share_face = 0
        for (a_lo, a_hi), (b_lo, b_hi) in zip(zip(self.lo, self.hi), zip(other.lo, other.hi)):
            if a_hi == b_lo or b_hi == a_lo:
                share_face += 1
            elif min(a_hi, b_hi) <= max(a_lo, b_lo):
                return False  # disjoint in this dimension with a gap
        return share_face >= 1

    def distance_to(self, coords: Sequence[int]) -> float:
        """Euclidean distance from the zone (its closest point) to ``coords``."""
        total = 0.0
        for value, low, high in zip(coords, self.lo, self.hi):
            if value < low:
                total += (low - value) ** 2
            elif value >= high:
                total += (value - (high - 1)) ** 2
        return total ** 0.5


class CanSpace(DHTProtocol):
    """A CAN coordinate space shared by the live peers.

    Parameters
    ----------
    bits:
        Total number of identifier bits; each of the ``dimensions`` axes gets
        ``bits // dimensions`` bits.
    dimensions:
        Dimensionality *d* of the space (the original paper uses small *d*,
        typically 2–4).
    """

    def __init__(self, bits: int = 32, *, dimensions: int = 2,
                 rng: Optional[random.Random] = None) -> None:
        if dimensions < 1:
            raise InvalidConfigurationError("dimensions must be >= 1")
        if bits < dimensions or bits // dimensions < 2:
            raise InvalidConfigurationError(
                f"need at least 2 bits per dimension, got {bits} bits / {dimensions} dims")
        self.bits = bits
        self.dimensions = dimensions
        self.bits_per_dimension = bits // dimensions
        self._rng = rng if rng is not None else random.Random(0)
        self._zones: Dict[int, List[Zone]] = {}
        self._departed: Dict[int, Tuple[str, float]] = {}
        self._init_version_caches()
        self._neighbors_cache: Dict[int, Set[int]] = {}

    def _clear_version_caches(self) -> None:
        self._neighbors_cache.clear()

    # ------------------------------------------------------------------ helpers
    @property
    def space_size(self) -> int:
        return 1 << self.bits

    @property
    def axis_size(self) -> int:
        """Number of coordinate values along each axis."""
        return 1 << self.bits_per_dimension

    def coordinates(self, point: int) -> Tuple[int, ...]:
        """Unpack an identifier point into *d* axis coordinates."""
        point %= self.space_size
        mask = self.axis_size - 1
        return tuple((point >> (axis * self.bits_per_dimension)) & mask
                     for axis in range(self.dimensions))

    def _whole_space(self) -> Zone:
        return Zone(lo=(0,) * self.dimensions, hi=(self.axis_size,) * self.dimensions)

    # ------------------------------------------------------------------ topology
    def nodes(self) -> Sequence[int]:
        return self._cached_nodes(lambda: tuple(sorted(self._zones)))

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._zones

    def __len__(self) -> int:
        return len(self._zones)

    def zones_of(self, node_id: int) -> List[Zone]:
        """The zones currently owned by ``node_id``."""
        if node_id not in self._zones:
            raise NoSuchPeerError(node_id)
        return list(self._zones[node_id])

    def owned_volume(self, node_id: int) -> int:
        """Total volume of the zones owned by ``node_id``."""
        return sum(zone.volume for zone in self.zones_of(node_id))

    def add_node(self, node_id: int, *, now: float = 0.0) -> Set[int]:
        if node_id in self._zones:
            raise NodeAlreadyPresentError(node_id)
        if not 0 <= node_id < self.space_size:
            raise InvalidConfigurationError(
                f"node id {node_id} outside identifier space [0, 2^{self.bits})")
        self._departed.pop(node_id, None)
        if not self._zones:
            self._grant_zone(node_id, self._whole_space())
            self._membership_changed()
            return set()
        # The newcomer picks a random point; the owner of the zone containing
        # that point splits it in half and keeps one half.
        join_point = self.coordinates(self._rng.randrange(self.space_size))
        owner = self._owner_of(join_point)
        zone = self._zone_containing(owner, join_point)
        try:
            first, second = zone.split()
        except InvalidConfigurationError:
            # The chosen zone is already minimal; split the owner's largest
            # splittable zone instead.
            zone = self._largest_splittable_zone(owner)
            first, second = zone.split()
        self._revoke_zone(owner, zone)
        if first.contains(join_point):
            newcomer_zone, owner_zone = first, second
        else:
            newcomer_zone, owner_zone = second, first
        self._grant_zone(owner, owner_zone)
        self._grant_zone(node_id, newcomer_zone)
        self._membership_changed()
        return {owner}

    def remove_node(self, node_id: int, *, reason: str = DepartureReason.LEAVE,
                    now: float = 0.0) -> None:
        if node_id not in self._zones:
            raise NoSuchPeerError(node_id)
        abandoned = self._drop_node_zones(node_id)
        self._departed[node_id] = (reason, now)
        self._membership_changed()
        if not self._zones:
            return
        for zone in abandoned:
            takeover = self._takeover_candidate(zone)
            self._grant_zone(takeover, zone)

    # --------------------------------------------------------- zone-table hooks
    # Every mutation of the node -> zones table funnels through these three
    # methods so alternative representations (the columnar packed zone table in
    # :mod:`repro.dht.columnar.can`) can maintain their point-lookup indexes
    # without re-implementing the join/leave protocol above.

    def _grant_zone(self, node_id: int, zone: Zone) -> None:
        """Assign ``zone`` to ``node_id`` (creating its entry on first grant)."""
        zones = self._zones.get(node_id)
        if zones is None:
            self._zones[node_id] = [zone]
        else:
            zones.append(zone)

    def _revoke_zone(self, node_id: int, zone: Zone) -> None:
        """Take ``zone`` away from ``node_id`` (it is about to be split)."""
        self._zones[node_id].remove(zone)

    def _drop_node_zones(self, node_id: int) -> List[Zone]:
        """Remove ``node_id`` from the zone table, returning its zones."""
        return self._zones.pop(node_id)

    def _takeover_candidate(self, zone: Zone) -> int:
        """The neighbour with the smallest owned volume takes over ``zone``."""
        candidates = [node for node, zones in self._zones.items()
                      if any(zone.touches(owned) for owned in zones)]
        if not candidates:
            candidates = list(self._zones)
        return min(candidates, key=lambda node: (self.owned_volume(node), node))

    def _largest_splittable_zone(self, owner: int) -> Zone:
        splittable = [zone for zone in self._zones[owner]
                      if max(high - low for low, high in zip(zone.lo, zone.hi)) >= 2]
        if not splittable:
            raise InvalidConfigurationError(
                f"node {owner} owns no splittable zone; increase bits per dimension")
        return max(splittable, key=lambda zone: zone.volume)

    # ----------------------------------------------------------- responsibility
    def _owner_of(self, coords: Sequence[int]) -> int:
        for node_id, zones in self._zones.items():
            for zone in zones:
                if zone.contains(coords):
                    return node_id
        raise EmptyNetworkError("the CAN space has no live nodes")

    def _zone_containing(self, owner: int, coords: Sequence[int]) -> Zone:
        for zone in self._zones[owner]:
            if zone.contains(coords):
                return zone
        raise NoSuchPeerError(owner)

    def responsible_for(self, point: int) -> int:
        if not self._zones:
            raise EmptyNetworkError("the CAN space has no live nodes")
        # The zone scan is O(peers); memoise per membership version so hot
        # points resolve in a dictionary hit.
        return self._memoised_responsible(
            point, lambda p: self._owner_of(self.coordinates(p)))

    def next_responsible(self, point: int) -> Optional[int]:
        if len(self._zones) < 2:
            return None
        owner = self.responsible_for(point)
        coords = self.coordinates(point)
        zone = self._zone_containing(owner, coords)
        neighbors = [node for node in self.neighbors(owner)
                     if any(zone.touches(owned) for owned in self._zones[node])]
        if not neighbors:
            neighbors = [node for node in self._zones if node != owner]
        return min(neighbors, key=lambda node: (self.owned_volume(node), node))

    def neighbors(self, node_id: int) -> Set[int]:
        if node_id not in self._zones:
            raise NoSuchPeerError(node_id)
        # The all-pairs zone adjacency test is the most expensive query on the
        # overlay and routing asks it once per hop; snapshots are memoised per
        # membership version (zone boundaries only move on churn).
        cached = self._neighbors_cache.get(node_id)
        if cached is not None:
            return set(cached)
        own_zones = self._zones[node_id]
        neighbor_set: Set[int] = set()
        for other, zones in self._zones.items():
            if other == node_id:
                continue
            for zone in zones:
                if any(zone.touches(own) for own in own_zones):
                    neighbor_set.add(other)
                    break
        self._neighbors_cache[node_id] = neighbor_set
        return set(neighbor_set)

    def departure_reason(self, node_id: int) -> Optional[str]:
        """How a departed node left (``"leave"``/``"fail"``), if known."""
        record = self._departed.get(node_id)
        return record[0] if record else None

    # ------------------------------------------------------------------ routing
    def route(self, origin: int, point: int, *, now: float = 0.0) -> RouteResult:
        if origin not in self._zones:
            raise NoSuchPeerError(origin)
        coords = self.coordinates(point)
        responsible = self.responsible_for(point)
        path: List[int] = [origin]
        current = origin
        visited: Set[int] = {origin}
        max_hops = 4 * self.dimensions * self.axis_size
        while current != responsible and len(path) <= max_hops:
            current_distance = min(zone.distance_to(coords)
                                   for zone in self._zones[current])
            best: Optional[int] = None
            best_distance = current_distance
            for neighbor in self.neighbors(current):
                if neighbor in visited:
                    continue
                distance = min(zone.distance_to(coords)
                               for zone in self._zones[neighbor])
                if best is None or distance < best_distance:
                    best = neighbor
                    best_distance = distance
            if best is None:
                break
            path.append(best)
            visited.add(best)
            current = best
        if path[-1] != responsible:
            path.append(responsible)
        return RouteResult(path=tuple(path), responsible=responsible,
                           retries=0, timeouts=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CanSpace(bits={self.bits}, dimensions={self.dimensions}, "
                f"nodes={len(self._zones)})")
