"""Compact binary body encoding for the service-mode wire codec.

The transport's frames are ``4-byte big-endian length || body`` (see
:mod:`repro.net.codec`).  This module defines the *binary* body formats that
sit beside the legacy JSON body, discriminated by the body's first byte:

========  =======================================================
marker    body
========  =======================================================
``0x7b``  UTF-8 JSON object (``{`` — the legacy format)
``0x01``  tagged struct-packed encoding of one payload object
``0x02``  ``zlib``-compressed tagged encoding (bulk bodies only)
========  =======================================================

The tagged encoding is a deterministic, self-delimiting value stream built
from one tag byte plus big-endian fixed-width fields — the hot message shapes
(timestamps, key digests, batch entries) pack far tighter than their JSON
text.  Dict keys are emitted in sorted order, mirroring the JSON encoder's
``sort_keys=True``, so equal payloads always produce identical bytes; tuples
are encoded as lists, matching the JSON round-trip.  ``Timestamp`` values get
a dedicated tag instead of the JSON tag-object, so they round-trip without
the ``__repro.timestamp__`` wrapper.

Compression only replaces the uncompressed body when the packed encoding
reaches ``compress_min_bytes`` *and* ``zlib`` actually shrinks it, so small
control payloads never pay the inflate/deflate round trip.  Decompression is
bounded by :data:`MAX_FRAME_BYTES`, protecting the reader against a hostile
ratio bomb exactly like the length prefix protects it against a hostile
header.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Dict, List, Tuple

from repro.core.timestamps import Timestamp

__all__ = [
    "COMPRESS_MIN_BYTES",
    "CodecError",
    "FORMAT_BINARY",
    "FORMAT_JSON",
    "MARKER_BINARY",
    "MARKER_COMPRESSED",
    "MAX_FRAME_BYTES",
    "WIRE_FORMATS",
    "normalize_wire_format",
    "pack_payload",
    "unpack_payload",
]


class CodecError(ValueError):
    """A frame or payload could not be encoded or decoded."""


#: Hard upper bound on one frame's body (compressed *or* decompressed),
#: protecting both sides against a corrupt or hostile length prefix.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Default size threshold (bytes of packed body) above which a binary body is
#: considered for zlib compression.
COMPRESS_MIN_BYTES = 512

#: Wire-format names as negotiated between client and server.
FORMAT_JSON = "json"
FORMAT_BINARY = "binary"
WIRE_FORMATS: Tuple[str, ...] = (FORMAT_JSON, FORMAT_BINARY)

#: First body byte of a tagged binary body.
MARKER_BINARY = 0x01
#: First body byte of a zlib-compressed tagged binary body.
MARKER_COMPRESSED = 0x02

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

#: Bounds of the fixed-width integer tag; wider integers fall back to the
#: decimal-string tag so arbitrary Python ints survive the round trip.
_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1


def normalize_wire_format(name: str) -> str:
    """Validate and canonicalise a wire-format name."""
    if name not in WIRE_FORMATS:
        raise CodecError(f"unknown wire format {name!r}; "
                         f"expected one of {WIRE_FORMATS}")
    return name


# ----------------------------------------------------------------- encoding
def _encode_str(text: str, out: List[bytes]) -> None:
    raw = text.encode("utf-8")
    out.append(_U32.pack(len(raw)))
    out.append(raw)


def _encode_value(value: Any, out: List[bytes]) -> None:
    """Append the tagged encoding of ``value`` to ``out``."""
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, Timestamp):
        out.append(b"t")
        _encode_value(value.key, out)
        out.append(_I64.pack(value.value))
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            out.append(b"i")
            out.append(_I64.pack(value))
        else:
            out.append(b"I")
            _encode_str(str(value), out)
    elif isinstance(value, float):
        out.append(b"f")
        out.append(_F64.pack(value))
    elif isinstance(value, str):
        out.append(b"s")
        _encode_str(value, out)
    elif isinstance(value, (list, tuple)):
        out.append(b"l")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, dict):
        out.append(b"d")
        out.append(_U32.pack(len(value)))
        for key in sorted(value):
            if not isinstance(key, str):
                raise CodecError(f"binary payload dict keys must be strings, "
                                 f"got {type(key).__name__}")
            _encode_str(key, out)
            _encode_value(value[key], out)
    else:
        raise CodecError(f"value of type {type(value).__name__} is not "
                         f"wire-serialisable")


def pack_payload(payload: Dict[str, Any], *,
                 compress_min_bytes: int = COMPRESS_MIN_BYTES) -> bytes:
    """Encode ``payload`` as one binary frame body (marker included).

    Bodies whose packed encoding reaches ``compress_min_bytes`` are
    zlib-compressed when that actually saves bytes; smaller bodies ship as
    the plain tagged encoding.
    """
    if not isinstance(payload, dict):
        raise CodecError(f"frame payload must be a dict, "
                         f"got {type(payload).__name__}")
    chunks: List[bytes] = []
    _encode_value(payload, chunks)
    packed = b"".join(chunks)
    if len(packed) >= compress_min_bytes:
        compressed = zlib.compress(packed, 6)
        if len(compressed) < len(packed):
            return bytes((MARKER_COMPRESSED,)) + compressed
    return bytes((MARKER_BINARY,)) + packed


# ----------------------------------------------------------------- decoding
class _Reader:
    """Cursor over one packed body; every read is bounds-checked."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def exhausted(self) -> bool:
        return self._pos == len(self._data)

    def take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise CodecError(f"truncated binary body: wanted {count} bytes at "
                             f"offset {self._pos}, have {len(self._data)}")
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    def take_str(self) -> str:
        (length,) = _U32.unpack(self.take(_U32.size))
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as error:
            raise CodecError(f"malformed UTF-8 in binary body: {error}") from error

    def take_value(self) -> Any:
        tag = self.take(1)
        if tag == b"N":
            return None
        if tag == b"T":
            return True
        if tag == b"F":
            return False
        if tag == b"i":
            (value,) = _I64.unpack(self.take(_I64.size))
            return value
        if tag == b"I":
            try:
                return int(self.take_str())
            except ValueError as error:
                raise CodecError(f"malformed big integer: {error}") from error
        if tag == b"f":
            (value,) = _F64.unpack(self.take(_F64.size))
            return value
        if tag == b"s":
            return self.take_str()
        if tag == b"l":
            (count,) = _U32.unpack(self.take(_U32.size))
            return [self.take_value() for _ in range(count)]
        if tag == b"d":
            (count,) = _U32.unpack(self.take(_U32.size))
            result: Dict[str, Any] = {}
            for _ in range(count):
                key = self.take_str()
                result[key] = self.take_value()
            return result
        if tag == b"t":
            key = self.take_value()
            (counter,) = _I64.unpack(self.take(_I64.size))
            return Timestamp(key=key, value=counter)
        raise CodecError(f"unknown binary value tag {tag!r} at "
                         f"offset {self._pos - 1}")


def unpack_payload(body: bytes) -> Dict[str, Any]:
    """Decode one binary frame body (``0x01`` or ``0x02`` marker) to its payload."""
    if not body:
        raise CodecError("empty frame body")
    marker = body[0]
    packed = body[1:]
    if marker == MARKER_COMPRESSED:
        decompressor = zlib.decompressobj()
        try:
            packed = decompressor.decompress(packed, MAX_FRAME_BYTES)
        except zlib.error as error:
            raise CodecError(f"malformed compressed body: {error}") from error
        if decompressor.unconsumed_tail or not decompressor.eof:
            raise CodecError("compressed body exceeds the frame size limit "
                             "or is truncated")
    elif marker != MARKER_BINARY:
        raise CodecError(f"unknown binary body marker {marker:#04x}")
    reader = _Reader(packed)
    payload = reader.take_value()
    if not reader.exhausted:
        raise CodecError("trailing bytes after the binary payload")
    if not isinstance(payload, dict):
        raise CodecError(f"frame body must decode to an object, "
                         f"got {type(payload).__name__}")
    return payload
