"""Length-prefixed wire codec for the service-mode transport.

Frames are ``4-byte big-endian length || body``.  The body's first byte
discriminates its format (see :mod:`repro.net.wire` for the binary layouts):
``{`` opens the legacy compact key-sorted JSON object, ``0x01`` a tagged
struct-packed binary object, ``0x02`` a zlib-compressed binary object.  Both
encoders are deterministic functions of the payload, so a frame's byte size
is too — :func:`frame_size` *measures* the serialised size of any payload
(and :func:`wire_size_of` that of one :class:`~repro.dht.messages.Message`),
giving the bytes-per-op accounting the simulator's
:class:`~repro.dht.messages.MessageSizes` only models.

**Size convention**: :func:`frame_size` and :func:`wire_size_of` report the
full on-the-wire cost of a frame — the 4-byte length prefix *plus* the body —
matching what the transport counters in :mod:`repro.net.client` accumulate.
Code that needs the body alone subtracts ``FRAME_HEADER_BYTES``.

On top of the framing, the codec defines the JSON encoding of the existing
in-process types so the client and the server exchange *exactly* the objects
the simulation backend produces:

* :class:`~repro.dht.messages.Message` and
  :class:`~repro.dht.messages.OperationTrace`
  (:func:`message_to_dict`/:func:`trace_to_dict` and their inverses);
* the shared result types of :mod:`repro.api.results`
  (:func:`insert_result_to_dict`, :func:`retrieve_result_to_dict`, the batch
  variants, and their inverses) — batched results rebuild the *shared* batch
  trace so the in-process invariant (all per-key results reference one trace)
  survives the wire;
* :class:`~repro.core.timestamps.Timestamp` values, tagged so they round-trip
  losslessly inside otherwise plain-JSON payloads.

Keys and data must be JSON-serialisable (strings, numbers, booleans, ``None``,
lists, dicts); tuples arrive back as lists, which is the standard JSON
round-trip caveat.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.api.results import (
    BatchInsertResult,
    BatchRetrieveResult,
    InsertResult,
    RetrieveResult,
)
from repro.core.timestamps import Timestamp
from repro.dht.messages import Message, MessageKind, MessageSizes, OperationTrace
from repro.net.wire import (
    COMPRESS_MIN_BYTES,
    FORMAT_BINARY,
    FORMAT_JSON,
    MAX_FRAME_BYTES,
    WIRE_FORMATS,
    CodecError,
    normalize_wire_format,
    pack_payload,
    unpack_payload,
)

__all__ = [
    "COMPRESS_MIN_BYTES",
    "CodecError",
    "FORMAT_BINARY",
    "FORMAT_JSON",
    "FRAME_HEADER_BYTES",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "WIRE_FORMATS",
    "normalize_wire_format",
    "batch_insert_result_from_dict",
    "batch_insert_result_to_dict",
    "batch_retrieve_result_from_dict",
    "batch_retrieve_result_to_dict",
    "decode_frame",
    "decode_value",
    "encode_frame",
    "encode_value",
    "frame_size",
    "insert_result_from_dict",
    "insert_result_to_dict",
    "message_from_dict",
    "message_to_dict",
    "retrieve_result_from_dict",
    "retrieve_result_to_dict",
    "trace_from_dict",
    "trace_to_dict",
    "wire_size_of",
]

_HEADER = struct.Struct(">I")

#: Size of the length prefix every frame carries; :func:`frame_size` and
#: :func:`wire_size_of` include it (the header-inclusive convention).
FRAME_HEADER_BYTES = _HEADER.size

#: Tag key marking an encoded :class:`Timestamp` inside a JSON payload.
_TIMESTAMP_TAG = "__repro.timestamp__"


# ------------------------------------------------------------------- framing
def encode_frame(payload: Dict[str, Any], *, wire_format: str = FORMAT_JSON,
                 compress_min_bytes: int = COMPRESS_MIN_BYTES) -> bytes:
    """Serialise ``payload`` as one length-prefixed frame.

    ``wire_format`` selects the body encoding: ``"json"`` (the legacy compact
    key-sorted JSON object) or ``"binary"`` (the tagged struct-packed
    encoding of :mod:`repro.net.wire`, zlib-compressed once the packed body
    reaches ``compress_min_bytes``).  Either way the bytes are a
    deterministic function of the payload.
    """
    if normalize_wire_format(wire_format) == FORMAT_BINARY:
        body = pack_payload(payload, compress_min_bytes=compress_min_bytes)
    else:
        try:
            body = json.dumps(payload, separators=(",", ":"),
                              sort_keys=True).encode("utf-8")
        except (TypeError, ValueError) as error:
            raise CodecError(
                f"payload is not JSON-serialisable: {error}") from error
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(f"frame body of {len(body)} bytes exceeds the "
                         f"{MAX_FRAME_BYTES}-byte limit")
    return _HEADER.pack(len(body)) + body


def decode_frame(data: bytes) -> Dict[str, Any]:
    """Decode exactly one complete frame (header + body) back to its payload."""
    decoder = FrameDecoder()
    frames = decoder.feed(data)
    if len(frames) != 1 or decoder.pending_bytes:
        raise CodecError(f"expected exactly one complete frame, decoded "
                         f"{len(frames)} with {decoder.pending_bytes} bytes left")
    return frames[0]


def frame_size(payload: Dict[str, Any], *,
               wire_format: str = FORMAT_JSON) -> int:
    """The measured wire size of ``payload``, in bytes.

    Header-inclusive by convention: the 4-byte length prefix
    (:data:`FRAME_HEADER_BYTES`) is counted, so the result is exactly the
    byte count a transport would put on the wire for this payload in
    ``wire_format``.
    """
    return len(encode_frame(payload, wire_format=wire_format))


def wire_size_of(message: Message, *, wire_format: str = FORMAT_JSON) -> int:
    """The measured wire size of one :class:`Message`, in bytes.

    Follows the same header-inclusive convention as :func:`frame_size`.
    """
    return frame_size(message_to_dict(message), wire_format=wire_format)


class FrameDecoder:
    """Incremental frame decoder: feed byte chunks, collect decoded payloads.

    The decoder owns a reassembly buffer, so frames may arrive split across
    arbitrarily many chunks (or many frames inside one chunk).  Each frame's
    body format is detected from its first byte, so one connection may freely
    interleave JSON and binary frames (that is how format negotiation stays a
    capability check instead of a handshake).  A malformed frame is consumed
    from the buffer *before* its :class:`CodecError` is raised, so the
    decoder stays usable for the frames that follow it.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """How many buffered bytes are waiting for the rest of their frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Append ``data`` to the buffer and return every completed payload."""
        return [payload for payload, _format in self._drain_list(data)]

    def feed_with_formats(self, data: bytes) -> List[Tuple[Dict[str, Any], str]]:
        """Like :meth:`feed`, but pairs each payload with its body format.

        The format name (``"json"`` or ``"binary"``) lets a server reply in
        the same encoding the request arrived in.
        """
        return self._drain_list(data)

    def _drain_list(self, data: bytes) -> List[Tuple[Dict[str, Any], str]]:
        self._buffer.extend(data)
        return list(self._drain())

    def _drain(self) -> Iterator[Tuple[Dict[str, Any], str]]:
        while len(self._buffer) >= _HEADER.size:
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise CodecError(f"frame header announces {length} bytes, over "
                                 f"the {MAX_FRAME_BYTES}-byte limit")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return
            body = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            yield self._decode_body(body)

    @staticmethod
    def _decode_body(body: bytes) -> Tuple[Dict[str, Any], str]:
        if body and body[0] < 0x20:  # binary markers sort below printable JSON
            return unpack_payload(body), FORMAT_BINARY
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CodecError(f"malformed frame body: {error}") from error
        if not isinstance(payload, dict):
            raise CodecError(f"frame body must be a JSON object, "
                             f"got {type(payload).__name__}")
        return payload, FORMAT_JSON


# ------------------------------------------------------------------- values
def encode_value(value: Any) -> Any:
    """Encode an application value, tagging :class:`Timestamp` instances.

    Containers are walked recursively; everything else must already be
    JSON-serialisable (enforced by :func:`encode_frame` at send time).
    """
    if isinstance(value, Timestamp):
        return {_TIMESTAMP_TAG: [encode_value(value.key), value.value]}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {key: encode_value(item) for key, item in value.items()}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`: restore tagged :class:`Timestamp`\\ s."""
    if isinstance(value, dict):
        if set(value) == {_TIMESTAMP_TAG}:
            key, counter = value[_TIMESTAMP_TAG]
            return Timestamp(key=decode_value(key), value=counter)
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


# ----------------------------------------------------------------- messages
def message_to_dict(message: Message) -> Dict[str, Any]:
    """Encode one traced :class:`Message` as a JSON-ready dict."""
    return {"kind": message.kind.value, "size_bytes": message.size_bytes,
            "source": message.source, "dest": message.dest,
            "timed_out": message.timed_out}


def message_from_dict(payload: Dict[str, Any]) -> Message:
    """Rebuild a :class:`Message` encoded by :func:`message_to_dict`."""
    try:
        kind = MessageKind(payload["kind"])
    except (KeyError, ValueError) as error:
        raise CodecError(f"bad message payload {payload!r}: {error}") from error
    return Message(kind=kind, size_bytes=payload["size_bytes"],
                   source=payload.get("source"), dest=payload.get("dest"),
                   timed_out=bool(payload.get("timed_out", False)))


def trace_to_dict(trace: OperationTrace) -> Dict[str, Any]:
    """Encode an :class:`OperationTrace` (sizes + ordered messages)."""
    return {"sizes": {"control_bytes": trace.sizes.control_bytes,
                      "data_bytes": trace.sizes.data_bytes},
            "messages": [message_to_dict(message) for message in trace]}


def trace_from_dict(payload: Dict[str, Any]) -> OperationTrace:
    """Rebuild an :class:`OperationTrace` encoded by :func:`trace_to_dict`."""
    sizes = payload.get("sizes", {})
    trace = OperationTrace(sizes=MessageSizes(
        control_bytes=sizes.get("control_bytes", 128),
        data_bytes=sizes.get("data_bytes", 1024)))
    for message in payload.get("messages", ()):
        decoded = message_from_dict(message)
        trace.record(decoded.kind, source=decoded.source, dest=decoded.dest,
                     size_bytes=decoded.size_bytes, timed_out=decoded.timed_out)
    return trace


# ------------------------------------------------------------------ results
def insert_result_to_dict(result: InsertResult, *,
                          with_trace: bool = True) -> Dict[str, Any]:
    """Encode an :class:`InsertResult` (the batch encoder omits the trace)."""
    payload = {"key": encode_value(result.key),
               "replicas_written": result.replicas_written,
               "replicas_attempted": result.replicas_attempted,
               "timestamp": encode_value(result.timestamp),
               "version": result.version, "service": result.service}
    if with_trace:
        payload["trace"] = trace_to_dict(result.trace)
    return payload


def insert_result_from_dict(payload: Dict[str, Any], *,
                            trace: Optional[OperationTrace] = None) -> InsertResult:
    """Rebuild an :class:`InsertResult`; ``trace`` injects a shared batch trace."""
    if trace is None:
        trace = trace_from_dict(payload["trace"])
    return InsertResult(key=decode_value(payload["key"]),
                        replicas_written=payload["replicas_written"],
                        replicas_attempted=payload["replicas_attempted"],
                        trace=trace,
                        timestamp=decode_value(payload.get("timestamp")),
                        version=payload.get("version"),
                        service=payload.get("service"))


def retrieve_result_to_dict(result: RetrieveResult, *,
                            with_trace: bool = True) -> Dict[str, Any]:
    """Encode a :class:`RetrieveResult` (the batch encoder omits the trace)."""
    payload = {"key": encode_value(result.key), "data": encode_value(result.data),
               "found": result.found, "is_current": result.is_current,
               "replicas_inspected": result.replicas_inspected,
               "timestamp": encode_value(result.timestamp),
               "latest_timestamp": encode_value(result.latest_timestamp),
               "version": result.version, "ambiguous": result.ambiguous,
               "consistency": result.consistency, "service": result.service}
    if with_trace:
        payload["trace"] = trace_to_dict(result.trace)
    return payload


def retrieve_result_from_dict(payload: Dict[str, Any], *,
                              trace: Optional[OperationTrace] = None
                              ) -> RetrieveResult:
    """Rebuild a :class:`RetrieveResult`; ``trace`` injects a shared batch trace."""
    if trace is None:
        trace = trace_from_dict(payload["trace"])
    return RetrieveResult(key=decode_value(payload["key"]),
                          data=decode_value(payload.get("data")),
                          found=payload["found"],
                          is_current=payload["is_current"],
                          replicas_inspected=payload["replicas_inspected"],
                          trace=trace,
                          timestamp=decode_value(payload.get("timestamp")),
                          latest_timestamp=decode_value(
                              payload.get("latest_timestamp")),
                          version=payload.get("version"),
                          ambiguous=payload.get("ambiguous", False),
                          consistency=payload.get("consistency", "current"),
                          service=payload.get("service"))


def batch_insert_result_to_dict(result: BatchInsertResult) -> Dict[str, Any]:
    """Encode a :class:`BatchInsertResult`: per-key results + one shared trace."""
    return {"results": [insert_result_to_dict(item, with_trace=False)
                        for item in result.results],
            "trace": trace_to_dict(result.trace)}


def batch_insert_result_from_dict(payload: Dict[str, Any]) -> BatchInsertResult:
    """Rebuild a :class:`BatchInsertResult` around one shared trace object."""
    trace = trace_from_dict(payload["trace"])
    return BatchInsertResult(
        results=tuple(insert_result_from_dict(item, trace=trace)
                      for item in payload["results"]),
        trace=trace)


def batch_retrieve_result_to_dict(result: BatchRetrieveResult) -> Dict[str, Any]:
    """Encode a :class:`BatchRetrieveResult`: per-key results + one shared trace."""
    return {"results": [retrieve_result_to_dict(item, with_trace=False)
                        for item in result.results],
            "trace": trace_to_dict(result.trace),
            "consistency": result.consistency}


def batch_retrieve_result_from_dict(payload: Dict[str, Any]) -> BatchRetrieveResult:
    """Rebuild a :class:`BatchRetrieveResult` around one shared trace object."""
    trace = trace_from_dict(payload["trace"])
    return BatchRetrieveResult(
        results=tuple(retrieve_result_from_dict(item, trace=trace)
                      for item in payload["results"]),
        trace=trace,
        consistency=payload.get("consistency", "current"))
