"""Load-generation harness: latency percentiles and throughput, per backend.

Where the simulator reports message counts and *simulated* response times,
the load generator measures what a serving system is judged on: wall-clock
**latency percentiles** (p50/p95/p99) and **throughput** under a configured
arrival process.  It reuses the scenario engine's arrival models
(:mod:`repro.simulation.scenarios.arrivals` — ``uniform``, ``poisson``,
``flash-crowd``, ``diurnal``) to pace an open-loop request schedule, drives
any registered backend (:mod:`repro.net.backends` — the in-process simulator
or a live ``repro serve`` node over TCP/UDS) through the ordinary
``Session`` operations, and writes a spec-named JSON artifact next to the
other bench results (``loadgen-<arrival>-<backend>-<hash12>.json``), the
same naming convention the execution layer uses for plan artifacts.

The workload is deterministic given the spec's seed: the op mix (reads vs
inserts, single vs batched), the key choices and the arrival times are all
drawn from one seeded RNG, so two backends given the same spec execute the
same operation sequence — which is how the latency comparison stays
apples-to-apples.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

# reprolint: allow[REP005] reason=the harness replays the simulation's arrival models against the real service so sim and tcp runs share workloads (tests/net/test_loadgen.py)
from repro.simulation.scenarios.arrivals import ARRIVAL_MODELS, build_arrivals

__all__ = ["LoadReport", "LoadSpec", "artifact_path", "percentile",
           "run_load", "summarize_latencies", "write_report"]

#: Default results directory (the bench artifacts live here too).
RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


@dataclass
class LoadSpec:
    """One load-generation run, fully described (and content-hashable).

    ``duration_s`` is the *wall-clock* pacing window the arrival model
    stretches over; ``ops`` the target operation count (models with random
    counts, e.g. ``poisson``, treat it as the expectation).  ``batch_every``
    issues every Nth operation as a small batched call (``insert_many`` /
    ``retrieve_many``) so the harness exercises the batched wire path too;
    ``0`` disables batching.
    """

    ops: int = 200
    duration_s: float = 2.0
    arrival: Dict[str, Any] = field(default_factory=lambda: {"model": "poisson"})
    read_fraction: float = 0.8
    keys: int = 16
    batch_every: int = 10
    batch_size: int = 4
    consistency: str = "current"
    seed: int = 2007

    def __post_init__(self) -> None:
        if self.ops < 1:
            raise ValueError("ops must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.keys < 1:
            raise ValueError("keys must be >= 1")
        if self.batch_every < 0 or self.batch_size < 1:
            raise ValueError("batch_every must be >= 0 and batch_size >= 1")
        model = self.arrival.get("model", "uniform")
        if model not in ARRIVAL_MODELS:
            raise ValueError(f"unknown arrival model {model!r}; known models: "
                             f"{', '.join(sorted(ARRIVAL_MODELS))}")

    def to_dict(self) -> Dict[str, Any]:
        """The spec as a JSON-ready dict (embedded in the report artifact)."""
        return {"ops": self.ops, "duration_s": self.duration_s,
                "arrival": dict(self.arrival),
                "read_fraction": self.read_fraction, "keys": self.keys,
                "batch_every": self.batch_every, "batch_size": self.batch_size,
                "consistency": self.consistency, "seed": self.seed}

    @property
    def spec_hash(self) -> str:
        """Stable BLAKE2s content hash of the spec (names the artifact)."""
        body = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return hashlib.blake2s(body).hexdigest()

    @property
    def arrival_model(self) -> str:
        """The arrival model name (used in the artifact file name)."""
        return self.arrival.get("model", "uniform")


@dataclass
class LoadReport:
    """The measured outcome of one load run."""

    spec: LoadSpec
    backend: str
    operations: int
    requests: int
    errors: int
    elapsed_s: float
    latencies_ms: List[float]
    transport: Optional[Dict[str, Any]] = None
    #: Report of a trailing delta anti-entropy round (``sync_replicas``),
    #: attached by the CLI's ``--sync-round``; ``None`` when no round ran.
    sync: Optional[Dict[str, Any]] = None

    @property
    def throughput_ops_per_s(self) -> float:
        """Completed operations per wall-clock second."""
        return self.operations / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """The JSON artifact payload: spec, throughput and percentiles."""
        payload = {"harness": "loadgen", "spec": self.spec.to_dict(),
                   "spec_hash": self.spec.spec_hash, "backend": self.backend,
                   "operations": self.operations, "requests": self.requests,
                   "errors": self.errors, "elapsed_s": self.elapsed_s,
                   "throughput_ops_per_s": self.throughput_ops_per_s,
                   "latency_ms": summarize_latencies(self.latencies_ms),
                   "transport": self.transport}
        if self.sync is not None:
            payload["sync"] = self.sync
        return payload


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an ascending-sorted sequence."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    position = fraction * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    weight = position - lower
    return sorted_values[lower] * (1.0 - weight) + sorted_values[upper] * weight


def summarize_latencies(latencies_ms: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99 plus mean/min/max of a latency sample, in milliseconds."""
    if not latencies_ms:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0,
                "mean": 0.0, "min": 0.0, "max": 0.0}
    ordered = sorted(latencies_ms)
    return {"p50": percentile(ordered, 0.50),
            "p95": percentile(ordered, 0.95),
            "p99": percentile(ordered, 0.99),
            "mean": sum(ordered) / len(ordered),
            "min": ordered[0], "max": ordered[-1]}


def _build_schedule(spec: LoadSpec,
                    rng: random.Random) -> List[Tuple[str, Any]]:
    """The deterministic operation list: (op, payload) per arrival slot."""
    operations: List[Tuple[str, Any]] = []
    for index in range(spec.ops):
        batched = (spec.batch_every > 0
                   and index % spec.batch_every == spec.batch_every - 1)
        read = rng.random() < spec.read_fraction
        if batched:
            keys = [f"k{rng.randrange(spec.keys)}" for _ in range(spec.batch_size)]
            if read:
                operations.append(("retrieve_many", keys))
            else:
                operations.append(("insert_many",
                                   [(key, {"op": index, "key": key})
                                    for key in keys]))
        else:
            key = f"k{rng.randrange(spec.keys)}"
            if read:
                operations.append(("retrieve", key))
            else:
                operations.append(("insert", (key, {"op": index, "key": key})))
    return operations


def run_load(cluster: Any, spec: LoadSpec, *, backend: str = "sim",
             paced: bool = True) -> LoadReport:
    """Run ``spec`` against ``cluster`` (any backend) and measure latencies.

    ``paced=True`` (the default) replays the arrival model's schedule
    open-loop in wall-clock time: each request is issued at its scheduled
    offset (or immediately, when the previous one overran — the standard
    open-loop catch-up).  ``paced=False`` issues back-to-back, turning the
    harness into a closed-loop throughput probe.

    Returns a :class:`LoadReport`; per-operation failures (transport
    timeouts that exhausted their retries) are counted in ``errors`` rather
    than aborting the run.
    """
    from repro.net.client import TransportError

    rng = random.Random(spec.seed)
    arrival_times = build_arrivals(spec.arrival).times(spec.ops, spec.duration_s,
                                                       rng)
    operations = _build_schedule(spec, rng)[:len(arrival_times)]

    client = getattr(cluster, "client", None)
    counters_before = client.counters.as_dict() if client is not None else {}

    latencies_ms: List[float] = []
    errors = 0
    completed = 0
    with cluster.session(consistency=spec.consistency) as session:
        # reprolint: allow[REP001] reason=measuring wall-clock latency is this harness's purpose; determinism of the measured stack is pinned by tests/net/test_loadgen.py
        started = time.perf_counter()
        for offset, (op, payload) in zip(arrival_times, operations):
            if paced:
                # reprolint: allow[REP001] reason=open-loop pacing compares against real elapsed time by design (tests/net/test_loadgen.py)
                delay = offset - (time.perf_counter() - started)
                if delay > 0:
                    # reprolint: allow[REP004] reason=the load generator is a synchronous client-side pacer, not event-loop code (tests/net/test_loadgen.py)
                    time.sleep(delay)
            # reprolint: allow[REP001] reason=per-operation latency timestamping is the measurement itself (tests/net/test_loadgen.py)
            issue = time.perf_counter()
            try:
                if op == "retrieve":
                    session.retrieve(payload)
                elif op == "insert":
                    session.insert(payload[0], payload[1])
                elif op == "retrieve_many":
                    session.retrieve_many(payload)
                else:
                    session.insert_many(payload)
            except TransportError:
                errors += 1
                continue
            # reprolint: allow[REP001] reason=per-operation latency timestamping is the measurement itself (tests/net/test_loadgen.py)
            latencies_ms.append((time.perf_counter() - issue) * 1000.0)
            completed += 1
        # reprolint: allow[REP001] reason=total wall-clock elapsed feeds the throughput figure in LoadReport (tests/net/test_loadgen.py)
        elapsed = time.perf_counter() - started

    transport = None
    if client is not None:
        # Per-run deltas, so back-to-back runs on one connection do not bleed
        # into each other's byte accounting.
        transport = {name: value - counters_before.get(name, 0)
                     for name, value in client.counters.as_dict().items()}
        transport["wire_format"] = getattr(client, "wire_format", "json")
        if completed > 0:
            transport["bytes_per_op"] = (
                (transport["bytes_sent"] + transport["bytes_received"])
                / completed)
    return LoadReport(spec=spec, backend=backend, operations=completed,
                      requests=len(operations), errors=errors,
                      elapsed_s=elapsed, latencies_ms=latencies_ms,
                      transport=transport)


def artifact_path(results_dir: pathlib.Path, spec: LoadSpec,
                  backend: str) -> pathlib.Path:
    """``loadgen-<arrival>-<backend>-<hash12>.json`` under ``results_dir``.

    Mirrors the execution layer's plan-artifact naming: the file name is a
    function of the spec, so re-running the same spec overwrites the same
    artifact and a changed spec produces a distinguishable new one.
    """
    return (pathlib.Path(results_dir)
            / f"loadgen-{spec.arrival_model}-{backend}-{spec.spec_hash[:12]}.json")


def write_report(report: LoadReport,
                 output: Optional[pathlib.Path] = None) -> pathlib.Path:
    """Write the report JSON (default: the spec-named path under results)."""
    if output is None:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        output = artifact_path(RESULTS_DIR, report.spec, report.backend)
    output = pathlib.Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True)
                      + "\n", encoding="utf-8")
    return output
