"""repro.net — real-service mode: the asyncio transport behind Cluster/Session.

Everything below :mod:`repro.api` runs in-process against the simulation
substrate; this package is the step from *simulator* to *system serving
traffic*.  It keeps the exact client surface — the same
:class:`~repro.api.cluster.Session` drives either substrate — and swaps the
execution behind it:

* :mod:`repro.net.codec` — the length-prefixed JSON wire codec for the
  existing message/trace/result types, with measured per-message sizes;
* :mod:`repro.net.server` — the asyncio node server hosting an overlay
  population + :class:`~repro.dht.storage.LocalStore` replicas + KTS/UMS
  handlers over TCP and Unix domain sockets, with per-connection
  backpressure (bounded inflight queue) and graceful shutdown;
* :mod:`repro.net.client` — the client transport: connection pool, request
  timeouts and bounded retries mapped onto the existing retry/timeout
  accounting (`LOOKUP_RETRY` trace messages + :class:`TransportCounters`);
* :mod:`repro.net.backends` — the name-keyed backend registry (``sim`` /
  ``tcp`` / ``uds``) that makes the substrate a configuration choice;
* :mod:`repro.net.loadgen` — the load harness: scenario arrival models
  pacing an open-loop workload, reporting throughput and p50/p95/p99
  latency percentiles as spec-named bench JSON.

Quickstart (one process serving, another loading)::

    # terminal 1
    python -m repro serve --port 9207 --peers 200 --seed 2007

    # terminal 2
    python -m repro loadgen --backend tcp --address 127.0.0.1:9207 \\
        --arrival poisson --ops 500 --duration 5
"""

from repro.net.backends import backend_names, build_backend, register_backend
from repro.net.client import (
    NetClient,
    RemoteCluster,
    RemoteService,
    RequestTimeout,
    TransportCounters,
    TransportError,
    connect,
)
from repro.net.loadgen import LoadReport, LoadSpec, run_load
from repro.net.server import FaultSchedule, NodeServer, ServerThread

__all__ = [
    "FaultSchedule",
    "LoadReport",
    "LoadSpec",
    "NetClient",
    "NodeServer",
    "RemoteCluster",
    "RemoteService",
    "RequestTimeout",
    "ServerThread",
    "TransportCounters",
    "TransportError",
    "backend_names",
    "build_backend",
    "connect",
    "register_backend",
    "run_load",
]
