"""Name-keyed backend registry: one seam, two execution substrates.

The repo's third pluggable registry, mirroring the overlay registry
(:mod:`repro.dht.registry`) and the service registry
(:mod:`repro.api.services`): a *backend* is a factory returning a cluster
handle with a ``session(...)`` method, so the same ``Session`` code path
drives either execution substrate by name:

* ``"sim"`` — the in-process simulation substrate
  (:meth:`repro.api.cluster.Cluster.build`);
* ``"tcp"`` — a :class:`~repro.net.client.RemoteCluster` speaking the wire
  protocol to a :class:`~repro.net.server.NodeServer` over TCP
  (``address=(host, port)`` or ``"host:port"``);
* ``"uds"`` — the same over a Unix domain socket (``address=<path>``).

Example::

    from repro.net.backends import build_backend

    cluster = build_backend("sim", peers=64, seed=2007)
    # ... or, against a running server:
    cluster = build_backend("tcp", address="127.0.0.1:9207")
    with cluster.session() as session:
        session.insert("k", {"v": 1})
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

__all__ = ["backend_names", "build_backend", "is_backend_registered",
           "parse_tcp_address", "register_backend"]

#: A backend factory: keyword arguments in, cluster-like handle out.
BackendFactory = Callable[..., Any]

_BACKENDS: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory, *,
                     replace: bool = False) -> None:
    """Register ``factory`` under ``name`` (case-insensitive)."""
    key = name.lower()
    if not key:
        raise ValueError("backend name must be a non-empty string")
    if key in _BACKENDS and not replace:
        raise ValueError(f"backend {key!r} is already registered; "
                         "pass replace=True to override it")
    _BACKENDS[key] = factory


def is_backend_registered(name: str) -> bool:
    """Whether ``name`` resolves to a registered backend factory."""
    return name.lower() in _BACKENDS


def backend_names() -> Tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def build_backend(name: str, **options: Any) -> Any:
    """Build the backend registered under ``name`` with ``options``."""
    key = name.lower()
    factory = _BACKENDS.get(key)
    if factory is None:
        known = ", ".join(repr(known_name) for known_name in backend_names())
        raise ValueError(f"unknown backend {key!r}; registered backends: {known}")
    return factory(**options)


def parse_tcp_address(address: Any) -> Tuple[str, int]:
    """Normalise a TCP address: ``(host, port)`` or a ``"host:port"`` string."""
    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"expected 'host:port', got {address!r}")
        return host, int(port)
    host, port = address
    return str(host), int(port)


# --------------------------------------------------------- built-in backends
def _build_sim(**options: Any) -> Any:
    """The in-process simulation backend (``Cluster.build`` verbatim)."""
    from repro.api.cluster import Cluster

    return Cluster.build(**options)


def _build_tcp(*, address: Any, pool_size: int = 2, timeout_s: float = 5.0,
               max_retries: int = 2, wire_format: str = "auto",
               **_ignored: Any) -> Any:
    """The TCP service backend; cluster-construction options are the server's."""
    from repro.net.client import connect

    return connect(parse_tcp_address(address), pool_size=pool_size,
                   timeout_s=timeout_s, max_retries=max_retries,
                   wire_format=wire_format)


def _build_uds(*, address: str, pool_size: int = 2, timeout_s: float = 5.0,
               max_retries: int = 2, wire_format: str = "auto",
               **_ignored: Any) -> Any:
    """The Unix-domain-socket service backend (``address`` is the path)."""
    from repro.net.client import connect

    return connect(str(address), pool_size=pool_size, timeout_s=timeout_s,
                   max_retries=max_retries, wire_format=wire_format)


register_backend("sim", _build_sim)
register_backend("tcp", _build_tcp)
register_backend("uds", _build_uds)
