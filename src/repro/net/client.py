"""Client transport: connection pool, timeouts and bounded retries.

:func:`connect` opens a :class:`RemoteCluster` against a running
:class:`~repro.net.server.NodeServer`, and hands out the **same**
:class:`~repro.api.cluster.Session` handles the simulation backend does —
the session's service is a :class:`RemoteService` satisfying the
:class:`~repro.api.services.CurrencyService` protocol, so every caller written
against ``Cluster``/``Session`` (apps, load generator, tests) drives real
sockets without changing a line.

The transport internals:

* a private asyncio event loop runs on a daemon thread; the synchronous
  facade submits coroutines with ``run_coroutine_threadsafe`` (sessions stay
  blocking, exactly like the in-process backend);
* a **connection pool** (``pool_size`` persistent connections, created
  lazily, reused round-robin) amortises connection setup across requests;
* every request carries a **timeout**; a timed-out connection is torn down
  (its reply can no longer be matched) and the request is retried on a fresh
  connection, up to ``max_retries`` times, after which
  :class:`RequestTimeout` surfaces to the caller.

Retries map onto the existing accounting: each timeout-retry is recorded in
the operation's :class:`~repro.dht.messages.OperationTrace` as a
``LOOKUP_RETRY`` message with ``timed_out=True`` — byte-for-byte the
convention :meth:`OperationTrace.record_route` uses for the simulator's
routing retries — and tallied in :class:`TransportCounters`.  Note the
at-least-once consequence: a dropped *reply* does not undo the executed
request, so a retried insert simply stamps a newer timestamp (newest-wins
makes inserts idempotent in effect).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Sequence, Tuple, Union

from repro.api.cluster import Session
from repro.api.results import (
    BatchInsertResult,
    BatchRetrieveResult,
    Consistency,
    InsertResult,
    RetrieveResult,
)
from repro.dht.messages import MessageKind, OperationTrace
from repro.net import codec

__all__ = ["NetClient", "RemoteCluster", "RemoteService", "RequestStats",
           "RequestTimeout", "TransportCounters", "TransportError", "connect"]

#: An address: ``(host, port)`` for TCP, or a filesystem path for UDS.
Address = Union[Tuple[str, int], str]


class TransportError(RuntimeError):
    """The transport failed (connection refused, protocol violation, ...)."""


class RequestTimeout(TransportError):
    """A request exhausted its bounded retries without receiving a reply."""


@dataclass
class TransportCounters:
    """Running transport tallies of one client (mirrors the trace accounting).

    ``timeouts`` counts requests that waited out their timeout, ``retries``
    the re-sends those timeouts triggered (a timeout on the final permitted
    attempt raises instead of retrying, so ``retries <= timeouts``);
    ``reconnects`` counts replacement connections, and the byte counters the
    measured frame sizes on the wire.
    """

    requests: int = 0
    retries: int = 0
    timeouts: int = 0
    reconnects: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (for reports and bench JSON)."""
        return asdict(self)


@dataclass
class RequestStats:
    """Per-request transport accounting returned alongside each reply."""

    attempts: int = 1
    retries: int = 0
    timeouts: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    trace_messages: list = field(default_factory=list)


class _Connection:
    """One pooled connection: a stream pair plus its frame decoder."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.decoder = codec.FrameDecoder()
        self.closed = False

    async def request(self, frame: bytes) -> Tuple[Dict[str, Any], int]:
        """Send one encoded frame; return the reply payload and its wire bytes.

        The byte count is *measured* (bytes read off the socket for this
        reply, header included), not recomputed from the payload — so the
        transport counters stay exact whichever format the server replied in.
        """
        self.writer.write(frame)
        await self.writer.drain()
        received = self.decoder.pending_bytes
        while True:
            chunk = await self.reader.read(64 * 1024)
            if not chunk:
                raise TransportError("server closed the connection")
            received += len(chunk)
            frames = self.decoder.feed(chunk)
            if frames:
                if len(frames) != 1:
                    raise TransportError(
                        f"expected one reply frame, got {len(frames)}")
                return frames[0], received - self.decoder.pending_bytes

    def close(self) -> None:
        """Tear the connection down (a timed-out link cannot be reused)."""
        if not self.closed:
            self.closed = True
            self.writer.close()


class NetClient:
    """Synchronous request facade over the pooled asyncio transport.

    Parameters
    ----------
    address:
        ``(host, port)`` for TCP or a socket path (``str``) for UDS.
    pool_size:
        Number of persistent connections kept open (created lazily).
    timeout_s:
        Per-attempt reply timeout.
    max_retries:
        How many times a timed-out request is re-sent before
        :class:`RequestTimeout` is raised (total attempts =
        ``max_retries + 1``).
    wire_format:
        Body encoding of outgoing frames (``"json"`` or ``"binary"``); the
        server replies in kind.  :func:`connect` negotiates this from the
        server's ``info`` advertisement — only set it directly against a
        server known to accept the format.
    """

    def __init__(self, address: Address, *, pool_size: int = 2,
                 timeout_s: float = 5.0, max_retries: int = 2,
                 wire_format: str = codec.FORMAT_JSON) -> None:
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        self.address = address
        self.pool_size = pool_size
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.wire_format = codec.normalize_wire_format(wire_format)
        self.counters = TransportCounters()
        self._next_id = 0
        self._created = 0
        self._closed = False
        self._lock = threading.Lock()
        self._loop = asyncio.new_event_loop()
        self._pool: Optional["asyncio.Queue"] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run_loop, daemon=True,
                                        name="repro-net-client")
        self._thread.start()
        self._ready.wait()

    # ---------------------------------------------------------------- loop
    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        # The pool queue must be created on the loop thread: on Python 3.9
        # asyncio.Queue still binds the thread's current event loop.
        self._pool = asyncio.Queue()
        self._ready.set()
        self._loop.run_forever()
        self._loop.close()

    def _submit(self, coroutine):
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    # ---------------------------------------------------------------- pool
    async def _open_connection(self) -> _Connection:
        try:
            if isinstance(self.address, str):
                reader, writer = await asyncio.open_unix_connection(self.address)
            else:
                host, port = self.address
                reader, writer = await asyncio.open_connection(host, port)
        except OSError as error:
            raise TransportError(f"cannot connect to {self.address!r}: "
                                 f"{error}") from error
        return _Connection(reader, writer)

    async def _acquire(self) -> _Connection:
        while True:
            try:
                connection = self._pool.get_nowait()
            except asyncio.QueueEmpty:
                break
            if not connection.closed:
                return connection
        if self._created < self.pool_size:
            self._created += 1
            try:
                return await self._open_connection()
            except TransportError:
                self._created -= 1
                raise
        connection = await self._pool.get()
        if connection.closed:
            self.counters.reconnects += 1
            return await self._open_connection()
        return connection

    def _release(self, connection: _Connection) -> None:
        self._pool.put_nowait(connection)

    async def _replace(self, connection: _Connection) -> None:
        connection.close()
        self.counters.reconnects += 1
        try:
            self._pool.put_nowait(await self._open_connection())
        except TransportError:
            self._created -= 1  # re-open lazily on the next acquire

    # ------------------------------------------------------------- requests
    def request(self, op: str, **params: Any) -> Tuple[Any, RequestStats]:
        """Issue one request; returns ``(result, per-request stats)``.

        Raises :class:`RequestTimeout` after the bounded retries are
        exhausted, and :class:`TransportError` on a server-reported error or
        a protocol violation.
        """
        with self._lock:
            if self._closed:
                raise TransportError("client is closed")
            request_id = self._next_id
            self._next_id += 1
        payload = {"id": request_id, "op": op}
        payload.update(params)
        frame = codec.encode_frame(payload, wire_format=self.wire_format)
        return self._submit(self._request_with_retries(request_id, frame))

    async def _request_with_retries(self, request_id: int,
                                    frame: bytes) -> Tuple[Any, RequestStats]:
        stats = RequestStats(attempts=0)
        self.counters.requests += 1
        for attempt in range(self.max_retries + 1):
            stats.attempts += 1
            connection = await self._acquire()
            try:
                reply, received = await asyncio.wait_for(
                    connection.request(frame), timeout=self.timeout_s)
            except asyncio.TimeoutError:
                stats.timeouts += 1
                self.counters.timeouts += 1
                await self._replace(connection)
                if attempt < self.max_retries:
                    # Same convention as the simulator's routing retries:
                    # one LOOKUP_RETRY message, flagged timed out.
                    stats.retries += 1
                    self.counters.retries += 1
                    stats.trace_messages.append(
                        {"kind": MessageKind.LOOKUP_RETRY, "timed_out": True})
                    continue
                raise RequestTimeout(
                    f"request {request_id} ({self.max_retries + 1} attempts of "
                    f"{self.timeout_s}s) got no reply") from None
            except TransportError:
                await self._replace(connection)
                raise
            else:
                self._release(connection)
                stats.bytes_sent += len(frame) * stats.attempts
                stats.bytes_received += received
                self.counters.bytes_sent += len(frame) * stats.attempts
                self.counters.bytes_received += received
                return self._unwrap(request_id, reply), stats
        raise RequestTimeout(f"request {request_id} got no reply")  # pragma: no cover

    @staticmethod
    def _unwrap(request_id: int, reply: Dict[str, Any]) -> Any:
        if reply.get("id") != request_id:
            raise TransportError(f"reply id {reply.get('id')!r} does not match "
                                 f"request id {request_id}")
        if not reply.get("ok"):
            raise TransportError(f"server error: {reply.get('error')}")
        return reply.get("result")

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Close every pooled connection and stop the loop thread."""
        with self._lock:
            if self._closed:
                return
            self._closed = True

        async def _drain() -> None:
            while True:
                try:
                    self._pool.get_nowait().close()
                except asyncio.QueueEmpty:
                    return

        self._submit(_drain())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` was called."""
        return self._closed

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class RemoteService:
    """A :class:`~repro.api.services.CurrencyService` speaking the wire protocol.

    Each operation forwards to the server, decodes the shared result types
    back from JSON, and appends the transport-level retry messages to the
    result's trace — so ``Session.messages_sent`` keeps counting the way it
    does against the simulation backend, timeouts included.
    """

    def __init__(self, client: NetClient,
                 service_name: Optional[str] = None) -> None:
        self.client = client
        self.service_name = service_name

    def _call(self, op: str, **params: Any) -> Any:
        params["service"] = self.service_name
        result, stats = self.client.request(op, **params)
        return result, stats

    @staticmethod
    def _account_transport(trace: OperationTrace, stats: RequestStats) -> None:
        for message in stats.trace_messages:
            trace.record(message["kind"], timed_out=message["timed_out"])

    def insert(self, key: Any, data: Any, *, origin: Optional[int] = None,
               unreachable: FrozenSet[int] = frozenset()) -> InsertResult:
        """Write ``key`` to every replica holder, over the wire."""
        payload, stats = self._call("insert", key=codec.encode_value(key),
                                    data=codec.encode_value(data),
                                    origin=origin,
                                    unreachable=sorted(unreachable))
        result = codec.insert_result_from_dict(payload)
        self._account_transport(result.trace, stats)
        return result

    def retrieve(self, key: Any, *, origin: Optional[int] = None,
                 unreachable: FrozenSet[int] = frozenset(),
                 consistency: str = Consistency.CURRENT,
                 max_probes: Optional[int] = None) -> RetrieveResult:
        """Read ``key`` under the requested consistency level, over the wire."""
        payload, stats = self._call("retrieve", key=codec.encode_value(key),
                                    origin=origin,
                                    unreachable=sorted(unreachable),
                                    consistency=consistency,
                                    max_probes=max_probes)
        result = codec.retrieve_result_from_dict(payload)
        self._account_transport(result.trace, stats)
        return result

    def insert_many(self, items: Sequence[Tuple[Any, Any]], *,
                    origin: Optional[int] = None,
                    unreachable: FrozenSet[int] = frozenset()) -> BatchInsertResult:
        """Write several keys in one wire exchange."""
        payload, stats = self._call(
            "insert_many",
            items=[[codec.encode_value(key), codec.encode_value(data)]
                   for key, data in items],
            origin=origin, unreachable=sorted(unreachable))
        result = codec.batch_insert_result_from_dict(payload)
        self._account_transport(result.trace, stats)
        return result

    def retrieve_many(self, keys: Sequence[Any], *, origin: Optional[int] = None,
                      unreachable: FrozenSet[int] = frozenset(),
                      consistency: str = Consistency.CURRENT,
                      max_probes: Optional[int] = None) -> BatchRetrieveResult:
        """Read several keys in one wire exchange."""
        payload, stats = self._call(
            "retrieve_many", keys=[codec.encode_value(key) for key in keys],
            origin=origin, unreachable=sorted(unreachable),
            consistency=consistency, max_probes=max_probes)
        result = codec.batch_retrieve_result_from_dict(payload)
        self._account_transport(result.trace, stats)
        return result


class RemoteCluster:
    """The client-side handle on a served cluster, handing out sessions.

    Mirrors the :class:`~repro.api.cluster.Cluster` surface the callers use
    (``session()``, ``service()``, ``size``) so the two backends are drop-in
    interchangeable behind the Session API.
    """

    def __init__(self, client: NetClient, info: Dict[str, Any]) -> None:
        self.client = client
        self.info = info
        self.service_name = info.get("service", "ums")
        self._services: Dict[Optional[str], RemoteService] = {}

    def service(self, name: Optional[str] = None) -> RemoteService:
        """The remote currency service registered under ``name`` on the server."""
        key = name.lower() if isinstance(name, str) else None
        instance = self._services.get(key)
        if instance is None:
            instance = RemoteService(self.client, key)
            self._services[key] = instance
        return instance

    def session(self, origin: Optional[int] = None, *,
                service: Optional[str] = None,
                consistency: str = Consistency.CURRENT) -> Session:
        """Open a standard :class:`Session` whose operations run over sockets."""
        return Session(self, self.service(service), origin=origin,
                       consistency=consistency)

    @property
    def size(self) -> int:
        """Number of live peers on the served cluster (at connect time)."""
        return self.info.get("peers", 0)

    @property
    def wire_format(self) -> str:
        """The negotiated body encoding of this connection's frames."""
        return self.client.wire_format

    def sync_replicas(self, keys: Optional[Sequence[Any]] = None) -> Dict[str, Any]:
        """Run one delta anti-entropy round on the server.

        Mirrors :meth:`repro.api.cluster.Cluster.sync_replicas`; returns the
        :class:`~repro.core.replication.ReplicaSyncReport` as a plain dict
        (the wire form of ``report.to_dict()``).
        """
        params: Dict[str, Any] = {}
        if keys is not None:
            params["keys"] = [codec.encode_value(key) for key in keys]
        result, _stats = self.client.request("sync", **params)
        return result

    def ping(self) -> bool:
        """Round-trip liveness check."""
        result, _stats = self.client.request("ping")
        return result == "pong"

    def shutdown_server(self) -> None:
        """Ask the server to shut down gracefully."""
        self.client.request("shutdown")

    def close(self) -> None:
        """Close the underlying transport."""
        self.client.close()

    def __enter__(self) -> "RemoteCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RemoteCluster(address={self.client.address!r}, "
                f"peers={self.size}, service={self.service_name!r})")


def connect(address: Address, *, pool_size: int = 2, timeout_s: float = 5.0,
            max_retries: int = 2, wire_format: str = "auto") -> RemoteCluster:
    """Connect to a :class:`~repro.net.server.NodeServer` and return a cluster.

    ``address`` is ``(host, port)`` for TCP or a socket path for UDS.  The
    handshake issues one ``info`` request (always in JSON, which every server
    speaks), so a bad address fails fast here rather than on the first
    operation — and the reply doubles as the wire-format negotiation: the
    server advertises the frame encodings it accepts in ``wire_formats``.

    ``wire_format`` selects the encoding of subsequent frames:

    * ``"auto"`` (default) — binary when the server advertises it, JSON
      otherwise;
    * ``"binary"`` — binary when advertised, falling back to JSON against an
      older server that never advertised formats (old servers keep working);
    * ``"json"`` — always JSON.
    """
    if wire_format != "auto":
        codec.normalize_wire_format(wire_format)  # fail fast on typos
    client = NetClient(address, pool_size=pool_size, timeout_s=timeout_s,
                       max_retries=max_retries)
    try:
        info, _stats = client.request("info")
    except TransportError:
        client.close()
        raise
    advertised = info.get("wire_formats", [codec.FORMAT_JSON])
    if wire_format in ("auto", codec.FORMAT_BINARY) \
            and codec.FORMAT_BINARY in advertised:
        client.wire_format = codec.FORMAT_BINARY
    return RemoteCluster(client, info)
