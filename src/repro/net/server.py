"""Asyncio node server: the service side of real-service mode.

A :class:`NodeServer` hosts the same substrate the simulation backend wires
in-process — an overlay population with per-peer
:class:`~repro.dht.storage.LocalStore` replicas, the KTS timestamping service
and the registered currency services (UMS/BRK handlers) — behind
length-prefixed frames (:mod:`repro.net.codec`) over TCP and/or a Unix
domain socket.

Wire-format negotiation is a capability check, not a handshake: the ``info``
reply advertises the formats the server accepts (``wire_formats``), each
request's body format is detected from its first byte, and the reply is
encoded in the same format the request arrived in.  Old JSON-only clients
keep working unchanged; a binary-capable client simply starts sending binary
frames after seeing the advertisement.

Per-connection flow control is a **bounded inflight queue**: a reader task
parses frames and ``await``\\ s them into an ``asyncio.Queue(max_inflight)``,
and a worker task executes requests strictly in arrival order.  When a client
floods requests faster than they execute, the queue fills, the reader stops
reading, and backpressure propagates through the kernel socket buffers to the
sender — the server's memory stays bounded no matter how fast clients write.

Shutdown is graceful: :meth:`NodeServer.stop` (or a client ``shutdown``
request) stops accepting connections, lets every queued request finish,
flushes the replies and only then closes the connections.

:class:`ServerThread` runs a server on a private event loop in a daemon
thread — the harness tests, the load generator and the fault-injection suite
all drive a real socket server through it without an async caller.

:class:`FaultSchedule` injects transport faults for the accounting tests:
dropping a reply makes the client time out and retry (the request *was*
executed — delivery, not execution, is what fails, exactly the semantics of
the simulator's timed-out messages), delaying one models a slow peer.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro import __version__
from repro.api.cluster import Cluster
from repro.net import codec

__all__ = ["FaultSchedule", "NodeServer", "ServerThread"]

#: Requests counted by a :class:`FaultSchedule` (the data-plane operations);
#: control requests (``ping``/``info``/``shutdown``) are never faulted.
_DATA_OPS = ("insert", "retrieve", "insert_many", "retrieve_many")


class FaultSchedule:
    """Deterministic transport faults, indexed by data-plane request number.

    Parameters
    ----------
    drop_replies:
        0-based indices (counting executed data-plane requests) whose reply is
        silently dropped: the request executes, the client sees a timeout.
    delay_replies:
        Index → seconds: the reply is sent after an extra delay.

    The schedule is the transport-level analogue of the simulator's fault
    injection (``unreachable`` sets, timed-out messages): it makes the
    client's retry/timeout accounting testable against a known fault plan.
    """

    def __init__(self, drop_replies: Iterable[int] = (),
                 delay_replies: Optional[Mapping[int, float]] = None) -> None:
        self.drop_replies = frozenset(int(index) for index in drop_replies)
        self.delay_replies = {int(index): float(delay)
                              for index, delay in (delay_replies or {}).items()}
        self._sequence = 0

    def next_index(self) -> int:
        """Allocate the index of the data-plane request being executed."""
        index = self._sequence
        self._sequence += 1
        return index

    def should_drop(self, index: int) -> bool:
        """Whether the reply to data-plane request ``index`` is dropped."""
        return index in self.drop_replies

    def delay_for(self, index: int) -> float:
        """Extra reply delay (seconds) for data-plane request ``index``."""
        return self.delay_replies.get(index, 0.0)


class NodeServer:
    """Hosts a cluster's overlay + stores + KTS/UMS handlers over sockets.

    Parameters
    ----------
    cluster:
        An already-built :class:`~repro.api.cluster.Cluster` to serve; when
        ``None`` one is built from the remaining keyword arguments, using the
        exact ``Cluster.build`` path the simulation backend uses — same seed,
        same stack, which is what makes backend parity testable.
    max_inflight:
        Bound of the per-connection inflight queue (the backpressure knob).
    fault_schedule:
        Optional :class:`FaultSchedule` for transport-fault tests.
    """

    def __init__(self, cluster: Optional[Cluster] = None, *, peers: int = 64,
                 protocol: str = "chord", service: str = "ums",
                 replicas: int = 10, seed: Optional[int] = None,
                 max_inflight: int = 32,
                 fault_schedule: Optional[FaultSchedule] = None) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if cluster is None:
            cluster = Cluster.build(peers=peers, protocol=protocol,
                                    service=service, replicas=replicas,
                                    seed=seed)
        self.cluster = cluster
        self.max_inflight = max_inflight
        self.fault_schedule = fault_schedule
        self.requests_served = 0
        self.max_observed_inflight = 0
        self._servers: list = []
        self._connections: set = set()
        self._stopping = False
        self._stopped: Optional[asyncio.Event] = None
        self._shutdown_task: Optional["asyncio.Task"] = None
        self._tcp_address: Optional[Tuple[str, int]] = None
        self._uds_path: Optional[str] = None

    # ------------------------------------------------------------- lifecycle
    @property
    def tcp_address(self) -> Optional[Tuple[str, int]]:
        """The bound ``(host, port)`` once :meth:`start` opened a TCP listener."""
        return self._tcp_address

    @property
    def uds_path(self) -> Optional[str]:
        """The bound Unix-socket path once :meth:`start` opened a UDS listener."""
        return self._uds_path

    async def start(self, *, host: Optional[str] = "127.0.0.1", port: int = 0,
                    uds: Optional[str] = None) -> None:
        """Open the TCP and/or UDS listeners (``port=0`` picks a free port)."""
        if uds is None and host is None:
            raise ValueError("pass a TCP host/port, a UDS path, or both")
        self._stopped = asyncio.Event()
        if host is not None:
            server = await asyncio.start_server(self._serve_connection,
                                                host=host, port=port)
            self._servers.append(server)
            self._tcp_address = server.sockets[0].getsockname()[:2]
        if uds is not None:
            server = await asyncio.start_unix_server(self._serve_connection,
                                                     path=uds)
            self._servers.append(server)
            self._uds_path = uds

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain every queue, close."""
        if self._stopping:
            return
        self._stopping = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        # Let in-flight requests finish and their replies flush.
        connections = list(self._connections)
        for connection in connections:
            await connection.drain_and_close()
        # Wait for the connection tasks themselves, so the loop (and an
        # enclosing asyncio.run) has nothing left to cancel at teardown.
        tasks = [connection.task for connection in connections
                 if connection.task is not None and not connection.task.done()]
        if tasks:
            await asyncio.wait(tasks, timeout=1.0)
        if self._stopped is not None:
            self._stopped.set()

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` (or a ``shutdown`` request) completed."""
        if self._stopped is None:
            raise RuntimeError("server was never started")
        await self._stopped.wait()

    # ------------------------------------------------------------ connections
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        connection = _Connection(self, reader, writer)
        connection.task = asyncio.current_task()
        self._connections.add(connection)
        try:
            await connection.run()
        finally:
            self._connections.discard(connection)

    # -------------------------------------------------------------- handlers
    def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one decoded request and return the reply payload.

        Handlers run synchronously (the cluster substrate is plain Python) in
        strict per-connection arrival order, which keeps the server-side RNG
        stream a function of the request sequence — the property the backend
        parity test pins.
        """
        op = request.get("op")
        request_id = request.get("id")
        try:
            result = self._dispatch(op, request)
        except Exception as error:  # noqa: B902 - reply instead of killing the link
            return {"id": request_id, "ok": False,
                    "error": f"{type(error).__name__}: {error}"}
        return {"id": request_id, "ok": True, "result": result}

    def _dispatch(self, op: Optional[str], request: Dict[str, Any]) -> Any:
        if op == "ping":
            return "pong"
        if op == "info":
            return {"peers": self.cluster.size,
                    "protocol": self.cluster.network.protocol.protocol_name,
                    "representation": self.cluster.network.protocol.representation,
                    "service": self.cluster.service_name,
                    "replicas": self.cluster.replication.factor,
                    "wire_formats": list(codec.WIRE_FORMATS),
                    "version": __version__}
        if op == "sync":
            keys = request.get("keys")
            if keys is not None:
                keys = [codec.decode_value(key) for key in keys]
            return self.cluster.sync_replicas(keys).to_dict()
        if op == "shutdown":
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self.stop())
            return "stopping"
        if op in _DATA_OPS:
            return self._dispatch_data_op(op, request)
        raise ValueError(f"unknown operation {op!r}")

    def _dispatch_data_op(self, op: str, request: Dict[str, Any]) -> Any:
        service = self.cluster.service(request.get("service"))
        origin = request.get("origin")
        unreachable = frozenset(request.get("unreachable", ()))
        if op == "insert":
            result = service.insert(codec.decode_value(request["key"]),
                                    codec.decode_value(request.get("data")),
                                    origin=origin, unreachable=unreachable)
            return codec.insert_result_to_dict(result)
        if op == "retrieve":
            result = service.retrieve(codec.decode_value(request["key"]),
                                      origin=origin, unreachable=unreachable,
                                      consistency=request.get("consistency",
                                                              "current"),
                                      max_probes=request.get("max_probes"))
            return codec.retrieve_result_to_dict(result)
        if op == "insert_many":
            items = [(codec.decode_value(key), codec.decode_value(data))
                     for key, data in request["items"]]
            result = service.insert_many(items, origin=origin,
                                         unreachable=unreachable)
            return codec.batch_insert_result_to_dict(result)
        result = service.retrieve_many(
            [codec.decode_value(key) for key in request["keys"]],
            origin=origin, unreachable=unreachable,
            consistency=request.get("consistency", "current"),
            max_probes=request.get("max_probes"))
        return codec.batch_retrieve_result_to_dict(result)


class _Connection:
    """One client connection: bounded-queue reader + in-order worker."""

    def __init__(self, server: NodeServer, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.queue: "asyncio.Queue" = asyncio.Queue(maxsize=server.max_inflight)
        self.task: Optional["asyncio.Task"] = None
        self._eof = False
        self._executing = 0

    async def run(self) -> None:
        """Drive the reader and worker tasks until EOF or shutdown."""
        worker = asyncio.get_running_loop().create_task(self._work())
        try:
            await self._read()
        finally:
            self._eof = True
            await self.queue.put(None)  # wake the worker for the EOF marker
            await worker
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read(self) -> None:
        decoder = codec.FrameDecoder()
        while True:
            try:
                chunk = await self.reader.read(64 * 1024)
            except (ConnectionError, OSError):
                return
            if not chunk:
                return
            for request_and_format in decoder.feed_with_formats(chunk):
                # Backpressure point: a full queue blocks this ``put``, which
                # stops the read loop until the worker catches up.
                await self.queue.put(request_and_format)
                depth = self.queue.qsize()
                if depth > self.server.max_observed_inflight:
                    self.server.max_observed_inflight = depth

    async def _work(self) -> None:
        while True:
            item = await self.queue.get()
            if item is None:
                if self._eof and self.queue.empty():
                    return
                continue
            request, wire_format = item
            self._executing += 1
            try:
                await self._execute(request, wire_format)
            finally:
                self._executing -= 1

    async def _execute(self, request: Dict[str, Any],
                       wire_format: str = codec.FORMAT_JSON) -> None:
        schedule = self.server.fault_schedule
        fault_index = None
        if schedule is not None and request.get("op") in _DATA_OPS:
            fault_index = schedule.next_index()
        reply = self.server.handle_request(request)
        self.server.requests_served += 1
        if fault_index is not None:
            if schedule.should_drop(fault_index):
                return  # executed, but the reply never leaves the server
            delay = schedule.delay_for(fault_index)
            if delay > 0:
                await asyncio.sleep(delay)
        try:
            # Reply in the format the request arrived in: negotiation stays a
            # per-frame property, so JSON and binary clients share one server.
            self.writer.write(codec.encode_frame(reply, wire_format=wire_format))
            await self.writer.drain()
        except (ConnectionError, OSError):
            self._eof = True

    async def drain_and_close(self) -> None:
        """Finish queued requests, flush replies, then close the link."""
        while not self.queue.empty() or self._executing:
            await asyncio.sleep(0)
        self._eof = True
        try:
            await self.writer.drain()
        except (ConnectionError, OSError):
            pass
        self.writer.close()
        # Wake the read loop (blocked in reader.read) so the connection task
        # can unwind and finish instead of being cancelled at loop teardown.
        self.reader.feed_eof()


class ServerThread:
    """Run a :class:`NodeServer` on a private event loop in a daemon thread.

    The constructor arguments are forwarded to :meth:`NodeServer.start`.
    ``start()`` returns once the listeners are bound; ``stop()`` requests a
    graceful shutdown from any thread and joins.  Usable as a context
    manager::

        with ServerThread(NodeServer(peers=32, seed=7)) as thread:
            cluster = connect(thread.server.tcp_address)
    """

    def __init__(self, server: NodeServer, *, host: Optional[str] = "127.0.0.1",
                 port: int = 0, uds: Optional[str] = None) -> None:
        self.server = server
        self._start_kwargs = {"host": host, "port": port, "uds": uds}
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ServerThread":
        """Launch the loop thread and block until the server is listening."""
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-net-server")
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start(**self._start_kwargs))
        except BaseException as error:  # noqa: B902 - reported to start()
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_until_complete(self.server.wait_stopped())
            # Give connection tasks a moment to observe the closed writers,
            # so the loop closes without destroying pending tasks.
            pending = [task for task in asyncio.all_tasks(loop)
                       if not task.done()]
            if pending:
                loop.run_until_complete(asyncio.wait(pending, timeout=1.0))
        finally:
            loop.close()

    def stop(self) -> None:
        """Request a graceful stop and join the loop thread."""
        loop = self._loop
        if loop is not None and not loop.is_closed() and self._thread is not None \
                and self._thread.is_alive():
            try:
                asyncio.run_coroutine_threadsafe(self.server.stop(), loop)
            except RuntimeError:
                pass  # the loop stopped between the liveness check and the call
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
