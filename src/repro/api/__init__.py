"""repro.api — the unified client API of the reproduction.

This package is the caller-facing surface that every layer above
:mod:`repro.dht` goes through:

* **shared result types** and per-retrieve **consistency levels**
  (:mod:`repro.api.results`) — one :class:`InsertResult`/:class:`RetrieveResult`
  pair for every algorithm, so UMS and the BRK baseline are comparable field
  by field;
* the :class:`CurrencyService` protocol and the name-keyed **service
  registry** (:mod:`repro.api.services`) — ``"ums"`` and ``"brk"`` ship
  registered, :func:`register_service` adds more, mirroring the overlay
  registry one layer up;
* the :class:`Cluster` builder and origin-bound :class:`Session` context
  managers (:mod:`repro.api.cluster`) — the single construction path used by
  the apps, the simulation harness, the experiment generators, the CLI, the
  examples and the benchmarks, including the batched
  ``insert_many``/``retrieve_many`` operations.

Quickstart
----------
>>> from repro.api import Cluster
>>> cluster = Cluster.build(peers=32, replicas=8, seed=7)
>>> with cluster.session() as session:
...     _ = session.insert("auction:42", {"high_bid": 100})
...     result = session.retrieve("auction:42")
>>> result.data, result.is_current
({'high_bid': 100}, True)

The submodules are loaded lazily (PEP 562) so that :mod:`repro.core` can
import the shared result types from :mod:`repro.api.results` without creating
an import cycle.
"""

from __future__ import annotations

from typing import Any, Tuple

__all__ = [
    "BatchInsertResult",
    "BatchRetrieveResult",
    "Cluster",
    "Consistency",
    "CurrencyService",
    "InsertResult",
    "RetrieveResult",
    "ServiceFactory",
    "Session",
    "create_service",
    "is_service_registered",
    "register_service",
    "service_names",
    "unregister_service",
]

_EXPORTS = {
    "BatchInsertResult": "repro.api.results",
    "BatchRetrieveResult": "repro.api.results",
    "Consistency": "repro.api.results",
    "InsertResult": "repro.api.results",
    "RetrieveResult": "repro.api.results",
    "CurrencyService": "repro.api.services",
    "ServiceFactory": "repro.api.services",
    "create_service": "repro.api.services",
    "is_service_registered": "repro.api.services",
    "register_service": "repro.api.services",
    "service_names": "repro.api.services",
    "unregister_service": "repro.api.services",
    "Cluster": "repro.api.cluster",
    "Session": "repro.api.cluster",
}


def __getattr__(name: str) -> Any:
    """PEP 562 lazy loader for the re-exported API names."""
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> Tuple[str, ...]:
    return tuple(sorted(set(globals()) | set(__all__)))
