"""Shared result types and consistency levels of the client API.

Every currency service registered in :mod:`repro.api.services` — the paper's
UMS and the BRICKS baseline alike — returns the *same* result types from its
operations, so callers (applications, the simulation harness, the experiment
generators, benchmarks) can swap algorithms by configuration and still compare
costs field by field:

* :class:`InsertResult` — outcome of a write: how many replicas accepted the
  new value, the KTS timestamp (UMS) or the version number (BRK) it carries,
  and the full :class:`~repro.dht.messages.OperationTrace`;
* :class:`RetrieveResult` — outcome of a read: the data, whether a replica was
  found, whether it is *certified current* (only UMS can certify), how many
  replicas were probed, and the trace;
* :class:`BatchInsertResult` / :class:`BatchRetrieveResult` — outcomes of the
  batched operations, which share one trace so the amortised message cost of
  the whole batch is directly comparable with a per-key loop.

:class:`Consistency` names the per-retrieve freshness contracts supported by
the services (the paper's probabilistic currency guarantee, a first-replica
read, and a bounded-probe best effort).

This module sits *below* :mod:`repro.core` in the layering — the services
import the result types from here — and has no dependency on the service or
network layers beyond the message-trace type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional, Tuple

from repro.dht.messages import OperationTrace

__all__ = [
    "BatchInsertResult",
    "BatchRetrieveResult",
    "Consistency",
    "InsertResult",
    "RetrieveResult",
]


class Consistency:
    """Per-retrieve freshness contracts (threaded through every service).

    * :data:`CURRENT` — the paper's Figure 2 retrieval: ask KTS for the last
      timestamp generated for the key, probe replicas until one carries it,
      and certify the answer (``is_current=True``) when it does.  BRK has no
      timestamps; under this level it retrieves *every* replica and returns
      the highest version, never certifying.
    * :data:`ANY` — first-replica read: return the first replica found, with
      no KTS lookup and no certification (the cheapest possible read — what a
      plain DHT ``get`` or a single BRICKS probe would give you).
    * :data:`BEST_EFFORT` — bounded probes: consult KTS, probe at most
      ``max_probes`` replicas and return the freshest replica found, certified
      only if the latest timestamp was actually met.
    """

    CURRENT = "current"
    ANY = "any"
    BEST_EFFORT = "best-effort"

    ALL = (CURRENT, ANY, BEST_EFFORT)

    #: Probe bound of ``BEST_EFFORT`` when the caller does not pass one.
    DEFAULT_BEST_EFFORT_PROBES = 3

    @classmethod
    def validate(cls, level: str) -> str:
        """Return ``level`` unchanged, or raise ``ValueError`` if unknown."""
        if level not in cls.ALL:
            raise ValueError(f"unknown consistency level {level!r}; "
                             f"expected one of {cls.ALL}")
        return level

    @classmethod
    def probe_limit(cls, level: str, max_probes: Optional[int],
                    replication_factor: int) -> int:
        """How many replicas a retrieve may probe under ``level``.

        Shared by every currency service so the cost contract of the levels
        stays identical across algorithms: an explicit ``max_probes`` always
        wins (clamped to the replication factor), ``BEST_EFFORT`` defaults to
        :data:`DEFAULT_BEST_EFFORT_PROBES`, and the other levels may probe
        every replica.
        """
        if max_probes is not None:
            if max_probes < 1:
                raise ValueError(f"max_probes must be >= 1, got {max_probes}")
            return min(max_probes, replication_factor)
        if level == cls.BEST_EFFORT:
            return min(cls.DEFAULT_BEST_EFFORT_PROBES, replication_factor)
        return replication_factor


@dataclass(frozen=True)
class InsertResult:
    """Outcome of an insert, shared by every currency service.

    ``timestamp`` is set by UMS (the KTS timestamp stamped on the replicas);
    ``version`` is set by BRK (the version number written everywhere).  The
    remaining fields have identical semantics across services.  Construct
    with keyword arguments — the field order is not part of the contract
    (and differs from the pre-unification UMS/BRK result types).
    """

    key: Any
    replicas_written: int
    replicas_attempted: int
    trace: OperationTrace
    timestamp: Any = None
    version: Optional[int] = None
    service: Optional[str] = None

    @property
    def fully_replicated(self) -> bool:
        """Whether every replica holder accepted the new value."""
        return self.replicas_written == self.replicas_attempted

    @property
    def message_count(self) -> int:
        """Communication cost of the insert (total number of messages)."""
        return self.trace.message_count


@dataclass(frozen=True)
class RetrieveResult:
    """Outcome of a retrieve, shared by every currency service.

    ``is_current`` is the paper's currency certificate: ``True`` only when the
    returned replica provably carries the last timestamp generated for the
    key.  BRK can never certify (``is_current`` is always ``False``);
    ``ambiguous`` is its failure mode — two replicas with the same highest
    version but different data.
    """

    key: Any
    data: Any
    found: bool
    is_current: bool
    replicas_inspected: int
    trace: OperationTrace
    timestamp: Any = None
    latest_timestamp: Any = None
    version: Optional[int] = None
    ambiguous: bool = False
    consistency: str = Consistency.CURRENT
    service: Optional[str] = None

    @property
    def message_count(self) -> int:
        """Communication cost of the retrieval (total number of messages)."""
        return self.trace.message_count


class _BatchResult:
    """Common behaviour of the batched result containers."""

    results: Tuple[Any, ...]
    trace: OperationTrace

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.results)

    def __getitem__(self, index: int) -> Any:
        return self.results[index]

    @property
    def keys(self) -> Tuple[Any, ...]:
        """The keys of the batch, in request order."""
        return tuple(result.key for result in self.results)

    @property
    def message_count(self) -> int:
        """Total messages of the whole batch (the amortised cost)."""
        return self.trace.message_count


@dataclass(frozen=True)
class BatchInsertResult(_BatchResult):
    """Outcome of ``insert_many``: per-key results plus the shared batch trace.

    All per-key results reference the *same* shared trace (batched operations
    coalesce messages across keys, so per-key message attribution is not
    meaningful); use :attr:`message_count` for the batch's total cost.
    """

    results: Tuple[InsertResult, ...]
    trace: OperationTrace

    @property
    def fully_replicated(self) -> bool:
        """Whether every key reached every one of its replica holders."""
        return all(result.fully_replicated for result in self.results)


@dataclass(frozen=True)
class BatchRetrieveResult(_BatchResult):
    """Outcome of ``retrieve_many``: per-key results plus the shared batch trace."""

    results: Tuple[RetrieveResult, ...]
    trace: OperationTrace
    consistency: str = Consistency.CURRENT

    @property
    def found_count(self) -> int:
        """How many keys returned a replica."""
        return sum(1 for result in self.results if result.found)

    @property
    def current_count(self) -> int:
        """How many keys returned a certified-current replica."""
        return sum(1 for result in self.results if result.is_current)

    @property
    def data(self) -> Tuple[Any, ...]:
        """The returned payloads, in request order (``None`` for misses)."""
        return tuple(result.data for result in self.results)
