"""The :class:`CurrencyService` protocol and the name-keyed service registry.

The paper's point is that UMS turns a DHT into a *service*: currency-aware
``insert``/``retrieve`` over any overlay.  This module lifts the pluggable
pattern of :mod:`repro.dht.registry` one layer up: currency algorithms are
registered by name and resolved through one interface, so the harness, the
CLI, the apps and the benchmarks can swap ``"ums"`` for ``"brk"`` (or a
runtime-registered algorithm) exactly the way they already swap overlays.

Two services ship registered:

* ``"ums"`` — the paper's Update Management Service (timestamps via KTS,
  certified-current retrieval, Figure 2);
* ``"brk"`` — the BRICKS baseline (version numbers, retrieve-all, Section 5).

Adding an algorithm is one call::

    from repro.api import register_service

    def build_quorum(*, network, replication, kts, rng, **extra):
        return QuorumService(network, replication, rng=rng, **extra)

    register_service("quorum", build_quorum)

after which ``Cluster.build(..., service="quorum")``, the simulation harness
and the conformance suite all accept the new name.  A factory is a callable
taking keyword arguments ``network``, ``replication``, ``kts`` and ``rng``
(plus service-specific extras) and returning an object satisfying
:class:`CurrencyService`; factories are free to ignore ``kts`` when the
algorithm does not use timestamps (BRK does).

Every registered service must return the **shared** result types of
:mod:`repro.api.results` and honour the :class:`~repro.api.results.Consistency`
levels, which is what makes costs comparable across algorithms.
"""

from __future__ import annotations

import random
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

if TYPE_CHECKING:
    from repro.core.kts import KeyBasedTimestampService
    from repro.core.replication import ReplicationScheme
    from repro.dht.network import DHTNetwork

from repro.api.results import (
    BatchInsertResult,
    BatchRetrieveResult,
    Consistency,
    InsertResult,
    RetrieveResult,
)

__all__ = [
    "CurrencyService",
    "ServiceFactory",
    "create_service",
    "is_service_registered",
    "register_service",
    "service_names",
    "unregister_service",
]


@runtime_checkable
class CurrencyService(Protocol):
    """What every currency algorithm must provide.

    The operations mirror Section 3 of the paper: a timestamp- (or version-)
    stamped write to every replica, and a read honouring the requested
    :class:`~repro.api.results.Consistency` level.  The batched variants
    amortise lookups and replica probes across keys; implementations are
    expected to send measurably fewer messages than the equivalent per-key
    loop.
    """

    def insert(self, key: Any, data: Any, *, origin: Optional[int] = None,
               unreachable: FrozenSet[int] = frozenset()) -> InsertResult:
        """Write ``key`` to every replica holder."""
        ...

    def retrieve(self, key: Any, *, origin: Optional[int] = None,
                 unreachable: FrozenSet[int] = frozenset(),
                 consistency: str = Consistency.CURRENT,
                 max_probes: Optional[int] = None) -> RetrieveResult:
        """Read ``key`` under the requested consistency level."""
        ...

    def insert_many(self, items: Sequence[Tuple[Any, Any]], *,
                    origin: Optional[int] = None,
                    unreachable: FrozenSet[int] = frozenset()) -> BatchInsertResult:
        """Write several keys, amortising timestamping and replica writes."""
        ...

    def retrieve_many(self, keys: Sequence[Any], *, origin: Optional[int] = None,
                      unreachable: FrozenSet[int] = frozenset(),
                      consistency: str = Consistency.CURRENT,
                      max_probes: Optional[int] = None) -> BatchRetrieveResult:
        """Read several keys, interleaving replica probes across them."""
        ...


#: Signature of a service factory: keyword-only ``network``, ``replication``,
#: ``kts`` and ``rng`` plus service-specific extras.
ServiceFactory = Callable[..., CurrencyService]

_FACTORIES: Dict[str, ServiceFactory] = {}


def register_service(name: str, factory: ServiceFactory, *,
                     replace: bool = False) -> None:
    """Register ``factory`` under ``name`` (case-insensitive).

    Raises :class:`ValueError` when the name is already taken, unless
    ``replace=True`` is passed explicitly.
    """
    key = name.lower()
    if not key:
        raise ValueError("service name must be a non-empty string")
    if key in _FACTORIES and not replace:
        raise ValueError(f"service {key!r} is already registered; "
                         "pass replace=True to override it")
    _FACTORIES[key] = factory


def unregister_service(name: str) -> None:
    """Remove ``name`` from the registry (raises ``ValueError`` if absent)."""
    key = name.lower()
    if key not in _FACTORIES:
        raise ValueError(f"service {key!r} is not registered")
    del _FACTORIES[key]


def is_service_registered(name: str) -> bool:
    """Whether ``name`` resolves to a registered service factory."""
    return name.lower() in _FACTORIES


def service_names() -> Tuple[str, ...]:
    """The registered service names, sorted."""
    return tuple(sorted(_FACTORIES))


def create_service(name: str, *, network: "DHTNetwork",
                   replication: "ReplicationScheme",
                   kts: Optional["KeyBasedTimestampService"] = None,
                   seed: Optional[int] = None,
                   rng: Optional[random.Random] = None,
                   **extra: Any) -> CurrencyService:
    """Build the currency service registered under ``name``.

    ``network``, ``replication`` and ``kts`` are the substrate every caller
    (:class:`~repro.api.cluster.Cluster`, the harness, tests) provides;
    ``extra`` is forwarded verbatim for service-specific options (e.g. UMS's
    ``probe_order``).
    """
    key = name.lower()
    factory = _FACTORIES.get(key)
    if factory is None:
        known = ", ".join(repr(known_name) for known_name in service_names())
        raise ValueError(f"unknown service {key!r}; registered services: {known}")
    if rng is None:
        rng = random.Random(seed)
    return factory(network=network, replication=replication, kts=kts, rng=rng,
                   **extra)


# --------------------------------------------------------- built-in services
def _build_ums(*, network: "DHTNetwork", replication: "ReplicationScheme",
               kts: Optional["KeyBasedTimestampService"],
               rng: random.Random, **extra: Any) -> CurrencyService:
    """Factory of the paper's UMS.

    ``extra`` forwards service-specific options verbatim: ``probe_order``
    (``"random"``/``"fixed"``) and ``detector`` (a
    :class:`repro.core.detector.CrossCheckDetector` instance that passively
    cross-checks ``last_ts`` claims against probed replica timestamps —
    the simulation harness threads one through
    ``Cluster.build(service_options={"ums": {"detector": ...}})``).
    """
    # Imported lazily: repro.core imports the shared result types from
    # repro.api, so the factory must not import repro.core at module level.
    from repro.core.ums import UpdateManagementService

    if kts is None:
        raise ValueError("the 'ums' service requires a KTS instance "
                         "(timestamps are its whole point)")
    return UpdateManagementService(network, kts, replication, rng=rng, **extra)


def _build_brk(*, network: "DHTNetwork", replication: "ReplicationScheme",
               kts: Optional["KeyBasedTimestampService"],
               rng: random.Random, **extra: Any) -> CurrencyService:
    from repro.core.baseline import BricksService

    # BRK has no timestamping service; ``kts`` is accepted and ignored.
    return BricksService(network, replication, rng=rng, **extra)


register_service("ums", _build_ums)
register_service("brk", _build_brk)
