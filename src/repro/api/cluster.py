"""The :class:`Cluster` builder and origin-bound :class:`Session` handles.

``Cluster.build`` is the one construction path of the client API: it owns the
wiring that every caller used to hand-assemble (``DHTNetwork`` + replication
scheme + KTS + currency service) and resolves both the overlay *and* the
algorithm through their registries::

    from repro.api import Cluster, Consistency

    cluster = Cluster.build(peers=64, protocol="kademlia", service="ums",
                            replicas=10, seed=2007)
    with cluster.session() as session:
        session.insert("meeting-room", {"slot": "09:00"})
        result = session.retrieve("meeting-room")
        assert result.is_current

Sessions are the operation handles: they bind an origin peer (or float on a
random live peer per operation), default a consistency level, expose the
batched ``insert_many``/``retrieve_many`` operations, and keep running
message/operation tallies so applications can account for their own traffic.

The RNG consumption order of ``Cluster.build`` deliberately matches the
legacy ``build_service_stack``/harness wiring (network, hash family, KTS,
then one seed per built-in service), so a fixed seed reproduces the exact
same stack across the old and new construction paths.
"""

from __future__ import annotations

import random
from types import TracebackType
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Optional,
    Sequence,
    Tuple,
    Type,
    cast,
)

from repro.api import services as service_registry
from repro.api.results import (
    BatchInsertResult,
    BatchRetrieveResult,
    Consistency,
    InsertResult,
    RetrieveResult,
)
from repro.api.services import CurrencyService

if TYPE_CHECKING:
    from repro.core.kts import KeyBasedTimestampService
    from repro.core.replication import ReplicationScheme
    from repro.core.ums import UpdateManagementService
    from repro.dht.messages import OperationTrace
    from repro.dht.network import DHTNetwork

__all__ = ["Cluster", "Session"]


class Session:
    """An operation handle bound to a cluster, a service and (optionally) an origin.

    Parameters
    ----------
    cluster:
        The cluster the session operates on.
    service:
        The resolved currency service instance.
    origin:
        The peer all operations originate from.  ``None`` (the default for
        harness-style workloads) floats the session: every operation starts
        at a fresh uniformly random live peer, matching the paper's query
        model.  When the bound origin departs the network, routing falls back
        to a random live peer automatically.
    consistency:
        The default consistency level for retrievals (overridable per call).

    Sessions are context managers; operations on a closed session raise
    :class:`RuntimeError`.  They also tally their traffic: ``operations`` and
    ``messages_sent`` accumulate across calls.
    """

    def __init__(self, cluster: "Cluster", service: CurrencyService, *,
                 origin: Optional[int] = None,
                 consistency: str = Consistency.CURRENT) -> None:
        Consistency.validate(consistency)
        self.cluster = cluster
        self.service = service
        self.origin = origin
        self.consistency = consistency
        self.operations = 0
        self.messages_sent = 0
        self._closed = False

    # ----------------------------------------------------------- lifecycle
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.close()

    def close(self) -> None:
        """Close the session; further operations raise :class:`RuntimeError`."""
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called on this session."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("operation on a closed Session")

    def _account(self, trace: "OperationTrace") -> None:
        self.operations += 1
        self.messages_sent += trace.message_count

    # ---------------------------------------------------------- operations
    def insert(self, key: Any, data: Any, *,
               unreachable: FrozenSet[int] = frozenset()) -> InsertResult:
        """Insert (or update) ``key`` with ``data``."""
        self._check_open()
        result = self.service.insert(key, data, origin=self.origin,
                                     unreachable=unreachable)
        self._account(result.trace)
        return result

    def retrieve(self, key: Any, *, consistency: Optional[str] = None,
                 max_probes: Optional[int] = None,
                 unreachable: FrozenSet[int] = frozenset()) -> RetrieveResult:
        """Retrieve ``key`` under the session's (or an explicit) consistency level."""
        self._check_open()
        level = self.consistency if consistency is None else consistency
        result = self.service.retrieve(key, origin=self.origin,
                                       unreachable=unreachable,
                                       consistency=level, max_probes=max_probes)
        self._account(result.trace)
        return result

    def insert_many(self, items: Iterable[Tuple[Any, Any]], *,
                    unreachable: FrozenSet[int] = frozenset()) -> BatchInsertResult:
        """Insert several ``(key, data)`` pairs, amortising timestamping and writes."""
        self._check_open()
        result = self.service.insert_many(list(items), origin=self.origin,
                                          unreachable=unreachable)
        self._account(result.trace)
        return result

    def retrieve_many(self, keys: Sequence[Any], *,
                      consistency: Optional[str] = None,
                      max_probes: Optional[int] = None,
                      unreachable: FrozenSet[int] = frozenset()) -> BatchRetrieveResult:
        """Retrieve several keys at once, interleaving replica probes across them."""
        self._check_open()
        level = self.consistency if consistency is None else consistency
        result = self.service.retrieve_many(list(keys), origin=self.origin,
                                            unreachable=unreachable,
                                            consistency=level,
                                            max_probes=max_probes)
        self._account(result.trace)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        origin = "floating" if self.origin is None else f"peer {self.origin}"
        return (f"Session(service={type(self.service).__name__}, origin={origin}, "
                f"consistency={self.consistency!r}, "
                f"ops={self.operations}, closed={self._closed})")


class Cluster:
    """A fully wired replicated-DHT cluster handing out :class:`Session` handles.

    Build one with :meth:`Cluster.build`; the constructor is internal wiring.
    The cluster resolves currency services by name through
    :mod:`repro.api.services` and caches one instance per name, all sharing
    the same network, replication scheme and KTS, so ``cluster.service("ums")``
    and ``cluster.service("brk")`` face identical replica placement — exactly
    what the paper's comparison requires.
    """

    def __init__(self, *, network: "DHTNetwork",
                 replication: "ReplicationScheme",
                 kts: Optional["KeyBasedTimestampService"], service_name: str,
                 service_seeds: Dict[str, int],
                 service_options: Optional[Dict[str, Dict[str, Any]]] = None) -> None:
        self.network = network
        self.replication = replication
        self.kts = kts
        self.service_name = service_name.lower()
        self._service_seeds = dict(service_seeds)
        self._service_options = dict(service_options or {})
        self._services: Dict[str, CurrencyService] = {}
        self._extra_seed_rng: Optional[random.Random] = None

    # ------------------------------------------------------------- building
    @classmethod
    def build(cls, peers: int = 64, *, protocol: str = "chord",
              service: str = "ums", replicas: int = 10, bits: int = 32,
              initialization: Optional[str] = None,
              probe_order: str = "random",
              stabilization_interval: float = 30.0,
              track_responsibility: bool = False,
              seed: Optional[int] = None,
              rng: Optional[random.Random] = None,
              service_options: Optional[Dict[str, Dict[str, Any]]] = None
              ) -> "Cluster":
        """Build a cluster: network + replication + KTS + registered services.

        Parameters mirror the paper's experimental knobs: the population, the
        overlay ``protocol`` (resolved via :mod:`repro.dht.registry`), the
        primary ``service`` (resolved via :mod:`repro.api.services`), the
        replication factor ``|Hr|``, and the KTS counter ``initialization``
        mode.  A fixed ``seed`` makes the whole stack reproducible; passing an
        ``rng`` instead lets a caller (the simulation harness) share one
        master random stream.  ``service_options`` maps service names to extra
        factory keyword arguments.
        """
        # Imported here (not at module level) to keep repro.api importable
        # from within repro.core without a circular import.
        from repro.core.kts import CounterInitialization, KeyBasedTimestampService
        from repro.core.replication import ReplicationScheme
        from repro.dht.hashing import HashFamily
        from repro.dht.network import DHTNetwork

        if rng is not None and seed is not None:
            raise ValueError("pass either 'seed' or 'rng', not both")
        if probe_order not in ("random", "fixed"):
            raise ValueError(f"probe_order must be 'random' or 'fixed', "
                             f"got {probe_order!r}")
        if not service_registry.is_service_registered(service):
            raise ValueError(f"unknown service {service!r}; registered services: "
                             f"{service_registry.service_names()}")
        if initialization is None:
            initialization = CounterInitialization.DIRECT
        master = rng if rng is not None else random.Random(seed)

        # The draw order below intentionally matches the legacy wiring
        # (network, hash family, KTS, UMS seed, BRK seed): same seed, same
        # stack, whichever construction path built it.
        network = DHTNetwork.build(peers, protocol=protocol, bits=bits,
                                   stabilization_interval=stabilization_interval,
                                   seed=master.getrandbits(64),
                                   track_responsibility=track_responsibility)
        family = HashFamily(bits=bits, seed=master.getrandbits(64))
        replication = ReplicationScheme(family.sample_many(replicas, prefix="hr"))
        kts = KeyBasedTimestampService(network, replication,
                                       ts_hash=family.sample("h-ts"),
                                       initialization=initialization,
                                       seed=master.getrandbits(64))
        service_seeds = {"ums": master.getrandbits(64),
                        "brk": master.getrandbits(64)}
        options = dict(service_options or {})
        if probe_order != "random":
            ums_options = dict(options.get("ums", {}))
            ums_options.setdefault("probe_order", probe_order)
            options["ums"] = ums_options
        return cls(network=network, replication=replication, kts=kts,
                   service_name=service, service_seeds=service_seeds,
                   service_options=options)

    # ------------------------------------------------------------- services
    def service(self, name: Optional[str] = None) -> CurrencyService:
        """The currency service registered under ``name`` (default: the primary).

        Instances are cached: repeated calls return the same object, and all
        services share the cluster's network, replication scheme and KTS.
        """
        key = (self.service_name if name is None else name).lower()
        instance = self._services.get(key)
        if instance is None:
            instance = service_registry.create_service(
                key, network=self.network, replication=self.replication,
                kts=self.kts, seed=self._service_seed(key),
                **self._service_options.get(key, {}))
            self._services[key] = instance
        return instance

    def _service_seed(self, name: str) -> int:
        seed = self._service_seeds.get(name)
        if seed is None:
            # Runtime-registered services draw from a dedicated stream so they
            # never perturb the reproducibility of the built-in ones.
            if self._extra_seed_rng is None:
                base = self._service_seeds.get("brk", 0)
                self._extra_seed_rng = random.Random(base ^ 0x9E3779B97F4A7C15)
            seed = self._extra_seed_rng.getrandbits(64)
            self._service_seeds[name] = seed
        return seed

    # ------------------------------------------------------------- sessions
    def session(self, origin: Optional[int] = None, *,
                service: Optional[str] = None,
                consistency: str = Consistency.CURRENT) -> Session:
        """Open a session: the operation handle applications work through.

        ``origin`` binds every operation to one peer (pass a peer id) or
        floats the session on random live peers (the default).  ``service``
        selects a non-primary algorithm for this session only.
        """
        if origin is not None and not self.network.is_alive(origin):
            raise ValueError(f"origin peer {origin} is not a live member "
                             "of the cluster")
        return Session(self, self.service(service), origin=origin,
                       consistency=consistency)

    # ----------------------------------------------------------- maintenance
    def sync_replicas(self, keys: Optional[Sequence[Any]] = None) -> Any:
        """Run one delta anti-entropy round over ``keys`` (default: all keys).

        Delegates to :meth:`repro.core.replication.ReplicationScheme.sync_replicas`
        and returns its :class:`~repro.core.replication.ReplicaSyncReport` —
        replicas diverged by churn or failures converge to the newest copy,
        shipping only the entries whose timestamp/version advanced.
        """
        return self.replication.sync_replicas(self.network, keys)

    # ----------------------------------------------------------- diagnostics
    def currency_probability(self, key: Any) -> float:
        """Empirical probability of currency and availability ``p_t`` for ``key``."""
        ums = cast("UpdateManagementService", self.service("ums"))
        return ums.currency_probability(key)

    @property
    def size(self) -> int:
        """Number of live peers."""
        return self.network.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Cluster(protocol={type(self.network.protocol).__name__}, "
                f"peers={self.network.size}, service={self.service_name!r}, "
                f"replicas={self.replication.factor})")
