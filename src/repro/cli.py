"""Command-line interface.

Three entry points are provided (also installable as console scripts, and
reachable as ``python -m repro``):

* ``python -m repro simulate`` — run one simulation (one algorithm, one
  parameter point) and print the measured response time / communication cost;
* ``python -m repro experiments`` — regenerate the paper's tables and
  figures (thin wrapper over :mod:`repro.experiments.runner`);
* ``python -m repro registry`` — list the pluggable backends: the DHT
  overlays of :mod:`repro.dht.registry` and the currency services of
  :mod:`repro.api.services`.

Examples
--------
::

    python -m repro simulate --algorithm ums-direct --peers 2000 --duration 1800
    python -m repro simulate --algorithm brk --peers 500 --replicas 20 --json
    python -m repro simulate --consistency best-effort --peers 500
    python -m repro experiments --scale quick --output results.md
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.api.results import Consistency
from repro.api.services import service_names
from repro.dht.registry import overlay_names
from repro.experiments import runner as experiments_runner
from repro.simulation.config import Algorithm, SimulationParameters
from repro.simulation.harness import run_simulation

__all__ = ["build_parser", "main", "registry_command", "simulate_command"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Data Currency in Replicated DHTs' (SIGMOD 2007)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="run one simulation and report response time / messages")
    simulate.add_argument("--algorithm", choices=Algorithm.ALL, default=Algorithm.UMS_DIRECT)
    simulate.add_argument("--peers", type=int, default=1000,
                          help="number of peers (Table 1: 10000)")
    simulate.add_argument("--replicas", type=int, default=10, help="|Hr| (Table 1: 10)")
    simulate.add_argument("--keys", type=int, default=20, help="number of data items")
    simulate.add_argument("--duration", type=float, default=1800.0,
                          help="simulated seconds (Table 1: 10800)")
    simulate.add_argument("--queries", type=int, default=30,
                          help="measured queries per run (paper: 30)")
    simulate.add_argument("--churn-rate", type=float, default=None,
                          help="departures per second (default: Table 1 intensity "
                               "scaled to the population)")
    simulate.add_argument("--failure-rate", type=float, default=5.0,
                          help="percentage of departures that are failures")
    simulate.add_argument("--update-rate", type=float, default=1.0,
                          help="updates per data item per hour")
    simulate.add_argument("--protocol", choices=overlay_names(), default="chord",
                          help="DHT overlay (any overlay registered in "
                               "repro.dht.registry)")
    simulate.add_argument("--consistency", choices=Consistency.ALL,
                          default=Consistency.CURRENT,
                          help="per-retrieve freshness contract: 'current' is the "
                               "paper's certified retrieval, 'any' a first-replica "
                               "read, 'best-effort' a bounded-probe read")
    simulate.add_argument("--cluster", action="store_true",
                          help="use the 64-node-cluster cost model instead of Table 1's WAN")
    simulate.add_argument("--seed", type=int, default=2007)
    simulate.add_argument("--json", action="store_true", help="print a JSON summary")

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures")
    experiments.add_argument("--scale", choices=("tiny", "quick", "paper"), default="quick")
    experiments.add_argument("--seed", type=int, default=2007)
    experiments.add_argument("--protocol", choices=overlay_names(), default="chord",
                             help="DHT overlay for figures 6-12 and the "
                                  "probe-order ablation")
    experiments.add_argument("--output", default=None)
    experiments.add_argument("--no-ablations", action="store_true")

    subparsers.add_parser(
        "registry", help="list the registered DHT overlays and currency services")
    return parser


def _parameters_from_args(arguments: argparse.Namespace) -> SimulationParameters:
    churn_rate = arguments.churn_rate
    if churn_rate is None:
        # Preserve Table 1's churn intensity (1 departure/s across 10,000 peers
        # over 3 hours) for whatever population/duration was requested.
        churn_rate = 1.08 * arguments.peers / arguments.duration
    return SimulationParameters(
        num_peers=arguments.peers, num_replicas=arguments.replicas,
        num_keys=arguments.keys, duration_s=arguments.duration,
        num_queries=arguments.queries, churn_rate_per_s=churn_rate,
        failure_rate=arguments.failure_rate / 100.0,
        update_rate_per_hour=arguments.update_rate, protocol=arguments.protocol,
        cost_model_preset="cluster" if arguments.cluster else "wide-area",
        algorithm=arguments.algorithm, consistency=arguments.consistency,
        seed=arguments.seed)


def simulate_command(arguments: argparse.Namespace, *, stream=None) -> int:
    """Run the ``simulate`` sub-command."""
    stream = stream if stream is not None else sys.stdout
    parameters = _parameters_from_args(arguments)
    result = run_simulation(parameters)
    summary = result.summary()
    if arguments.json:
        payload = {"algorithm": result.algorithm, "protocol": parameters.protocol,
                   "service": Algorithm.service_name(result.algorithm),
                   "consistency": parameters.consistency,
                   "num_peers": result.num_peers,
                   "num_replicas": result.num_replicas, **summary}
        stream.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return 0
    label = Algorithm.label(result.algorithm)
    stream.write(f"algorithm            : {label}\n")
    stream.write(f"service              : {Algorithm.service_name(result.algorithm)}\n")
    stream.write(f"overlay              : {parameters.protocol}\n")
    stream.write(f"consistency          : {parameters.consistency}\n")
    stream.write(f"peers / replicas     : {result.num_peers} / {result.num_replicas}\n")
    stream.write(f"queries measured     : {result.query_count}\n")
    stream.write(f"avg response time    : {result.avg_response_time_s:.2f} s\n")
    stream.write(f"avg messages / query : {result.avg_messages:.1f}\n")
    stream.write(f"avg replicas probed  : {result.avg_replicas_inspected:.2f}\n")
    stream.write(f"certified current    : {result.currency_rate:.0%}\n")
    stream.write(f"churn events (fails) : {result.churn_events} ({result.failures})\n")
    stream.write(f"updates performed    : {result.updates_performed}\n")
    return 0


def registry_command(arguments: argparse.Namespace, *, stream=None) -> int:
    """Run the ``registry`` sub-command: list the pluggable backends."""
    stream = stream if stream is not None else sys.stdout
    stream.write(f"overlays (repro.dht.registry) : {', '.join(overlay_names())}\n")
    stream.write(f"services (repro.api.services) : {', '.join(service_names())}\n")
    stream.write(f"consistency levels            : {', '.join(Consistency.ALL)}\n")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command == "simulate":
        return simulate_command(arguments)
    if arguments.command == "registry":
        return registry_command(arguments)
    if arguments.command == "experiments":
        runner_args = ["--scale", arguments.scale, "--seed", str(arguments.seed),
                       "--protocol", arguments.protocol]
        if arguments.output:
            runner_args += ["--output", arguments.output]
        if arguments.no_ablations:
            runner_args.append("--no-ablations")
        return experiments_runner.main(runner_args)
    parser.error(f"unknown command {arguments.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
