"""Command-line interface.

Seven entry points are provided (also installable as console scripts, and
reachable as ``python -m repro``):

* ``python -m repro simulate`` — run one simulation (one algorithm, one
  parameter point) and print the measured response time / communication cost;
* ``python -m repro scenario`` — the declarative scenario engine:
  ``list`` the registered scenarios, ``run`` one (with record/replay via
  ``--spec-out``/``--spec``), or ``compare`` scenarios × overlays × services
  as per-metric tables;
* ``python -m repro serve`` — real-service mode: host a cluster (overlay +
  stores + KTS/UMS handlers) behind the :mod:`repro.net` asyncio transport,
  over TCP and/or a Unix domain socket;
* ``python -m repro loadgen`` — the load harness: pace a mixed
  insert/retrieve workload with a scenario arrival model against any backend
  (``sim``/``tcp``/``uds``) and report throughput + p50/p95/p99 latency;
* ``python -m repro experiments`` — regenerate the paper's tables and
  figures (thin wrapper over :mod:`repro.experiments.runner`);
* ``python -m repro attack-grid`` — sweep byzantine fractions × overlays
  through :mod:`repro.experiments.attack_grid` and report the
  currency-degradation curve (measured certified currency vs the
  honest-baseline analytical guarantee, with per-overlay thresholds);
* ``python -m repro registry`` — list the pluggable backends: the DHT
  overlays of :mod:`repro.dht.registry`, the currency services of
  :mod:`repro.api.services`, the scenarios of
  :mod:`repro.simulation.scenarios.registry` and the execution backends of
  :mod:`repro.net.backends`.

Examples
--------
::

    python -m repro simulate --algorithm ums-direct --peers 2000 --duration 1800
    python -m repro simulate --algorithm brk --peers 500 --replicas 20 --json
    python -m repro scenario list
    python -m repro scenario run --scenario flashcrowd --protocol kademlia
    python -m repro scenario compare --scenarios hotspot,flashcrowd \
        --protocols chord,kademlia --services ums,brk --jobs 4
    python -m repro serve --port 9207 --peers 200 --seed 2007
    python -m repro loadgen --backend tcp --address 127.0.0.1:9207 \
        --arrival poisson --ops 500 --duration 5
    python -m repro experiments --scale quick --output results.md
    python -m repro experiments --scale paper --jobs 4 --cache-dir .repro-cache
    python -m repro attack-grid --fractions 0,0.1,0.3 --protocols chord,kademlia \
        --jobs 2 --output attack-degradation.json

``scenario compare``, ``experiments`` and ``attack-grid`` execute their
grids through the unified execution layer (:mod:`repro.execution`): ``--jobs N`` runs the grid
on a process pool with bit-identical results, ``--cache-dir`` caches and
skips already-executed points (``--no-cache`` forces re-execution).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.api.results import Consistency
from repro.api.services import service_names
from repro.dht.registry import overlay_names
from repro.execution import Executor, RunPlan
from repro.experiments import runner as experiments_runner
from repro.experiments.attack_grid import (
    DEFAULT_FRACTIONS,
    DEFAULT_PROTOCOLS,
    default_attack_parameters,
    run_attack_grid,
)
from repro.experiments.reporting import comparison_tables
from repro.simulation.adversary import STRATEGIES
from repro.simulation.config import Algorithm, SimulationParameters
from repro.simulation.harness import run_simulation
from repro.simulation.scenarios import (
    ScenarioSpec,
    get_scenario,
    run_scenario,
    scenario_names,
)

__all__ = ["attack_grid_command", "build_parser", "loadgen_command", "main",
           "registry_command", "scenario_command", "serve_command",
           "simulate_command"]

#: Currency-service registry name -> harness algorithm, for ``--services``.
_SERVICE_ALGORITHMS = {"ums": Algorithm.UMS_DIRECT, "brk": Algorithm.BRK}


def _algorithm_for(name: str) -> str:
    """Resolve a ``--services`` entry: a service name or an algorithm name."""
    key = name.strip().lower()
    if key in _SERVICE_ALGORITHMS:
        return _SERVICE_ALGORITHMS[key]
    return Algorithm.validate(key)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Data Currency in Replicated DHTs' (SIGMOD 2007)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="run one simulation and report response time / messages")
    simulate.add_argument("--algorithm", choices=Algorithm.ALL, default=Algorithm.UMS_DIRECT)
    simulate.add_argument("--peers", type=int, default=1000,
                          help="number of peers (Table 1: 10000)")
    simulate.add_argument("--replicas", type=int, default=10, help="|Hr| (Table 1: 10)")
    simulate.add_argument("--keys", type=int, default=20, help="number of data items")
    simulate.add_argument("--duration", type=float, default=1800.0,
                          help="simulated seconds (Table 1: 10800)")
    simulate.add_argument("--queries", type=int, default=30,
                          help="measured queries per run (paper: 30)")
    simulate.add_argument("--churn-rate", type=float, default=None,
                          help="departures per second (default: Table 1 intensity "
                               "scaled to the population)")
    simulate.add_argument("--failure-rate", type=float, default=5.0,
                          help="percentage of departures that are failures")
    simulate.add_argument("--update-rate", type=float, default=1.0,
                          help="updates per data item per hour")
    simulate.add_argument("--protocol", choices=overlay_names(), default="chord",
                          help="DHT overlay (any overlay registered in "
                               "repro.dht.registry)")
    simulate.add_argument("--consistency", choices=Consistency.ALL,
                          default=Consistency.CURRENT,
                          help="per-retrieve freshness contract: 'current' is the "
                               "paper's certified retrieval, 'any' a first-replica "
                               "read, 'best-effort' a bounded-probe read")
    simulate.add_argument("--cluster", action="store_true",
                          help="use the 64-node-cluster cost model instead of Table 1's WAN")
    simulate.add_argument("--seed", type=int, default=2007)
    simulate.add_argument("--json", action="store_true", help="print a JSON summary")

    scenario = subparsers.add_parser(
        "scenario", help="declarative workload & fault scenarios "
                         "(list / run / compare)")
    scenario_subparsers = scenario.add_subparsers(dest="scenario_command",
                                                  required=True)

    scenario_subparsers.add_parser(
        "list", help="list the registered scenarios with their descriptions")

    def add_run_parameters(command: argparse.ArgumentParser) -> None:
        """Simulation knobs shared by ``scenario run`` and ``scenario compare``."""
        command.add_argument("--peers", type=int, default=None,
                             help="number of peers")
        command.add_argument("--replicas", type=int, default=None, help="|Hr|")
        command.add_argument("--keys", type=int, default=None,
                             help="number of data items")
        command.add_argument("--duration", type=float, default=None,
                             help="simulated seconds")
        command.add_argument("--queries", type=int, default=None,
                             help="measured queries per run")
        command.add_argument("--churn-rate", type=float, default=None,
                             help="departures per second (default: Table 1 "
                                  "intensity scaled to the population)")
        command.add_argument("--update-rate", type=float, default=None,
                             help="updates per data item per hour (before the "
                                  "scenario profile's multiplier)")
        command.add_argument("--consistency", choices=Consistency.ALL,
                             default=None,
                             help="per-retrieve freshness contract")
        command.add_argument("--seed", type=int, default=2007)

    run = scenario_subparsers.add_parser(
        "run", help="run one scenario and report its metrics")
    run.add_argument("--scenario", choices=scenario_names(), default=None,
                     help="registered scenario name")
    run.add_argument("--spec", default=None, metavar="FILE",
                     help="replay a run spec recorded with --spec-out "
                          "(mutually exclusive with --scenario and the "
                          "parameter flags)")
    run.add_argument("--spec-out", default=None, metavar="FILE",
                     help="record the resolved scenario + parameters as a "
                          "replayable JSON run spec")
    run.add_argument("--algorithm", choices=Algorithm.ALL, default=None,
                     help="currency algorithm (default: ums-direct, unless "
                          "the scenario overrides it)")
    run.add_argument("--protocol", choices=overlay_names(), default=None,
                     help="DHT overlay (default: chord, unless the scenario "
                          "overrides it)")
    add_run_parameters(run)
    run.add_argument("--json", action="store_true", help="print a JSON summary")

    compare = scenario_subparsers.add_parser(
        "compare", help="compare scenarios x overlays x services as "
                        "per-metric tables")
    compare.add_argument("--scenarios", default="uniform,hotspot",
                         help="comma-separated registered scenario names")
    compare.add_argument("--protocols", default="chord",
                         help="comma-separated overlay names")
    compare.add_argument("--services", default="ums,brk",
                         help="comma-separated currency services (or "
                              "algorithm names such as ums-indirect)")
    add_run_parameters(compare)
    compare.add_argument("--markdown", action="store_true",
                         help="render the tables as Markdown instead of text")
    compare.add_argument("--jobs", type=int, default=None,
                         help="worker processes for the comparison grid "
                              "(default: serial, or REPRO_EXECUTOR_JOBS); "
                              "results are bit-identical to a serial run")
    compare.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="on-disk run cache: grid cells already executed "
                              "under DIR are skipped")
    compare.add_argument("--no-cache", action="store_true",
                         help="re-execute every cell even when cached")

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures")
    experiments.add_argument("--scale", choices=("tiny", "quick", "paper"), default="quick")
    experiments.add_argument("--seed", type=int, default=2007)
    experiments.add_argument("--protocol", choices=overlay_names(), default="chord",
                             help="DHT overlay for figures 6-12 and the "
                                  "probe-order ablation")
    experiments.add_argument("--output", default=None)
    experiments.add_argument("--no-ablations", action="store_true")
    experiments.add_argument("--jobs", type=int, default=None,
                             help="worker processes per sweep (bit-identical "
                                  "to a serial run)")
    experiments.add_argument("--cache-dir", default=None, metavar="DIR",
                             help="on-disk run cache for the sweeps")
    experiments.add_argument("--no-cache", action="store_true",
                             help="re-execute cached points (refreshing them)")

    attack = subparsers.add_parser(
        "attack-grid", help="sweep byzantine fractions x overlays and report "
                            "the currency-degradation curve")
    attack.add_argument("--fractions",
                        default=",".join(str(value) for value in DEFAULT_FRACTIONS),
                        help="comma-separated byzantine fractions in [0, 1); "
                             "the 0.0 honest baseline is always included")
    attack.add_argument("--protocols", default=",".join(DEFAULT_PROTOCOLS),
                        help="comma-separated overlay names")
    attack.add_argument("--strategy", choices=STRATEGIES,
                        default="stale-replay",
                        help="how byzantine responsibles falsify timestamps")
    attack.add_argument("--lag", type=int, default=1,
                        help="timestamp lag of the max-lag / random-lie "
                             "strategies")
    attack.add_argument("--peers", type=int, default=None,
                        help="cluster size per grid point (default 120)")
    attack.add_argument("--replicas", type=int, default=None, help="|Hr|")
    attack.add_argument("--keys", type=int, default=None,
                        help="number of data items (default 6)")
    attack.add_argument("--queries", type=int, default=None,
                        help="measured queries per run (default 60)")
    attack.add_argument("--duration", type=float, default=None,
                        help="simulated seconds per run (default 600)")
    attack.add_argument("--update-rate", type=float, default=None,
                        help="per-key updates per hour (default 60)")
    attack.add_argument("--seed", type=int, default=2007)
    attack.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the grid (default: serial, "
                             "or REPRO_EXECUTOR_JOBS); bit-identical to a "
                             "serial run")
    attack.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk run cache: grid points already executed "
                             "under DIR are skipped")
    attack.add_argument("--no-cache", action="store_true",
                        help="re-execute every point even when cached")
    attack.add_argument("--output", default=None, metavar="PATH",
                        help="write the attack-degradation JSON artifact here")
    attack.add_argument("--json", action="store_true",
                        help="print the JSON artifact instead of the table")

    serve = subparsers.add_parser(
        "serve", help="host a cluster behind the repro.net asyncio transport "
                      "(TCP and/or Unix domain socket)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind host (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=9207,
                       help="TCP bind port (0 picks a free one; default 9207)")
    serve.add_argument("--uds", default=None, metavar="PATH",
                       help="additionally (or, with --no-tcp, exclusively) "
                            "listen on this Unix domain socket")
    serve.add_argument("--no-tcp", action="store_true",
                       help="do not open a TCP listener (requires --uds)")
    serve.add_argument("--peers", type=int, default=64, help="cluster size")
    serve.add_argument("--protocol", choices=overlay_names(), default="chord")
    serve.add_argument("--service", default="ums",
                       help="primary currency service "
                            f"(registered: {', '.join(service_names())})")
    serve.add_argument("--replicas", type=int, default=10, help="|Hr|")
    serve.add_argument("--seed", type=int, default=2007)
    serve.add_argument("--max-inflight", type=int, default=32,
                       help="per-connection inflight-queue bound "
                            "(the backpressure knob)")

    loadgen = subparsers.add_parser(
        "loadgen", help="generate load against a backend and report "
                        "throughput + p50/p95/p99 latency")
    loadgen.add_argument("--backend", default="sim",
                         help="execution backend: sim (in-process), tcp or "
                              "uds (a running `repro serve` node)")
    loadgen.add_argument("--address", default=None,
                         help="server address: host:port for tcp, socket "
                              "path for uds")
    loadgen.add_argument("--arrival", default="poisson",
                         help="arrival model: uniform, poisson, flash-crowd "
                              "or diurnal")
    loadgen.add_argument("--ops", type=int, default=200,
                         help="target operation count")
    loadgen.add_argument("--duration", type=float, default=2.0,
                         help="wall-clock pacing window in seconds")
    loadgen.add_argument("--read-fraction", type=float, default=0.8,
                         help="fraction of operations that are retrieves")
    loadgen.add_argument("--keys", type=int, default=16,
                         help="distinct keys in the workload")
    loadgen.add_argument("--consistency", choices=Consistency.ALL,
                         default=Consistency.CURRENT)
    loadgen.add_argument("--no-pacing", action="store_true",
                         help="issue back-to-back (closed loop) instead of "
                              "following the arrival schedule")
    loadgen.add_argument("--peers", type=int, default=64,
                         help="cluster size (sim backend only)")
    loadgen.add_argument("--protocol", choices=overlay_names(), default="chord",
                         help="overlay (sim backend only)")
    loadgen.add_argument("--service", default="ums",
                         help="currency service (sim backend only)")
    loadgen.add_argument("--replicas", type=int, default=10,
                         help="|Hr| (sim backend only)")
    loadgen.add_argument("--seed", type=int, default=2007,
                         help="workload seed (and cluster seed for sim)")
    loadgen.add_argument("--timeout", type=float, default=5.0,
                         help="per-request transport timeout (net backends)")
    loadgen.add_argument("--max-retries", type=int, default=2,
                         help="bounded transport retries (net backends)")
    loadgen.add_argument("--wire-format", choices=("auto", "json", "binary"),
                         default="auto",
                         help="frame encoding for net backends: binary "
                              "(compact, zlib above a size threshold) when "
                              "the server advertises it, else json")
    loadgen.add_argument("--sync-round", action="store_true",
                         help="run one delta anti-entropy round "
                              "(sync_replicas) after the load and attach its "
                              "report to the artifact")
    loadgen.add_argument("--output", default=None, metavar="FILE",
                         help="report path (default: benchmarks/results/"
                              "loadgen-<arrival>-<backend>-<hash12>.json)")
    loadgen.add_argument("--json", action="store_true",
                         help="print the full JSON report to stdout")
    loadgen.add_argument("--shutdown", action="store_true",
                         help="ask the server to shut down gracefully after "
                              "the run (net backends)")

    subparsers.add_parser(
        "registry", help="list the registered DHT overlays and currency services")
    return parser


def _parameters_from_args(arguments: argparse.Namespace) -> SimulationParameters:
    churn_rate = arguments.churn_rate
    if churn_rate is None:
        # Preserve Table 1's churn intensity (1 departure/s across 10,000 peers
        # over 3 hours) for whatever population/duration was requested.
        churn_rate = 1.08 * arguments.peers / arguments.duration
    return SimulationParameters(
        num_peers=arguments.peers, num_replicas=arguments.replicas,
        num_keys=arguments.keys, duration_s=arguments.duration,
        num_queries=arguments.queries, churn_rate_per_s=churn_rate,
        failure_rate=arguments.failure_rate / 100.0,
        update_rate_per_hour=arguments.update_rate, protocol=arguments.protocol,
        cost_model_preset="cluster" if arguments.cluster else "wide-area",
        algorithm=arguments.algorithm, consistency=arguments.consistency,
        seed=arguments.seed)


def simulate_command(arguments: argparse.Namespace, *, stream=None) -> int:
    """Run the ``simulate`` sub-command."""
    stream = stream if stream is not None else sys.stdout
    parameters = _parameters_from_args(arguments)
    result = run_simulation(parameters)
    summary = result.summary()
    if arguments.json:
        payload = {"algorithm": result.algorithm, "protocol": parameters.protocol,
                   "service": Algorithm.service_name(result.algorithm),
                   "consistency": parameters.consistency,
                   "num_peers": result.num_peers,
                   "num_replicas": result.num_replicas, **summary}
        stream.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return 0
    label = Algorithm.label(result.algorithm)
    stream.write(f"algorithm            : {label}\n")
    stream.write(f"service              : {Algorithm.service_name(result.algorithm)}\n")
    stream.write(f"overlay              : {parameters.protocol}\n")
    stream.write(f"consistency          : {parameters.consistency}\n")
    stream.write(f"peers / replicas     : {result.num_peers} / {result.num_replicas}\n")
    stream.write(f"queries measured     : {result.query_count}\n")
    stream.write(f"avg response time    : {result.avg_response_time_s:.2f} s\n")
    stream.write(f"avg messages / query : {result.avg_messages:.1f}\n")
    stream.write(f"avg replicas probed  : {result.avg_replicas_inspected:.2f}\n")
    stream.write(f"certified current    : {result.currency_rate:.0%}\n")
    stream.write(f"churn events (fails) : {result.churn_events} ({result.failures})\n")
    stream.write(f"updates performed    : {result.updates_performed}\n")
    return 0


def registry_command(arguments: argparse.Namespace, *, stream=None) -> int:
    """Run the ``registry`` sub-command: list the pluggable backends."""
    stream = stream if stream is not None else sys.stdout
    stream.write(f"overlays (repro.dht.registry) : {', '.join(overlay_names())}\n")
    stream.write(f"services (repro.api.services) : {', '.join(service_names())}\n")
    stream.write(f"consistency levels            : {', '.join(Consistency.ALL)}\n")
    stream.write(f"scenarios (repro scenario)    : {', '.join(scenario_names())}\n")
    from repro.net.backends import backend_names

    stream.write(f"backends (repro.net.backends) : {', '.join(backend_names())}\n")
    return 0


def serve_command(arguments: argparse.Namespace, *, stream=None) -> int:
    """Run the ``serve`` sub-command: host a cluster over TCP and/or UDS."""
    stream = stream if stream is not None else sys.stdout
    import asyncio
    import signal

    from repro.net.server import NodeServer

    if arguments.no_tcp and arguments.uds is None:
        raise SystemExit("--no-tcp requires --uds (nothing left to listen on)")
    server = NodeServer(peers=arguments.peers, protocol=arguments.protocol,
                        service=arguments.service, replicas=arguments.replicas,
                        seed=arguments.seed, max_inflight=arguments.max_inflight)

    async def _serve() -> None:
        await server.start(host=None if arguments.no_tcp else arguments.host,
                           port=arguments.port, uds=arguments.uds)
        if server.tcp_address is not None:
            host, port = server.tcp_address
            stream.write(f"listening on tcp://{host}:{port}\n")
        if server.uds_path is not None:
            stream.write(f"listening on uds://{server.uds_path}\n")
        stream.write(f"serving {server.cluster.size} peers "
                     f"({arguments.protocol}, service={arguments.service}, "
                     f"seed={arguments.seed}); Ctrl-C or a client 'shutdown' "
                     "request stops gracefully\n")
        if hasattr(stream, "flush"):
            stream.flush()
        loop = asyncio.get_running_loop()
        for signal_number in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signal_number,
                    lambda: loop.create_task(server.stop()))
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # platforms without loop signal handlers
        await server.wait_stopped()

    asyncio.run(_serve())
    stream.write(f"stopped after {server.requests_served} requests\n")
    return 0


def loadgen_command(arguments: argparse.Namespace, *, stream=None) -> int:
    """Run the ``loadgen`` sub-command: paced load + latency percentiles."""
    stream = stream if stream is not None else sys.stdout
    import pathlib

    from repro.net.backends import backend_names, build_backend
    from repro.net.loadgen import LoadSpec, run_load, write_report

    backend = arguments.backend.lower()
    if backend not in backend_names():
        raise SystemExit(f"unknown backend {backend!r}; registered backends: "
                         f"{', '.join(backend_names())}")
    if backend != "sim" and arguments.address is None:
        raise SystemExit(f"--backend {backend} requires --address "
                         "(host:port for tcp, a socket path for uds)")
    try:
        spec = LoadSpec(ops=arguments.ops, duration_s=arguments.duration,
                        arrival={"model": arguments.arrival},
                        read_fraction=arguments.read_fraction,
                        keys=arguments.keys, consistency=arguments.consistency,
                        seed=arguments.seed)
    except ValueError as error:
        raise SystemExit(str(error)) from error

    if backend == "sim":
        options = dict(peers=arguments.peers, protocol=arguments.protocol,
                       service=arguments.service, replicas=arguments.replicas,
                       seed=arguments.seed)
    else:
        options = dict(address=arguments.address, timeout_s=arguments.timeout,
                       max_retries=arguments.max_retries,
                       wire_format=arguments.wire_format)
    try:
        cluster = build_backend(backend, **options)
    except (ValueError, OSError) as error:
        raise SystemExit(f"could not build backend {backend!r}: {error}") from error

    try:
        report = run_load(cluster, spec, backend=backend,
                          paced=not arguments.no_pacing)
        if arguments.sync_round:
            sync_report = cluster.sync_replicas()
            report.sync = (sync_report if isinstance(sync_report, dict)
                           else sync_report.to_dict())
        if arguments.shutdown and hasattr(cluster, "shutdown_server"):
            cluster.shutdown_server()
    finally:
        close = getattr(cluster, "close", None)
        if close is not None:
            close()

    output = pathlib.Path(arguments.output) if arguments.output else None
    path = write_report(report, output)
    if arguments.json:
        stream.write(json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
        stream.write(f"report written to {path}\n")
        return 0
    latency = report.to_dict()["latency_ms"]
    stream.write(f"backend              : {backend}\n")
    stream.write(f"arrival model        : {spec.arrival_model}\n")
    stream.write(f"operations           : {report.operations} "
                 f"({report.errors} errors)\n")
    stream.write(f"elapsed              : {report.elapsed_s:.2f} s\n")
    stream.write(f"throughput           : {report.throughput_ops_per_s:.1f} ops/s\n")
    stream.write(f"latency p50/p95/p99  : {latency['p50']:.2f} / "
                 f"{latency['p95']:.2f} / {latency['p99']:.2f} ms\n")
    if report.transport is not None:
        stream.write(f"transport            : {report.transport['requests']} "
                     f"requests, {report.transport['retries']} retries, "
                     f"{report.transport['timeouts']} timeouts\n")
        if "bytes_per_op" in report.transport:
            stream.write(f"bytes per op         : "
                         f"{report.transport['bytes_per_op']:.1f} "
                         f"({report.transport['wire_format']} frames)\n")
    if report.sync is not None:
        stream.write(f"delta sync           : {report.sync['entries_shipped']} "
                     f"shipped / {report.sync['entries_skipped']} skipped, "
                     f"transfer ratio {report.sync['transfer_ratio']:.3f}\n")
    stream.write(f"report written to {path}\n")
    return 0


#: Default simulation knobs of ``scenario run`` (single, closer look) and
#: ``scenario compare`` (many runs, so smaller per-run cost), as
#: :class:`SimulationParameters` fields.
_SCENARIO_RUN_DEFAULTS = dict(num_peers=400, num_replicas=10, num_keys=20,
                              duration_s=1800.0, num_queries=40)
_SCENARIO_COMPARE_DEFAULTS = dict(num_peers=120, num_replicas=5, num_keys=10,
                                  duration_s=600.0, num_queries=15)

#: CLI flag -> :class:`SimulationParameters` field, for the scenario commands.
_SCENARIO_FLAG_FIELDS = {
    "peers": "num_peers", "replicas": "num_replicas", "keys": "num_keys",
    "duration": "duration_s", "queries": "num_queries",
    "churn_rate": "churn_rate_per_s", "update_rate": "update_rate_per_hour",
    "consistency": "consistency",
}


def _explicit_scenario_flags(arguments: argparse.Namespace) -> dict:
    """The simulation fields the user pinned explicitly on the command line.

    Every scenario parameter flag defaults to ``None``, so a non-``None``
    value means the user typed it — these beat a scenario spec's
    ``overrides`` (the caller-wins contract of :func:`run_scenario`).
    """
    explicit = {}
    for flag, field in _SCENARIO_FLAG_FIELDS.items():
        value = getattr(arguments, flag, None)
        if value is not None:
            explicit[field] = value
    for field in ("algorithm", "protocol"):
        value = getattr(arguments, field, None)
        if value is not None:
            explicit[field] = value
    return explicit


def _resolve_scenario_run(spec: ScenarioSpec, defaults: dict, explicit: dict,
                          seed: int):
    """Materialise one run: ``defaults`` < ``spec.overrides`` < ``explicit``.

    Returns ``(spec without overrides, SimulationParameters)`` — the
    overrides are folded into the parameters, so recording the pair and
    replaying it cannot re-apply them over an explicitly pinned flag.
    """
    merged = dict(update_rate_per_hour=1.0, consistency=Consistency.CURRENT,
                  algorithm=Algorithm.UMS_DIRECT, protocol="chord", seed=seed)
    merged.update(defaults)
    merged.update(spec.overrides)
    merged.update(explicit)
    if merged.get("churn_rate_per_s") is None:
        # Table 1's churn intensity, scaled to the *effective* population and
        # duration (the same scaling the ``simulate`` sub-command applies).
        merged.pop("churn_rate_per_s", None)
        merged["churn_rate_per_s"] = (1.08 * merged["num_peers"]
                                      / merged["duration_s"])
    effective_spec = ScenarioSpec(name=spec.name, description=spec.description,
                                  popularity=spec.popularity,
                                  arrivals=spec.arrivals, profile=spec.profile,
                                  faults=spec.faults, overrides={})
    return effective_spec, SimulationParameters(**merged)


def _write_scenario_result(result, *, as_json: bool, stream) -> None:
    """Render one scenario run (text or JSON) to ``stream``.

    Overlay/consistency are read from ``result.parameters`` — the knobs the
    run *actually* used, which matters when a scenario spec overrides them.
    """
    summary = result.summary()
    protocol = result.parameters["protocol"]
    consistency = result.parameters["consistency"]
    if as_json:
        payload = {"scenario": result.scenario, "algorithm": result.algorithm,
                   "protocol": protocol, "consistency": consistency,
                   "num_peers": result.num_peers,
                   "num_replicas": result.num_replicas, **summary}
        stream.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return
    stream.write(f"scenario             : {result.scenario}\n")
    stream.write(f"algorithm            : {Algorithm.label(result.algorithm)}\n")
    stream.write(f"overlay              : {protocol}\n")
    stream.write(f"consistency          : {consistency}\n")
    stream.write(f"peers / replicas     : {result.num_peers} / {result.num_replicas}\n")
    stream.write(f"queries measured     : {result.query_count}\n")
    stream.write(f"avg response time    : {result.avg_response_time_s:.2f} s\n")
    stream.write(f"avg messages / query : {result.avg_messages:.1f}\n")
    stream.write(f"certified current    : {result.currency_rate:.0%}\n")
    stream.write(f"churn events (fails) : {result.churn_events} ({result.failures})\n")
    stream.write(f"fault events fired   : {result.fault_events}\n")
    stream.write(f"updates performed    : {result.updates_performed}\n")


def scenario_command(arguments: argparse.Namespace, *, stream=None) -> int:
    """Run the ``scenario`` sub-commands (``list`` / ``run`` / ``compare``)."""
    stream = stream if stream is not None else sys.stdout

    if arguments.scenario_command == "list":
        width = max(len(name) for name in scenario_names())
        for name in scenario_names():
            spec = get_scenario(name)
            stream.write(f"{name.ljust(width)}  {spec.description}\n")
        return 0

    if arguments.scenario_command == "run":
        explicit = _explicit_scenario_flags(arguments)
        if arguments.spec is not None:
            # A recorded spec replays exactly; any knob flag would silently
            # lose, so reject the combination outright.
            if arguments.scenario is not None:
                raise SystemExit("pass either --scenario or --spec, not both")
            if explicit:
                raise SystemExit("--spec replays the recorded parameters "
                                 "bit-for-bit; drop the parameter flags "
                                 f"({', '.join(sorted(explicit))}) or re-run "
                                 "with --scenario to change them")
            with open(arguments.spec, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            spec = ScenarioSpec.from_dict(payload["scenario"])
            parameters = SimulationParameters(**payload["parameters"])
        else:
            name = arguments.scenario if arguments.scenario is not None else "uniform"
            spec, parameters = _resolve_scenario_run(
                get_scenario(name), _SCENARIO_RUN_DEFAULTS, explicit,
                arguments.seed)
        if arguments.spec_out is not None:
            record = {"scenario": spec.to_dict(),
                      "parameters": parameters.describe()}
            with open(arguments.spec_out, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
        result = run_scenario(spec, parameters)
        _write_scenario_result(result, as_json=arguments.json, stream=stream)
        return 0

    if arguments.scenario_command == "compare":
        scenarios = [name.strip() for name in arguments.scenarios.split(",")
                     if name.strip()]
        protocols = [name.strip() for name in arguments.protocols.split(",")
                     if name.strip()]
        services = [name.strip() for name in arguments.services.split(",")
                    if name.strip()]
        if not scenarios or not protocols or not services:
            raise SystemExit("compare needs at least one scenario, one "
                             "protocol and one service")
        # Validate every axis up front: a typo must fail fast with a CLI
        # error, not a traceback after half the grid has already run.
        try:
            specs = {name: get_scenario(name) for name in scenarios}
            algorithms = {service: _algorithm_for(service)
                          for service in services}
        except ValueError as error:
            raise SystemExit(str(error)) from error
        unknown = [name for name in protocols if name not in overlay_names()]
        if unknown:
            raise SystemExit(f"unknown protocol(s) {', '.join(unknown)}; "
                             f"registered overlays: {', '.join(overlay_names())}")
        explicit = _explicit_scenario_flags(arguments)
        # The whole grid is one run plan executed by the unified execution
        # layer: --jobs parallelises it, --cache-dir skips executed cells.
        plan = RunPlan(name="scenario-compare")
        cells = []
        for scenario_name in scenarios:
            for service in services:
                for protocol in protocols:
                    # The grid axes are explicit by construction: they must
                    # beat a scenario's own algorithm/protocol overrides.
                    cell = dict(explicit, algorithm=algorithms[service],
                                protocol=protocol)
                    spec, parameters = _resolve_scenario_run(
                        specs[scenario_name], _SCENARIO_COMPARE_DEFAULTS,
                        cell, arguments.seed)
                    label = f"{service.lower()}@{protocol}"
                    plan.add(parameters, scenario=spec,
                             label=f"{scenario_name}:{label}")
                    cells.append((scenario_name, label))
        executor = Executor(arguments.jobs, cache_dir=arguments.cache_dir,
                            use_cache=not arguments.no_cache)
        results = executor.run(plan)
        records = [(scenario_name, label, result.summary())
                   for (scenario_name, label), result in zip(cells, results)]
        for table in comparison_tables(records):
            rendered = (table.to_markdown() if arguments.markdown
                        else table.to_text())
            stream.write(rendered + "\n\n")
        return 0

    raise SystemExit(f"unknown scenario command {arguments.scenario_command!r}")


def attack_grid_command(arguments: argparse.Namespace, *, stream=None) -> int:
    """Run the ``attack-grid`` command: the currency-degradation sweep."""
    stream = stream if stream is not None else sys.stdout
    try:
        fractions = [float(value) for value in arguments.fractions.split(",")
                     if value.strip()]
    except ValueError as error:
        raise SystemExit(f"bad --fractions: {error}") from error
    protocols = [name.strip() for name in arguments.protocols.split(",")
                 if name.strip()]
    if not fractions or not protocols:
        raise SystemExit("attack-grid needs at least one fraction and one "
                         "protocol")
    unknown = [name for name in protocols if name not in overlay_names()]
    if unknown:
        raise SystemExit(f"unknown protocol(s) {', '.join(unknown)}; "
                         f"registered overlays: {', '.join(overlay_names())}")
    parameters = default_attack_parameters(seed=arguments.seed)
    overrides = {key: value for key, value in (
        ("num_peers", arguments.peers), ("num_replicas", arguments.replicas),
        ("num_keys", arguments.keys), ("num_queries", arguments.queries),
        ("duration_s", arguments.duration),
        ("update_rate_per_hour", arguments.update_rate)) if value is not None}
    if overrides:
        parameters = parameters.with_overrides(**overrides)
    executor = Executor(arguments.jobs, cache_dir=arguments.cache_dir,
                        use_cache=not arguments.no_cache)
    try:
        report = run_attack_grid(parameters, fractions=fractions,
                                 protocols=protocols,
                                 strategy=arguments.strategy,
                                 lag=arguments.lag, executor=executor)
    except ValueError as error:
        raise SystemExit(str(error)) from error
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if arguments.json:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")
        return 0
    stream.write(f"attack-degradation ({report['strategy']}), "
                 f"plan {report['plan_hash'][:12]}\n")
    for protocol in report["protocols"]:
        entry = report["overlays"][protocol]
        threshold = entry["threshold"]
        shown = f"{threshold:g}" if threshold is not None else "not reached"
        stream.write(f"\n{protocol}: guarantee "
                     f"{entry['baseline_currency']:.3f}, "
                     f"threshold {shown}\n")
        for point in entry["points"]:
            stream.write(f"  f={point['fraction']:<5g} "
                         f"currency={point['currency']:.3f} "
                         f"detected_lies={point['detected_lies']:>3d} "
                         f"violations={point['violations']:d}\n")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command == "simulate":
        return simulate_command(arguments)
    if arguments.command == "scenario":
        return scenario_command(arguments)
    if arguments.command == "registry":
        return registry_command(arguments)
    if arguments.command == "serve":
        return serve_command(arguments)
    if arguments.command == "loadgen":
        return loadgen_command(arguments)
    if arguments.command == "attack-grid":
        return attack_grid_command(arguments)
    if arguments.command == "experiments":
        runner_args = ["--scale", arguments.scale, "--seed", str(arguments.seed),
                       "--protocol", arguments.protocol]
        if arguments.output:
            runner_args += ["--output", arguments.output]
        if arguments.no_ablations:
            runner_args.append("--no-ablations")
        if arguments.jobs is not None:
            runner_args += ["--jobs", str(arguments.jobs)]
        if arguments.cache_dir is not None:
            runner_args += ["--cache-dir", arguments.cache_dir]
        if arguments.no_cache:
            runner_args.append("--no-cache")
        return experiments_runner.main(runner_args)
    parser.error(f"unknown command {arguments.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
