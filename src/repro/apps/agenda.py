"""Shared agenda management on a replicated DHT (paper Section 1).

Several peers maintain a common agenda stored under one DHT key.  Every
mutation is a read-modify-write cycle through the currency service: retrieve
the current agenda (UMS guarantees the *current* replica whenever one is
available), apply the change and insert the new version.  Because UMS
timestamps every insert, concurrent writers converge on the version carrying
the latest timestamp instead of silently diverging — exactly the behaviour a
plain DHT ``put``/``get`` cannot offer.

The application talks to any object satisfying the
:class:`repro.api.CurrencyService` protocol — typically a
:class:`repro.api.Session` opened on a cluster, but a bare service instance
works identically.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.api.results import RetrieveResult

__all__ = ["AgendaEntry", "SharedAgenda", "StaleAgendaError"]


class StaleAgendaError(RuntimeError):
    """Raised when a mutation is attempted on a known-stale agenda snapshot."""


@dataclass(frozen=True)
class AgendaEntry:
    """One agenda entry (a meeting / appointment)."""

    entry_id: int
    title: str
    start: float
    end: float
    participants: tuple

    def overlaps(self, other: "AgendaEntry") -> bool:
        """Whether the two entries overlap in time."""
        return self.start < other.end and other.start < self.end

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AgendaEntry":
        return cls(entry_id=payload["entry_id"], title=payload["title"],
                   start=payload["start"], end=payload["end"],
                   participants=tuple(payload["participants"]))


class SharedAgenda:
    """A shared agenda stored under one key of the replicated DHT.

    Parameters
    ----------
    service:
        The currency service (or :class:`repro.api.Session`) used for reads
        and writes.
    agenda_id:
        Identifier of the agenda; the DHT key is ``"agenda:<agenda_id>"``.
    require_current:
        When ``True`` (default), mutations refuse to proceed from a stale
        snapshot (no current replica available) by raising
        :class:`StaleAgendaError` instead of risking lost updates.
    """

    def __init__(self, service, agenda_id: str, *,
                 require_current: bool = True) -> None:
        self.service = service
        self.agenda_id = agenda_id
        self.require_current = require_current

    @property
    def ums(self):
        """Deprecated alias of :attr:`service` (kept for the pre-API callers)."""
        return self.service

    @property
    def key(self) -> str:
        """The DHT key under which the agenda is replicated."""
        return f"agenda:{self.agenda_id}"

    # ------------------------------------------------------------------- read
    def _snapshot(self) -> Tuple[List[AgendaEntry], RetrieveResult]:
        result = self.service.retrieve(self.key)
        if not result.found:
            return [], result
        entries = [AgendaEntry.from_dict(entry) for entry in result.data.get("entries", [])]
        return entries, result

    def entries(self) -> List[AgendaEntry]:
        """The agenda's entries, ordered by start time."""
        entries, _ = self._snapshot()
        return sorted(entries, key=lambda entry: (entry.start, entry.entry_id))

    def last_read_was_current(self) -> bool:
        """Whether the most recent read returned a certified-current replica."""
        _, result = self._snapshot()
        return result.is_current or not result.found

    # ------------------------------------------------------------------ write
    def _write(self, entries: List[AgendaEntry], next_id: int) -> None:
        payload = {"entries": [entry.to_dict() for entry in entries], "next_id": next_id}
        self.service.insert(self.key, payload)

    def _mutable_snapshot(self) -> Tuple[List[AgendaEntry], int]:
        entries, result = self._snapshot()
        if result.found and not result.is_current and self.require_current:
            raise StaleAgendaError(
                f"agenda {self.agenda_id!r}: no current replica available; refusing to "
                "mutate a stale snapshot")
        next_id = result.data.get("next_id", 0) if result.found else 0
        return entries, next_id

    def add_entry(self, title: str, start: float, end: float,
                  participants: Optional[List[str]] = None) -> AgendaEntry:
        """Add an entry and return it (with its assigned identifier)."""
        if end <= start:
            raise ValueError("an agenda entry must end after it starts")
        entries, next_id = self._mutable_snapshot()
        entry = AgendaEntry(entry_id=next_id, title=title, start=start, end=end,
                            participants=tuple(participants or ()))
        entries.append(entry)
        self._write(entries, next_id + 1)
        return entry

    def cancel_entry(self, entry_id: int) -> bool:
        """Remove an entry; returns ``True`` when it existed."""
        entries, next_id = self._mutable_snapshot()
        remaining = [entry for entry in entries if entry.entry_id != entry_id]
        if len(remaining) == len(entries):
            return False
        self._write(remaining, next_id)
        return True

    # ------------------------------------------------------------------ queries
    def conflicts(self) -> List[tuple]:
        """Pairs of overlapping entries (useful to detect double bookings)."""
        entries = self.entries()
        overlapping = []
        for index, first in enumerate(entries):
            for second in entries[index + 1:]:
                if first.overlaps(second):
                    overlapping.append((first, second))
        return overlapping

    def busy_between(self, start: float, end: float) -> bool:
        """Whether any entry overlaps the ``[start, end)`` window."""
        probe = AgendaEntry(entry_id=-1, title="", start=start, end=end, participants=())
        return any(entry.overlaps(probe) for entry in self.entries())

    def __len__(self) -> int:
        return len(self.entries())
