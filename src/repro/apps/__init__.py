"""Example applications built on UMS.

The paper motivates data currency with applications such as agenda management,
cooperative auction management and reservation management (Section 1).  This
sub-package implements small but functional versions of all three on top of
:class:`~repro.core.ums.UpdateManagementService`; they are used by the
``examples/`` scripts and the integration tests.
"""

from repro.apps.agenda import AgendaEntry, SharedAgenda
from repro.apps.auction import Auction, Bid, BidRejected
from repro.apps.reservation import ReservationBook, ReservationError, SeatAlreadyTaken

__all__ = [
    "AgendaEntry",
    "Auction",
    "Bid",
    "BidRejected",
    "ReservationBook",
    "ReservationError",
    "SeatAlreadyTaken",
    "SharedAgenda",
]
