"""Reservation management on a replicated DHT (paper Section 1).

A reservation book (seats of a venue, rooms of a hotel, ...) is stored under
one key.  Reserving requires knowing the *current* occupancy: acting on a
stale replica double-books seats.  The implementation follows the same
read-modify-write pattern as the other applications, refusing to mutate when
no current replica is available.

The application talks to any :class:`repro.api.CurrencyService` — typically a
:class:`repro.api.Session` opened on a cluster.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["ReservationBook", "ReservationError", "SeatAlreadyTaken"]


class ReservationError(RuntimeError):
    """Base error for reservation failures."""


class SeatAlreadyTaken(ReservationError):
    """The requested seat is already reserved by someone else."""

    def __init__(self, seat: str, holder: str):
        super().__init__(f"seat {seat!r} is already reserved by {holder!r}")
        self.seat = seat
        self.holder = holder


class ReservationBook:
    """Seat reservations for one resource, replicated in the DHT."""

    def __init__(self, service, resource_id: str, *,
                 seats: Optional[List[str]] = None, capacity: Optional[int] = None) -> None:
        if seats is None:
            if capacity is None or capacity < 1:
                raise ValueError("provide either an explicit seat list or a capacity >= 1")
            seats = [f"seat-{index}" for index in range(capacity)]
        if len(set(seats)) != len(seats):
            raise ValueError("seat identifiers must be unique")
        self.service = service
        self.resource_id = resource_id
        self.seats = list(seats)

    @property
    def ums(self):
        """Deprecated alias of :attr:`service` (kept for the pre-API callers)."""
        return self.service

    @property
    def key(self) -> str:
        """The DHT key under which the reservation book is replicated."""
        return f"reservation:{self.resource_id}"

    # ------------------------------------------------------------------ state
    def initialize(self) -> None:
        """Create an empty reservation book in the DHT."""
        self.service.insert(self.key, {"seats": self.seats, "reservations": {}})

    def _state(self) -> Dict[str, Any]:
        result = self.service.retrieve(self.key)
        if not result.found:
            raise ReservationError(
                f"reservation book {self.resource_id!r} has not been initialised")
        if not result.is_current:
            raise ReservationError(
                f"reservation book {self.resource_id!r}: current state unavailable")
        return dict(result.data)

    def reservations(self) -> Dict[str, str]:
        """Mapping seat -> holder for all reserved seats."""
        return dict(self._state()["reservations"])

    def available_seats(self) -> List[str]:
        """Seats that are not currently reserved, in seat order."""
        taken = set(self.reservations())
        return [seat for seat in self.seats if seat not in taken]

    def occupancy(self) -> float:
        """Fraction of seats currently reserved."""
        return len(self.reservations()) / len(self.seats)

    def holder_of(self, seat: str) -> Optional[str]:
        """Who holds ``seat``, or ``None`` when it is free."""
        return self.reservations().get(seat)

    # ------------------------------------------------------------------ writes
    def reserve(self, customer: str, seat: Optional[str] = None) -> str:
        """Reserve ``seat`` (or the first available one) for ``customer``.

        Returns the reserved seat identifier; raises :class:`SeatAlreadyTaken`
        when the requested seat is occupied and :class:`ReservationError` when
        the venue is full.
        """
        state = self._state()
        reservations: Dict[str, str] = dict(state["reservations"])
        if seat is None:
            free = [candidate for candidate in self.seats if candidate not in reservations]
            if not free:
                raise ReservationError(f"no seats left in {self.resource_id!r}")
            seat = free[0]
        if seat not in self.seats:
            raise ReservationError(f"unknown seat {seat!r}")
        if seat in reservations:
            raise SeatAlreadyTaken(seat, reservations[seat])
        reservations[seat] = customer
        state["reservations"] = reservations
        self.service.insert(self.key, state)
        return seat

    def cancel(self, seat: str) -> bool:
        """Cancel the reservation of ``seat``; returns ``True`` when it was reserved."""
        state = self._state()
        reservations: Dict[str, str] = dict(state["reservations"])
        if seat not in reservations:
            return False
        del reservations[seat]
        state["reservations"] = reservations
        self.service.insert(self.key, state)
        return True
