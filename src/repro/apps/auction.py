"""Cooperative auction management on a replicated DHT (paper Section 1).

Bidders on different peers place bids on an item whose state is replicated in
the DHT.  Accepting a bid requires reading the *current* high bid — reading a
stale replica would let a lower bid overwrite a higher one.  UMS provides that
currency guarantee; the BRK baseline cannot (two concurrent bids can end up
with the same version number and an arbitrary winner).

The application talks to any :class:`repro.api.CurrencyService` — typically a
:class:`repro.api.Session` opened on a cluster.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

__all__ = ["Auction", "Bid", "BidRejected"]


class BidRejected(RuntimeError):
    """A bid was rejected (too low, auction closed, or stale state)."""


@dataclass(frozen=True)
class Bid:
    """One accepted bid."""

    bidder: str
    amount: float
    sequence: int

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Bid":
        return cls(bidder=payload["bidder"], amount=payload["amount"],
                   sequence=payload["sequence"])


class Auction:
    """A single-item English auction whose state lives in the replicated DHT."""

    def __init__(self, service, auction_id: str, *,
                 seller: str = "", reserve_price: float = 0.0,
                 minimum_increment: float = 1.0) -> None:
        if reserve_price < 0 or minimum_increment <= 0:
            raise ValueError("reserve_price must be >= 0 and minimum_increment > 0")
        self.service = service
        self.auction_id = auction_id
        self.seller = seller
        self.reserve_price = reserve_price
        self.minimum_increment = minimum_increment

    @property
    def ums(self):
        """Deprecated alias of :attr:`service` (kept for the pre-API callers)."""
        return self.service

    @property
    def key(self) -> str:
        """The DHT key under which the auction state is replicated."""
        return f"auction:{self.auction_id}"

    # ------------------------------------------------------------------ state
    def open(self) -> None:
        """Create (or reset) the auction state in the DHT."""
        self.service.insert(self.key, {"status": "open", "seller": self.seller,
                                   "reserve_price": self.reserve_price,
                                   "bids": []})

    def _state(self) -> Dict[str, Any]:
        result = self.service.retrieve(self.key)
        if not result.found:
            raise BidRejected(f"auction {self.auction_id!r} does not exist")
        if not result.is_current:
            raise BidRejected(
                f"auction {self.auction_id!r}: current state unavailable, refusing to act "
                "on a stale replica")
        return dict(result.data)

    def status(self) -> str:
        """``"open"`` or ``"closed"``."""
        return self._state()["status"]

    def bids(self) -> List[Bid]:
        """All accepted bids, in acceptance order."""
        return [Bid.from_dict(entry) for entry in self._state()["bids"]]

    def current_high_bid(self) -> Optional[Bid]:
        """The currently winning bid, if any."""
        bids = self.bids()
        return max(bids, key=lambda bid: bid.amount) if bids else None

    # ------------------------------------------------------------------- bids
    def place_bid(self, bidder: str, amount: float) -> Bid:
        """Place a bid; returns the accepted bid or raises :class:`BidRejected`."""
        state = self._state()
        if state["status"] != "open":
            raise BidRejected(f"auction {self.auction_id!r} is closed")
        bids = [Bid.from_dict(entry) for entry in state["bids"]]
        high = max((bid.amount for bid in bids), default=state["reserve_price"])
        minimum_acceptable = high + (self.minimum_increment if bids else 0.0)
        if amount < minimum_acceptable:
            raise BidRejected(
                f"bid of {amount} is below the minimum acceptable amount {minimum_acceptable}")
        accepted = Bid(bidder=bidder, amount=amount, sequence=len(bids))
        state["bids"] = [bid.to_dict() for bid in bids] + [accepted.to_dict()]
        self.service.insert(self.key, state)
        return accepted

    def close(self) -> Optional[Bid]:
        """Close the auction and return the winning bid (if any)."""
        state = self._state()
        state["status"] = "closed"
        self.service.insert(self.key, state)
        bids = [Bid.from_dict(entry) for entry in state["bids"]]
        return max(bids, key=lambda bid: bid.amount) if bids else None
