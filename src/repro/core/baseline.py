"""BRK — the BRICKS baseline the paper compares against (Section 5.1, 6).

BRICKS (Knezevic et al., GLOBE 2005) replicates a data item under multiple
correlated keys and attaches a *version number* to every replica, incremented
on each update.  To return a current replica it must

* retrieve **all** replicas (it cannot tell whether a single replica is
  current without comparing), and
* pick the highest version — which is ambiguous when concurrent updates
  produced two different values with the same version number.

We model the correlated keys with the same pairwise-independent hash functions
used for UMS so the two services place replicas identically; what differs is
the update metadata (versions vs. KTS timestamps) and the retrieval strategy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, FrozenSet, List, Optional

from repro.core.replication import ReplicationScheme
from repro.core.ums import RetrieveResult
from repro.dht.messages import OperationTrace
from repro.dht.network import DHTNetwork
from repro.dht.storage import StoredValue

__all__ = ["BricksInsertResult", "BricksRetrieveResult", "BricksService"]


@dataclass(frozen=True)
class BricksInsertResult:
    """Outcome of a BRK insert."""

    key: Any
    version: int
    replicas_written: int
    replicas_attempted: int
    trace: OperationTrace


@dataclass(frozen=True)
class BricksRetrieveResult:
    """Outcome of a BRK retrieve.

    ``ambiguous`` is ``True`` when two replicas carried the same (highest)
    version number but different data — the situation in which BRICKS cannot
    decide which replica is current (the paper's key criticism).
    """

    key: Any
    data: Any
    version: Optional[int]
    found: bool
    ambiguous: bool
    replicas_inspected: int
    trace: OperationTrace

    @property
    def message_count(self) -> int:
        return self.trace.message_count


class BricksService:
    """Versioning-based replica management (the paper's baseline algorithm)."""

    def __init__(self, network: DHTNetwork, replication: ReplicationScheme, *,
                 seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.network = network
        self.replication = replication
        self.rng = rng if rng is not None else random.Random(seed)

    # ------------------------------------------------------------------ insert
    def insert(self, key: Any, data: Any, *, origin: Optional[int] = None,
               unreachable: FrozenSet[int] = frozenset(),
               observed_version: Optional[int] = None) -> BricksInsertResult:
        """Update ``key``: read the replicas' versions, then write version+1 everywhere.

        Two concurrent inserts that read the same version will both write the
        same new version number — BRICKS has no mechanism to order them, which
        is exactly the ambiguity the paper points out.  ``observed_version``
        emulates such a concurrent updater: it skips the read phase and bases
        the new version on the state the updater had previously observed.
        """
        trace = self.network.new_trace()
        if observed_version is not None:
            current_version = observed_version
        else:
            current_version = 0
            for hash_fn in self.replication:
                entry = self.network.get(key, hash_fn, origin=origin, trace=trace,
                                         unreachable=unreachable)
                if entry is not None and entry.version is not None:
                    current_version = max(current_version, entry.version)
        new_version = current_version + 1
        written = 0
        for hash_fn in self.replication:
            stored = self.network.put(key, hash_fn, data, version=new_version,
                                      origin=origin, trace=trace,
                                      unreachable=unreachable)
            if stored:
                written += 1
        return BricksInsertResult(key=key, version=new_version, replicas_written=written,
                                  replicas_attempted=self.replication.factor, trace=trace)

    # ---------------------------------------------------------------- retrieve
    def retrieve(self, key: Any, *, origin: Optional[int] = None,
                 unreachable: FrozenSet[int] = frozenset()) -> BricksRetrieveResult:
        """Return the replica with the highest version, retrieving *all* replicas."""
        trace = self.network.new_trace()
        replicas: List[StoredValue] = []
        inspected = 0
        for hash_fn in self.replication:
            entry = self.network.get(key, hash_fn, origin=origin, trace=trace,
                                     unreachable=unreachable)
            inspected += 1
            if entry is not None and entry.version is not None:
                replicas.append(entry)
        if not replicas:
            return BricksRetrieveResult(key=key, data=None, version=None, found=False,
                                        ambiguous=False, replicas_inspected=inspected,
                                        trace=trace)
        highest = max(entry.version for entry in replicas)
        winners = [entry for entry in replicas if entry.version == highest]
        distinct_payloads = {repr(entry.data) for entry in winners}
        chosen = winners[0]
        return BricksRetrieveResult(key=key, data=chosen.data, version=highest,
                                    found=True, ambiguous=len(distinct_payloads) > 1,
                                    replicas_inspected=inspected, trace=trace)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BricksService(replicas={self.replication.factor})"
