"""BRK — the BRICKS baseline the paper compares against (Section 5.1, 6).

BRICKS (Knezevic et al., GLOBE 2005) replicates a data item under multiple
correlated keys and attaches a *version number* to every replica, incremented
on each update.  To return a current replica it must

* retrieve **all** replicas (it cannot tell whether a single replica is
  current without comparing), and
* pick the highest version — which is ambiguous when concurrent updates
  produced two different values with the same version number.

We model the correlated keys with the same pairwise-independent hash functions
used for UMS so the two services place replicas identically; what differs is
the update metadata (versions vs. KTS timestamps) and the retrieval strategy.

The service returns the **shared** result types of :mod:`repro.api.results`
(``version`` and ``ambiguous`` set, ``is_current`` always ``False`` — BRICKS
cannot certify currency, which is the paper's key criticism).  The historical
``BricksInsertResult``/``BricksRetrieveResult`` names remain importable as
deprecated aliases of the shared types.

Consistency levels map onto BRICKS as follows: ``Consistency.CURRENT`` is its
best attempt (retrieve every replica, return the highest version),
``Consistency.ANY`` returns the first replica found, ``Consistency.BEST_EFFORT``
bounds the probes and returns the highest version among them.
"""

from __future__ import annotations

import random
import warnings
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

# reprolint: allow[REP005] reason=shared result types deliberately live in repro.api so sim and service stacks return identical objects (tests/api/test_shared_results.py)
from repro.api.results import (
    BatchInsertResult,
    BatchRetrieveResult,
    Consistency,
    InsertResult,
    RetrieveResult,
)
from repro.core.replication import ReplicationScheme
from repro.dht.network import DHTNetwork
from repro.dht.storage import StoredValue

__all__ = ["BricksInsertResult", "BricksRetrieveResult", "BricksService"]

SERVICE_NAME = "brk"

_DEPRECATED_ALIASES = {
    "BricksInsertResult": InsertResult,
    "BricksRetrieveResult": RetrieveResult,
}


def __getattr__(name: str):
    """Deprecated aliases: the BRK result types folded into the shared ones."""
    alias = _DEPRECATED_ALIASES.get(name)
    if alias is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"{name} is deprecated; BRK returns the shared repro.api.results."
        f"{alias.__name__} type since the unified client API. The shared "
        "type's field order differs from the legacy one — construct it with "
        "keyword arguments",
        DeprecationWarning, stacklevel=2)
    return alias


class BricksService:
    """Versioning-based replica management (the paper's baseline algorithm)."""

    def __init__(self, network: DHTNetwork, replication: ReplicationScheme, *,
                 seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.network = network
        self.replication = replication
        self.rng = rng if rng is not None else random.Random(seed)

    # ------------------------------------------------------------------ insert
    def insert(self, key: Any, data: Any, *, origin: Optional[int] = None,
               unreachable: FrozenSet[int] = frozenset(),
               observed_version: Optional[int] = None) -> InsertResult:
        """Update ``key``: read the replicas' versions, then write version+1 everywhere.

        Two concurrent inserts that read the same version will both write the
        same new version number — BRICKS has no mechanism to order them, which
        is exactly the ambiguity the paper points out.  ``observed_version``
        emulates such a concurrent updater: it skips the read phase and bases
        the new version on the state the updater had previously observed.
        """
        trace = self.network.new_trace()
        if observed_version is not None:
            current_version = observed_version
        else:
            current_version = 0
            for hash_fn in self.replication:
                entry = self.network.get(key, hash_fn, origin=origin, trace=trace,
                                         unreachable=unreachable)
                if entry is not None and entry.version is not None:
                    current_version = max(current_version, entry.version)
        new_version = current_version + 1
        written = 0
        for hash_fn in self.replication:
            stored = self.network.put(key, hash_fn, data, version=new_version,
                                      origin=origin, trace=trace,
                                      unreachable=unreachable)
            if stored:
                written += 1
        return InsertResult(key=key, version=new_version, replicas_written=written,
                            replicas_attempted=self.replication.factor, trace=trace,
                            service=SERVICE_NAME)

    def insert_many(self, items: Sequence[Tuple[Any, Any]], *,
                    origin: Optional[int] = None,
                    unreachable: FrozenSet[int] = frozenset()) -> BatchInsertResult:
        """Insert several ``(key, data)`` pairs, batching both phases.

        The read phase fetches every replica of every key with coalesced
        :meth:`DHTNetwork.get_many` sweeps, and the write phase coalesces the
        version+1 writes per destination peer.
        """
        trace = self.network.new_trace()
        distinct_keys = list(dict.fromkeys(key for key, _data in items))
        read_requests = [(key, hash_fn) for key in distinct_keys
                         for hash_fn in self.replication]
        entries = self.network.get_many(read_requests, origin=origin, trace=trace,
                                        unreachable=unreachable)
        base_version: Dict[Any, int] = {key: 0 for key in distinct_keys}
        for (key, _hash_fn), entry in zip(read_requests, entries):
            if entry is not None and entry.version is not None:
                base_version[key] = max(base_version[key], entry.version)
        # One version per *occurrence*: a duplicated key writes consecutive
        # versions, exactly like a sequential loop would (each loop iteration
        # observes the version the previous one wrote).
        occurrence: Dict[Any, int] = {}
        versions: List[int] = []
        for key, _data in items:
            occurrence[key] = occurrence.get(key, 0) + 1
            versions.append(base_version[key] + occurrence[key])
        write_requests = self.replication.replicated_requests(
            items, [(None, version) for version in versions])
        accepted = self.network.put_many(write_requests, origin=origin,
                                         trace=trace, unreachable=unreachable)
        written = self.replication.fold_batch_acceptance(accepted, len(items))
        results = tuple(
            InsertResult(key=key, version=versions[index],
                         replicas_written=written[index],
                         replicas_attempted=self.replication.factor,
                         trace=trace, service=SERVICE_NAME)
            for index, (key, _data) in enumerate(items))
        return BatchInsertResult(results=results, trace=trace)

    # ---------------------------------------------------------------- retrieve
    def retrieve(self, key: Any, *, origin: Optional[int] = None,
                 unreachable: FrozenSet[int] = frozenset(),
                 consistency: str = Consistency.CURRENT,
                 max_probes: Optional[int] = None) -> RetrieveResult:
        """Return the highest-version replica BRICKS can assemble.

        Under the default level BRICKS must retrieve *all* replicas (it cannot
        tell whether a single one is current); ``Consistency.ANY`` stops at
        the first replica found and ``Consistency.BEST_EFFORT`` inspects at
        most ``max_probes`` replicas (default 3).  ``is_current`` is always
        ``False``: version numbers cannot certify currency.
        """
        Consistency.validate(consistency)
        trace = self.network.new_trace()
        replicas: List[StoredValue] = []
        inspected = 0
        for hash_fn in list(self.replication)[:self._probe_limit(consistency,
                                                                 max_probes)]:
            entry = self.network.get(key, hash_fn, origin=origin, trace=trace,
                                     unreachable=unreachable)
            inspected += 1
            if entry is not None and entry.version is not None:
                replicas.append(entry)
                if consistency == Consistency.ANY:
                    break
        return self._pick(key, replicas, inspected, trace, consistency)

    def retrieve_many(self, keys: Sequence[Any], *, origin: Optional[int] = None,
                      unreachable: FrozenSet[int] = frozenset(),
                      consistency: str = Consistency.CURRENT,
                      max_probes: Optional[int] = None) -> BatchRetrieveResult:
        """Retrieve several keys at once, coalescing probes per destination peer.

        Under the default (retrieve-all) level every ``(key, replica)`` pair is
        fetched in one :meth:`DHTNetwork.get_many` sweep; under ``ANY``/
        ``BEST_EFFORT`` the probe rounds are interleaved across keys like UMS.
        """
        Consistency.validate(consistency)
        trace = self.network.new_trace()
        probe_limit = self._probe_limit(consistency, max_probes)
        # Distinct keys only: a duplicated key is probed once and its result
        # fanned out to every position, like repeated reads in a loop.
        distinct_keys = list(dict.fromkeys(keys))
        collected: Dict[Any, List[StoredValue]] = {key: [] for key in distinct_keys}
        inspected: Dict[Any, int] = {key: 0 for key in distinct_keys}
        done: Dict[Any, bool] = {key: False for key in distinct_keys}
        hashes = list(self.replication)
        for round_index in range(probe_limit):
            pending = [key for key in distinct_keys if not done[key]]
            if not pending:
                break
            requests = [(key, hashes[round_index]) for key in pending]
            entries = self.network.get_many(requests, origin=origin, trace=trace,
                                            unreachable=unreachable)
            for (key, _hash_fn), entry in zip(requests, entries):
                inspected[key] += 1
                if entry is not None and entry.version is not None:
                    collected[key].append(entry)
                    if consistency == Consistency.ANY:
                        done[key] = True
        results = tuple(self._pick(key, collected[key], inspected[key], trace,
                                   consistency)
                        for key in keys)
        return BatchRetrieveResult(results=results, trace=trace,
                                   consistency=consistency)

    def _pick(self, key: Any, replicas: List[StoredValue], inspected: int,
              trace, consistency: str) -> RetrieveResult:
        if not replicas:
            return RetrieveResult(key=key, data=None, version=None, found=False,
                                  ambiguous=False, is_current=False,
                                  replicas_inspected=inspected, trace=trace,
                                  consistency=consistency, service=SERVICE_NAME)
        highest = max(entry.version for entry in replicas)
        winners = [entry for entry in replicas if entry.version == highest]
        distinct_payloads = {repr(entry.data) for entry in winners}
        chosen = winners[0]
        return RetrieveResult(key=key, data=chosen.data, version=highest,
                              found=True, ambiguous=len(distinct_payloads) > 1,
                              is_current=False, replicas_inspected=inspected,
                              trace=trace, consistency=consistency,
                              service=SERVICE_NAME)

    def _probe_limit(self, consistency: str, max_probes: Optional[int]) -> int:
        return Consistency.probe_limit(consistency, max_probes,
                                       self.replication.factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BricksService(replicas={self.replication.factor})"
