"""UMS — the Update Management Service (Section 3).

UMS provides the two update operations of Figure 2 on top of the DHT's
``put_h``/``get_h`` and the KTS timestamping service:

* :meth:`UpdateManagementService.insert` — generate a timestamp for the key
  and write ``{data, ts}`` to ``rsp(k, h)`` for every replication hash
  function ``h ∈ Hr``.  Receiving peers only keep the replica with the newest
  timestamp, so concurrent inserts converge on the one that obtained the
  latest timestamp.
* :meth:`UpdateManagementService.retrieve` — honour the requested
  :class:`~repro.api.results.Consistency` level.  The default
  (``Consistency.CURRENT``) is the paper's Figure 2 retrieval: ask KTS for
  the last timestamp generated for the key, then probe replicas one by one,
  returning the first replica stamped with it (falling back to the most
  recent replica found, flagged not current).  ``Consistency.ANY`` is a
  first-replica read without the KTS lookup; ``Consistency.BEST_EFFORT``
  bounds the probes and returns the freshest replica seen.

The batched variants (:meth:`~UpdateManagementService.insert_many`,
:meth:`~UpdateManagementService.retrieve_many`) amortise the KTS lookups and
coalesce replica probes that land on the same responsible peer, interleaving
the probe rounds across keys; they are semantically equivalent to per-key
loops but send measurably fewer messages.

Every operation returns the shared result types of :mod:`repro.api.results`,
carrying the full message trace so callers can account for communication cost
and response time uniformly across services.
"""

from __future__ import annotations

import random
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

# reprolint: allow[REP005] reason=shared result types deliberately live in repro.api so sim and service stacks return identical objects (tests/api/test_shared_results.py)
from repro.api.results import (
    BatchInsertResult,
    BatchRetrieveResult,
    Consistency,
    InsertResult,
    RetrieveResult,
)
from repro.core.detector import CrossCheckDetector
from repro.core.kts import KeyBasedTimestampService
from repro.core.replication import ReplicationScheme
from repro.dht.messages import OperationTrace
from repro.dht.network import DHTNetwork
from repro.dht.storage import StoredValue

__all__ = ["InsertResult", "RetrieveResult", "UpdateManagementService"]

SERVICE_NAME = "ums"


class UpdateManagementService:
    """The paper's UMS, parameterised by a network, a KTS instance and ``Hr``.

    Parameters
    ----------
    network / kts / replication:
        The substrate services.  ``kts.replication`` and ``replication``
        normally coincide; they are passed separately so tests can explore
        mismatched configurations.
    probe_order:
        ``"random"`` (default) shuffles the replica probe order on every
        retrieve, matching the independence assumption of the cost analysis;
        ``"fixed"`` probes in the canonical ``Hr`` order (ablation study).
    detector:
        Optional :class:`~repro.core.detector.CrossCheckDetector`.  When
        attached, every :meth:`retrieve` (except under ``Consistency.ANY``,
        which makes no currency claim) cross-checks the ``last_ts`` reply
        against the replica timestamps it probed anyway; a claim provably
        *behind* an observed replica is flagged.  The detector is passive:
        no extra messages, no RNG draws, no change to any result.
    """

    def __init__(self, network: DHTNetwork, kts: KeyBasedTimestampService,
                 replication: ReplicationScheme, *, probe_order: str = "random",
                 seed: Optional[int] = None,
                 rng: Optional[random.Random] = None,
                 detector: Optional["CrossCheckDetector"] = None) -> None:
        if probe_order not in ("random", "fixed"):
            raise ValueError(f"probe_order must be 'random' or 'fixed', got {probe_order!r}")
        self.network = network
        self.kts = kts
        self.replication = replication
        self.probe_order = probe_order
        self.rng = rng if rng is not None else random.Random(seed)
        self.detector = detector

    # ------------------------------------------------------------------ insert
    def insert(self, key: Any, data: Any, *, origin: Optional[int] = None,
               unreachable: FrozenSet[int] = frozenset()) -> InsertResult:
        """Insert (or update) ``key`` with ``data`` in the replicated DHT.

        ``unreachable`` injects the paper's motivating failure: replica holders
        in that set do not receive the update, leaving stale replicas behind.
        """
        trace = self.network.new_trace()
        timestamp = self.kts.gen_ts(key, origin=origin, trace=trace)
        written = 0
        for hash_fn in self.replication:
            stored = self.network.put(key, hash_fn, data, timestamp=timestamp,
                                      origin=origin, trace=trace,
                                      unreachable=unreachable)
            if stored:
                written += 1
        return InsertResult(key=key, timestamp=timestamp, replicas_written=written,
                            replicas_attempted=self.replication.factor, trace=trace,
                            service=SERVICE_NAME)

    def insert_many(self, items: Sequence[Tuple[Any, Any]], *,
                    origin: Optional[int] = None,
                    unreachable: FrozenSet[int] = frozenset()) -> BatchInsertResult:
        """Insert several ``(key, data)`` pairs in one batched operation.

        The timestamps are generated with one routed TSR exchange per distinct
        responsible of timestamping (:meth:`KeyBasedTimestampService.gen_ts_many`)
        and the replica writes are coalesced per destination peer
        (:meth:`DHTNetwork.put_many`).
        """
        trace = self.network.new_trace()
        keys = [key for key, _data in items]
        # One timestamp per *occurrence* (a duplicated key gets two increasing
        # timestamps, exactly like a sequential loop would).
        timestamps = self.kts.gen_ts_many(keys, origin=origin, trace=trace)
        requests = self.replication.replicated_requests(
            items, [(timestamp, None) for timestamp in timestamps])
        accepted = self.network.put_many(requests, origin=origin, trace=trace,
                                         unreachable=unreachable)
        written = self.replication.fold_batch_acceptance(accepted, len(items))
        results = tuple(
            InsertResult(key=key, timestamp=timestamps[index],
                         replicas_written=written[index],
                         replicas_attempted=self.replication.factor, trace=trace,
                         service=SERVICE_NAME)
            for index, (key, _data) in enumerate(items))
        return BatchInsertResult(results=results, trace=trace)

    # ---------------------------------------------------------------- retrieve
    def retrieve(self, key: Any, *, origin: Optional[int] = None,
                 unreachable: FrozenSet[int] = frozenset(),
                 consistency: str = Consistency.CURRENT,
                 max_probes: Optional[int] = None) -> RetrieveResult:
        """Return a replica of ``key`` honouring the consistency level.

        Under ``Consistency.CURRENT`` (Figure 2) the operation stops at the
        first replica stamped with the last timestamp generated for the key;
        otherwise it returns the most recent replica it saw, flagged
        ``is_current=False``.  ``Consistency.ANY`` skips the KTS lookup and
        returns the first replica found; ``Consistency.BEST_EFFORT`` probes at
        most ``max_probes`` replicas (default 3) and returns the freshest.
        """
        Consistency.validate(consistency)
        trace = self.network.new_trace()
        latest = None
        if consistency != Consistency.ANY:
            latest = self.kts.last_ts(key, origin=origin, trace=trace)
        probe_limit = self._probe_limit(consistency, max_probes)
        most_recent: Optional[StoredValue] = None
        inspected = 0
        observed: List[int] = []
        for hash_fn in self._probe_sequence()[:probe_limit]:
            entry = self.network.get(key, hash_fn, origin=origin, trace=trace,
                                     unreachable=unreachable)
            inspected += 1
            if entry is None or entry.timestamp is None:
                continue
            observed.append(entry.timestamp.value)
            if consistency == Consistency.ANY:
                return self._result(key, entry, latest, inspected, trace,
                                    consistency, is_current=False)
            if latest is not None and entry.timestamp.value == latest.value:
                self._cross_check(key, latest, observed)
                return self._result(key, entry, latest, inspected, trace,
                                    consistency, is_current=True)
            if most_recent is None or entry.timestamp > most_recent.timestamp:
                most_recent = entry
        if consistency != Consistency.ANY:
            self._cross_check(key, latest, observed)
        if most_recent is not None:
            return self._result(key, most_recent, latest, inspected, trace,
                                consistency, is_current=False)
        return RetrieveResult(key=key, data=None, timestamp=None, is_current=False,
                              found=False, replicas_inspected=inspected,
                              latest_timestamp=latest, trace=trace,
                              consistency=consistency, service=SERVICE_NAME)

    def retrieve_many(self, keys: Sequence[Any], *, origin: Optional[int] = None,
                      unreachable: FrozenSet[int] = frozenset(),
                      consistency: str = Consistency.CURRENT,
                      max_probes: Optional[int] = None) -> BatchRetrieveResult:
        """Retrieve several keys in one batched operation.

        The ``last_ts`` lookups are amortised across keys
        (:meth:`KeyBasedTimestampService.last_ts_many`) and the replica probes
        are interleaved: round ``r`` probes the ``r``-th replica of every
        still-unresolved key in a single :meth:`DHTNetwork.get_many` sweep, so
        probes landing on the same responsible share one routed exchange.
        Per-key outcomes are identical to :meth:`retrieve`; only the message
        accounting is amortised (all results share the batch trace).
        """
        Consistency.validate(consistency)
        trace = self.network.new_trace()
        latest: Dict[Any, Any] = {}
        if consistency != Consistency.ANY:
            latest = self.kts.last_ts_many(list(keys), origin=origin, trace=trace)
        probe_limit = self._probe_limit(consistency, max_probes)
        # Distinct keys only: a duplicated key is probed once and its result
        # fanned out to every position, like repeated reads in a loop.
        distinct_keys = list(dict.fromkeys(keys))
        orders = {key: self._probe_sequence() for key in distinct_keys}
        resolved: Dict[Any, RetrieveResult] = {}
        most_recent: Dict[Any, StoredValue] = {}
        inspected: Dict[Any, int] = {key: 0 for key in distinct_keys}
        for round_index in range(probe_limit):
            pending = [key for key in distinct_keys if key not in resolved]
            if not pending:
                break
            requests = [(key, orders[key][round_index]) for key in pending]
            entries = self.network.get_many(requests, origin=origin, trace=trace,
                                            unreachable=unreachable)
            for (key, _hash_fn), entry in zip(requests, entries):
                inspected[key] += 1
                if entry is None or entry.timestamp is None:
                    continue
                key_latest = latest.get(key)
                if consistency == Consistency.ANY:
                    resolved[key] = self._result(key, entry, key_latest,
                                                 inspected[key], trace,
                                                 consistency, is_current=False)
                elif key_latest is not None and entry.timestamp.value == key_latest.value:
                    resolved[key] = self._result(key, entry, key_latest,
                                                 inspected[key], trace,
                                                 consistency, is_current=True)
                elif (key not in most_recent
                      or entry.timestamp > most_recent[key].timestamp):
                    most_recent[key] = entry
        results = []
        for key in keys:
            result = resolved.get(key)
            if result is None:
                entry = most_recent.get(key)
                if entry is not None:
                    result = self._result(key, entry, latest.get(key),
                                          inspected[key], trace, consistency,
                                          is_current=False)
                else:
                    result = RetrieveResult(
                        key=key, data=None, timestamp=None, is_current=False,
                        found=False, replicas_inspected=inspected[key],
                        latest_timestamp=latest.get(key), trace=trace,
                        consistency=consistency, service=SERVICE_NAME)
            results.append(result)
        return BatchRetrieveResult(results=tuple(results), trace=trace,
                                   consistency=consistency)

    def _cross_check(self, key: Any, latest, observed: List[int]) -> None:
        """Hand one retrieval's evidence to the attached detector, if any.

        ``retrieve_many`` deliberately skips detection: its interleaved probe
        rounds stop probing a key once it resolves, so the per-key evidence
        is weaker than the sequential path's and the two would disagree.
        """
        if self.detector is None or not observed:
            return
        claimed = latest.value if latest is not None else None
        self.detector.observe(key, claimed, observed)

    def _result(self, key: Any, entry: StoredValue, latest, inspected: int,
                trace: OperationTrace, consistency: str, *,
                is_current: bool) -> RetrieveResult:
        return RetrieveResult(key=key, data=entry.data, timestamp=entry.timestamp,
                              is_current=is_current, found=True,
                              replicas_inspected=inspected,
                              latest_timestamp=latest, trace=trace,
                              consistency=consistency, service=SERVICE_NAME)

    def _probe_limit(self, consistency: str, max_probes: Optional[int]) -> int:
        return Consistency.probe_limit(consistency, max_probes,
                                       self.replication.factor)

    def _probe_sequence(self) -> List:
        if self.probe_order == "random":
            return self.replication.shuffled(self.rng)
        return list(self.replication)

    # ------------------------------------------------------------- diagnostics
    def currency_probability(self, key: Any) -> float:
        """Empirical probability of currency and availability ``pt`` for ``key``.

        The fraction of replication hash functions whose *current* responsible
        holds a replica stamped with the latest timestamp stored anywhere.
        This is the quantity the cost analysis of Section 3.3 is expressed in.
        """
        replicas = self.network.stored_replicas(key, self.replication)
        stamped = [entry for entry in replicas if entry.timestamp is not None]
        if not stamped:
            return 0.0
        newest = max(entry.timestamp.value for entry in stamped)
        current = sum(1 for entry in stamped if entry.timestamp.value == newest)
        return current / self.replication.factor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"UpdateManagementService(replicas={self.replication.factor}, "
                f"probe_order={self.probe_order!r})")
