"""UMS — the Update Management Service (Section 3).

UMS provides the two update operations of Figure 2 on top of the DHT's
``put_h``/``get_h`` and the KTS timestamping service:

* :meth:`UpdateManagementService.insert` — generate a timestamp for the key
  and write ``{data, ts}`` to ``rsp(k, h)`` for every replication hash
  function ``h ∈ Hr``.  Receiving peers only keep the replica with the newest
  timestamp, so concurrent inserts converge on the one that obtained the
  latest timestamp.
* :meth:`UpdateManagementService.retrieve` — ask KTS for the last timestamp
  generated for the key, then probe replicas one by one, returning the first
  replica stamped with that timestamp.  If no current replica is available the
  most recent one found is returned (flagged as not current).

Every operation returns a result object carrying the full message trace so
callers can account for communication cost and response time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, FrozenSet, Optional

from repro.core.kts import KeyBasedTimestampService
from repro.core.replication import ReplicationScheme
from repro.core.timestamps import Timestamp
from repro.dht.messages import OperationTrace
from repro.dht.network import DHTNetwork
from repro.dht.storage import StoredValue

__all__ = ["InsertResult", "RetrieveResult", "UpdateManagementService"]


@dataclass(frozen=True)
class InsertResult:
    """Outcome of a UMS insert."""

    key: Any
    timestamp: Timestamp
    replicas_written: int
    replicas_attempted: int
    trace: OperationTrace

    @property
    def fully_replicated(self) -> bool:
        """Whether every replica holder accepted the new value."""
        return self.replicas_written == self.replicas_attempted


@dataclass(frozen=True)
class RetrieveResult:
    """Outcome of a UMS (or BRK) retrieve."""

    key: Any
    data: Any
    timestamp: Optional[Timestamp]
    is_current: bool
    found: bool
    replicas_inspected: int
    latest_timestamp: Optional[Timestamp]
    trace: OperationTrace

    @property
    def message_count(self) -> int:
        """Communication cost of the retrieval (total number of messages)."""
        return self.trace.message_count


class UpdateManagementService:
    """The paper's UMS, parameterised by a network, a KTS instance and ``Hr``.

    Parameters
    ----------
    network / kts / replication:
        The substrate services.  ``kts.replication`` and ``replication``
        normally coincide; they are passed separately so tests can explore
        mismatched configurations.
    probe_order:
        ``"random"`` (default) shuffles the replica probe order on every
        retrieve, matching the independence assumption of the cost analysis;
        ``"fixed"`` probes in the canonical ``Hr`` order (ablation study).
    """

    def __init__(self, network: DHTNetwork, kts: KeyBasedTimestampService,
                 replication: ReplicationScheme, *, probe_order: str = "random",
                 seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        if probe_order not in ("random", "fixed"):
            raise ValueError(f"probe_order must be 'random' or 'fixed', got {probe_order!r}")
        self.network = network
        self.kts = kts
        self.replication = replication
        self.probe_order = probe_order
        self.rng = rng if rng is not None else random.Random(seed)

    # ------------------------------------------------------------------ insert
    def insert(self, key: Any, data: Any, *, origin: Optional[int] = None,
               unreachable: FrozenSet[int] = frozenset()) -> InsertResult:
        """Insert (or update) ``key`` with ``data`` in the replicated DHT.

        ``unreachable`` injects the paper's motivating failure: replica holders
        in that set do not receive the update, leaving stale replicas behind.
        """
        trace = self.network.new_trace()
        timestamp = self.kts.gen_ts(key, origin=origin, trace=trace)
        written = 0
        for hash_fn in self.replication:
            stored = self.network.put(key, hash_fn, data, timestamp=timestamp,
                                      origin=origin, trace=trace,
                                      unreachable=unreachable)
            if stored:
                written += 1
        return InsertResult(key=key, timestamp=timestamp, replicas_written=written,
                            replicas_attempted=self.replication.factor, trace=trace)

    # ---------------------------------------------------------------- retrieve
    def retrieve(self, key: Any, *, origin: Optional[int] = None,
                 unreachable: FrozenSet[int] = frozenset()) -> RetrieveResult:
        """Return a current replica of ``key`` if one is available (Figure 2).

        The operation stops at the first replica stamped with the last
        timestamp generated for the key; otherwise it returns the most recent
        replica it saw, flagged ``is_current=False``.
        """
        trace = self.network.new_trace()
        latest = self.kts.last_ts(key, origin=origin, trace=trace)
        most_recent: Optional[StoredValue] = None
        inspected = 0
        for hash_fn in self._probe_sequence():
            entry = self.network.get(key, hash_fn, origin=origin, trace=trace,
                                     unreachable=unreachable)
            inspected += 1
            if entry is None or entry.timestamp is None:
                continue
            if latest is not None and entry.timestamp.value == latest.value:
                return RetrieveResult(key=key, data=entry.data,
                                      timestamp=entry.timestamp, is_current=True,
                                      found=True, replicas_inspected=inspected,
                                      latest_timestamp=latest, trace=trace)
            if most_recent is None or entry.timestamp > most_recent.timestamp:
                most_recent = entry
        if most_recent is not None:
            return RetrieveResult(key=key, data=most_recent.data,
                                  timestamp=most_recent.timestamp, is_current=False,
                                  found=True, replicas_inspected=inspected,
                                  latest_timestamp=latest, trace=trace)
        return RetrieveResult(key=key, data=None, timestamp=None, is_current=False,
                              found=False, replicas_inspected=inspected,
                              latest_timestamp=latest, trace=trace)

    def _probe_sequence(self):
        if self.probe_order == "random":
            return self.replication.shuffled(self.rng)
        return list(self.replication)

    # ------------------------------------------------------------- diagnostics
    def currency_probability(self, key: Any) -> float:
        """Empirical probability of currency and availability ``pt`` for ``key``.

        The fraction of replication hash functions whose *current* responsible
        holds a replica stamped with the latest timestamp stored anywhere.
        This is the quantity the cost analysis of Section 3.3 is expressed in.
        """
        replicas = self.network.stored_replicas(key, self.replication)
        stamped = [entry for entry in replicas if entry.timestamp is not None]
        if not stamped:
            return 0.0
        newest = max(entry.timestamp.value for entry in stamped)
        current = sum(1 for entry in stamped if entry.timestamp.value == newest)
        return current / self.replication.factor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"UpdateManagementService(replicas={self.replication.factor}, "
                f"probe_order={self.probe_order!r})")
