"""Replication scheme: the set ``Hr`` of replication hash functions (Section 3.1).

UMS replicates every pair ``(k, data)`` at ``rsp(k, h)`` for each ``h`` in a
set ``Hr`` of pairwise-independent hash functions.  The size of ``Hr`` is the
replication factor: the paper uses 10 by default and sweeps 5–40 in Figures 9
and 10.

Beyond placement, the scheme owns the *replica-sync* exchange
(:meth:`ReplicationScheme.sync_replicas`): one anti-entropy round that brings
every replica holder of a key up to the newest copy, shipping only the keys
whose KTS timestamp (or BRK version) advanced past the holder's summary —
the delta-replication primitive of the wire-efficiency layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.core.errors import ReplicationConfigurationError
from repro.dht.hashing import HashFamily, PairwiseIndependentHash
from repro.dht.messages import MessageKind, OperationTrace
from repro.dht.network import SYNC_SUMMARY_ENTRY_BYTES, DHTNetwork
from repro.dht.storage import advanced_past, reconciliation_token

__all__ = ["ReplicaSyncReport", "ReplicationScheme"]


@dataclass(frozen=True)
class ReplicaSyncReport:
    """Outcome of one :meth:`ReplicationScheme.sync_replicas` round.

    Byte figures use the network's modeled message sizes; ``full_bytes`` is
    the cost of the naive alternative (re-pushing every key to every replica
    holder), so :attr:`transfer_ratio` is the round's measured saving.
    """

    keys: int
    replica_slots: int
    entries_shipped: int
    entries_applied: int
    entries_skipped: int
    summary_bytes: int
    delta_bytes: int
    full_bytes: int
    messages: int

    @property
    def transfer_bytes(self) -> int:
        """Bytes the delta round put on the wire (summaries + deltas)."""
        return self.summary_bytes + self.delta_bytes

    @property
    def transfer_ratio(self) -> float:
        """Delta-round bytes as a fraction of the full-state push."""
        if self.full_bytes <= 0:
            return 0.0
        return self.transfer_bytes / self.full_bytes

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (served by the ``sync`` wire operation)."""
        return {"keys": self.keys, "replica_slots": self.replica_slots,
                "entries_shipped": self.entries_shipped,
                "entries_applied": self.entries_applied,
                "entries_skipped": self.entries_skipped,
                "summary_bytes": self.summary_bytes,
                "delta_bytes": self.delta_bytes,
                "full_bytes": self.full_bytes,
                "messages": self.messages,
                "transfer_bytes": self.transfer_bytes,
                "transfer_ratio": self.transfer_ratio}


class ReplicationScheme:
    """An ordered collection of replication hash functions ``Hr``."""

    def __init__(self, hashes: Sequence[PairwiseIndependentHash]) -> None:
        if not hashes:
            raise ReplicationConfigurationError("the replication scheme needs at least one hash function")
        names = [hash_fn.name for hash_fn in hashes]
        if len(set(names)) != len(names):
            raise ReplicationConfigurationError(f"duplicate hash function names in Hr: {names}")
        self._hashes: List[PairwiseIndependentHash] = list(hashes)

    # ------------------------------------------------------------ construction
    @classmethod
    def create(cls, count: int = 10, *, bits: int = 32, seed: Optional[int] = None,
               family: Optional[HashFamily] = None) -> "ReplicationScheme":
        """Sample ``count`` replication hash functions from a (new) family."""
        if count < 1:
            raise ReplicationConfigurationError(f"replication factor must be >= 1, got {count}")
        if family is None:
            family = HashFamily(bits=bits, seed=seed)
        return cls(family.sample_many(count, prefix="hr"))

    # ---------------------------------------------------------------- access
    @property
    def hashes(self) -> Sequence[PairwiseIndependentHash]:
        """The replication hash functions, in their canonical order."""
        return tuple(self._hashes)

    @property
    def names(self) -> List[str]:
        """The names of the replication hash functions."""
        return [hash_fn.name for hash_fn in self._hashes]

    @property
    def factor(self) -> int:
        """``|Hr|`` — the replication factor."""
        return len(self._hashes)

    def __len__(self) -> int:
        return len(self._hashes)

    def __iter__(self) -> Iterator[PairwiseIndependentHash]:
        return iter(self._hashes)

    def __getitem__(self, index: int) -> PairwiseIndependentHash:
        return self._hashes[index]

    # ------------------------------------------------------------ batched ops
    def replicated_requests(self, items: Sequence, stamps: Sequence) -> List[tuple]:
        """Expand ``(key, data)`` items into per-replica write requests.

        Lays the requests out item-major over ``Hr`` — the contract
        :meth:`fold_batch_acceptance` relies on — with ``stamps[i]`` providing
        the ``(timestamp, version)`` pair stamped on every replica of item
        ``i``.  This is the single place that encodes the batched-write
        request layout shared by the currency services.
        """
        requests: List[tuple] = []
        for (key, data), (timestamp, version) in zip(items, stamps):
            for hash_fn in self._hashes:
                requests.append((key, hash_fn, data, timestamp, version))
        return requests

    def fold_batch_acceptance(self, accepted: Sequence[bool],
                              item_count: int) -> List[int]:
        """Per-item acceptance counts for a :meth:`replicated_requests` batch.

        ``accepted`` is the flag list returned by ``DHTNetwork.put_many`` for
        a request list built by :meth:`replicated_requests`; item ``i``'s
        flags occupy the contiguous slice ``[i * factor, (i + 1) * factor)``.
        """
        factor = self.factor
        return [sum(1 for stored in accepted[index * factor:(index + 1) * factor]
                    if stored)
                for index in range(item_count)]

    def shuffled(self, rng: random.Random) -> List[PairwiseIndependentHash]:
        """The hash functions in a random probe order.

        UMS probes replicas one by one; probing in random order makes the
        number of probes follow the geometric model of the paper's cost
        analysis (Section 3.3) even when stale replicas cluster on particular
        hash functions.
        """
        order = list(self._hashes)
        rng.shuffle(order)
        return order

    # -------------------------------------------------------------- delta sync
    def sync_replicas(self, network: DHTNetwork,
                      keys: Optional[Sequence[Any]] = None, *,
                      trace: Optional[OperationTrace] = None
                      ) -> ReplicaSyncReport:
        """One anti-entropy round over ``keys`` (default: every stored key).

        For each key the round inspects the replica stored at ``rsp(k, h)``
        for every ``h`` in ``Hr``, elects the newest copy under the store's
        reconciliation rule, and pushes it only to the holders whose copy
        fell behind — the holders' summaries (their timestamp/version tokens)
        are what travels in the other direction, so up-to-date replicas cost
        a few summary bytes instead of a data transfer.  Replicas diverged by
        churn, failures or ``unreachable`` writes converge to the newest
        committed copy; an already-consistent population ships nothing.

        The round draws no randomness and resolves responsibles directly from
        the overlay map, so interleaving it with seeded workloads keeps their
        RNG streams bit-identical.
        """
        if keys is None:
            discovered = {entry.key
                          for peer_id in network.alive_peer_ids()
                          for entry in network.peer(peer_id).store.values()}
            keys = sorted(discovered, key=repr)
        sizes = network.message_sizes
        shipped = applied = skipped = slots = 0
        summary_tokens = 0
        deliveries: Dict[int, int] = {}
        summary_holders: Dict[int, int] = {}
        for key in keys:
            replicas = []
            for hash_fn in self._hashes:
                responsible = network.responsible_peer(key, hash_fn)
                entry = network.peer(responsible).store.get(hash_fn.name, key)
                replicas.append((hash_fn, responsible, entry))
                slots += 1
                if entry is not None:
                    summary_tokens += 1
                    summary_holders[responsible] = \
                        summary_holders.get(responsible, 0) + 1
            newest = None
            for _hash_fn, _responsible, entry in replicas:
                if entry is not None and (newest is None
                                          or entry.is_newer_than(newest)):
                    newest = entry
            if newest is None:
                continue
            for hash_fn, responsible, entry in replicas:
                # The sender-side delta filter: ship only where the newest
                # copy advanced past the holder's token (equal BRK versions
                # are "not advanced", so a consistent population converges
                # to zero shipments instead of last-writer-wins churn).
                if entry is not None and not advanced_past(
                        newest, reconciliation_token(entry)):
                    skipped += 1
                    continue
                accepted = network.put(key, hash_fn, newest.data,
                                       timestamp=newest.timestamp,
                                       version=newest.version,
                                       origin=responsible)
                shipped += 1
                applied += int(accepted)
                deliveries[responsible] = deliveries.get(responsible, 0) + 1
        summary_bytes = sum(sizes.control_bytes
                            + SYNC_SUMMARY_ENTRY_BYTES * count
                            for count in summary_holders.values())
        delta_bytes = sum(sizes.control_bytes + sizes.data_bytes * count
                          for count in deliveries.values())
        full_bytes = sizes.data_bytes * slots
        messages = len(summary_holders) + len(deliveries)
        if trace is not None:
            for holder in sorted(summary_holders):
                trace.record(MessageKind.SYNC_SUMMARY, source=holder,
                             size_bytes=(sizes.control_bytes
                                         + SYNC_SUMMARY_ENTRY_BYTES
                                         * summary_holders[holder]))
            for dest in sorted(deliveries):
                trace.record(MessageKind.SYNC_DELTA, dest=dest,
                             size_bytes=(sizes.control_bytes
                                         + sizes.data_bytes * deliveries[dest]))
        network.stats.maintenance_messages += messages
        network.stats.sync_rounds += 1
        network.stats.sync_entries_shipped += shipped
        network.stats.handover_entries_skipped += skipped
        return ReplicaSyncReport(keys=len(keys), replica_slots=slots,
                                 entries_shipped=shipped,
                                 entries_applied=applied,
                                 entries_skipped=skipped,
                                 summary_bytes=summary_bytes,
                                 delta_bytes=delta_bytes,
                                 full_bytes=full_bytes, messages=messages)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReplicationScheme(factor={self.factor})"
