"""Replication scheme: the set ``Hr`` of replication hash functions (Section 3.1).

UMS replicates every pair ``(k, data)`` at ``rsp(k, h)`` for each ``h`` in a
set ``Hr`` of pairwise-independent hash functions.  The size of ``Hr`` is the
replication factor: the paper uses 10 by default and sweeps 5–40 in Figures 9
and 10.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence

from repro.core.errors import ReplicationConfigurationError
from repro.dht.hashing import HashFamily, PairwiseIndependentHash

__all__ = ["ReplicationScheme"]


class ReplicationScheme:
    """An ordered collection of replication hash functions ``Hr``."""

    def __init__(self, hashes: Sequence[PairwiseIndependentHash]) -> None:
        if not hashes:
            raise ReplicationConfigurationError("the replication scheme needs at least one hash function")
        names = [hash_fn.name for hash_fn in hashes]
        if len(set(names)) != len(names):
            raise ReplicationConfigurationError(f"duplicate hash function names in Hr: {names}")
        self._hashes: List[PairwiseIndependentHash] = list(hashes)

    # ------------------------------------------------------------ construction
    @classmethod
    def create(cls, count: int = 10, *, bits: int = 32, seed: Optional[int] = None,
               family: Optional[HashFamily] = None) -> "ReplicationScheme":
        """Sample ``count`` replication hash functions from a (new) family."""
        if count < 1:
            raise ReplicationConfigurationError(f"replication factor must be >= 1, got {count}")
        if family is None:
            family = HashFamily(bits=bits, seed=seed)
        return cls(family.sample_many(count, prefix="hr"))

    # ---------------------------------------------------------------- access
    @property
    def hashes(self) -> Sequence[PairwiseIndependentHash]:
        """The replication hash functions, in their canonical order."""
        return tuple(self._hashes)

    @property
    def names(self) -> List[str]:
        """The names of the replication hash functions."""
        return [hash_fn.name for hash_fn in self._hashes]

    @property
    def factor(self) -> int:
        """``|Hr|`` — the replication factor."""
        return len(self._hashes)

    def __len__(self) -> int:
        return len(self._hashes)

    def __iter__(self) -> Iterator[PairwiseIndependentHash]:
        return iter(self._hashes)

    def __getitem__(self, index: int) -> PairwiseIndependentHash:
        return self._hashes[index]

    # ------------------------------------------------------------ batched ops
    def replicated_requests(self, items: Sequence, stamps: Sequence) -> List[tuple]:
        """Expand ``(key, data)`` items into per-replica write requests.

        Lays the requests out item-major over ``Hr`` — the contract
        :meth:`fold_batch_acceptance` relies on — with ``stamps[i]`` providing
        the ``(timestamp, version)`` pair stamped on every replica of item
        ``i``.  This is the single place that encodes the batched-write
        request layout shared by the currency services.
        """
        requests: List[tuple] = []
        for (key, data), (timestamp, version) in zip(items, stamps):
            for hash_fn in self._hashes:
                requests.append((key, hash_fn, data, timestamp, version))
        return requests

    def fold_batch_acceptance(self, accepted: Sequence[bool],
                              item_count: int) -> List[int]:
        """Per-item acceptance counts for a :meth:`replicated_requests` batch.

        ``accepted`` is the flag list returned by ``DHTNetwork.put_many`` for
        a request list built by :meth:`replicated_requests`; item ``i``'s
        flags occupy the contiguous slice ``[i * factor, (i + 1) * factor)``.
        """
        factor = self.factor
        return [sum(1 for stored in accepted[index * factor:(index + 1) * factor]
                    if stored)
                for index in range(item_count)]

    def shuffled(self, rng: random.Random) -> List[PairwiseIndependentHash]:
        """The hash functions in a random probe order.

        UMS probes replicas one by one; probing in random order makes the
        number of probes follow the geometric model of the paper's cost
        analysis (Section 3.3) even when stale replicas cluster on particular
        hash functions.
        """
        order = list(self._hashes)
        rng.shuffle(order)
        return order

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReplicationScheme(factor={self.factor})"
