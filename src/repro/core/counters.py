"""Local counters and the Valid Counter Set (Section 4.1.2).

Each responsible of timestamping keeps one counter per key.  The counter's
``value`` is the last timestamp generated for the key (0 when none has been
generated).  The *Valid Counter Set* (VCS) holds the counters a peer may use;
the paper's three rules govern it:

1. a joining peer starts with an empty VCS;
2. a counter enters the VCS when it is initialised;
3. a counter leaves the VCS when the peer loses responsibility for its key.

Indirect initialisation (Section 4.2.2) reconstructs the counter from the
timestamps stored with the replicas.  Because the reconstruction may miss a
timestamp that was generated but not yet committed, such counters are marked
*inexact*: the value used for generation includes the paper's safety margin,
while ``last_known`` keeps the largest timestamp actually *observed* so that
``KTS.last_ts`` never reports a timestamp that no replica can carry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["KeyCounter", "ValidCounterSet"]


@dataclass
class KeyCounter:
    """The local counter ``c_{p,k}`` of one key at one peer.

    Attributes
    ----------
    key:
        The key the counter generates timestamps for.
    value:
        The last generated (or assumed-generated) timestamp value.  Generation
        increments it and returns the new value.
    exact:
        ``True`` when ``value`` is known to equal the last timestamp actually
        generated for the key (fresh counters, direct transfers, or counters
        that have generated locally).  ``False`` right after an indirect
        initialisation.
    last_known:
        The largest timestamp value known to have been *committed* to the DHT
        (what ``last_ts`` may safely report when the counter is not exact).
    """

    key: Any
    value: int = 0
    exact: bool = True
    last_known: Optional[int] = None

    def generate(self) -> int:
        """Generate the next timestamp value (Figure 4's ``c.value := c.value + 1``)."""
        self.value += 1
        self.exact = True
        self.last_known = self.value
        return self.value

    def last_generated(self) -> Optional[int]:
        """The value ``last_ts`` should report, or ``None`` when unknown/none."""
        if self.exact:
            return self.value if self.value > 0 else None
        return self.last_known

    def correct_to(self, value: int) -> bool:
        """Record that a timestamp of ``value`` is known to have been generated.

        Used by the recovery and periodic-inspection strategies (Section
        4.2.2): the counter is raised to at least ``value`` and ``value``
        becomes reportable by ``last_ts``.  Returns ``True`` when the counter
        state changed.
        """
        changed = False
        if value > self.value:
            self.value = value
            changed = True
        if self.last_known is None or value > self.last_known:
            self.last_known = value
            changed = True
        if value >= self.value:
            # The counter's current value now corresponds to a timestamp that
            # is known to have been generated.
            self.exact = True
        return changed

    def copy_for_transfer(self) -> "KeyCounter":
        """A copy handed to the next responsible by the direct algorithm."""
        return KeyCounter(key=self.key, value=self.value, exact=self.exact,
                          last_known=self.last_known)


class ValidCounterSet:
    """The VCS of one peer: the counters it may legitimately use."""

    def __init__(self) -> None:
        self._counters: Dict[Any, KeyCounter] = {}

    # ------------------------------------------------------------------ rules
    def clear(self) -> None:
        """Rule 1: a (re)joining peer starts with an empty VCS."""
        self._counters.clear()

    def add(self, counter: KeyCounter) -> KeyCounter:
        """Rule 2: insert an initialised counter (replacing any previous one)."""
        self._counters[counter.key] = counter
        return counter

    def remove(self, key: Any) -> Optional[KeyCounter]:
        """Rule 3: drop the counter when responsibility for ``key`` is lost."""
        return self._counters.pop(key, None)

    # ----------------------------------------------------------------- access
    def get(self, key: Any) -> Optional[KeyCounter]:
        """The counter for ``key`` if it is in the VCS."""
        return self._counters.get(key)

    def __contains__(self, key: Any) -> bool:
        return key in self._counters

    def __len__(self) -> int:
        return len(self._counters)

    def __iter__(self) -> Iterator[KeyCounter]:
        return iter(list(self._counters.values()))

    def keys(self) -> List[Any]:
        """Keys that currently have a valid counter at this peer."""
        return list(self._counters.keys())

    def counters(self) -> List[KeyCounter]:
        """Snapshot of the counters in the VCS."""
        return list(self._counters.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ValidCounterSet(keys={len(self._counters)})"
