"""Core services: the paper's primary contribution (UMS, KTS) and the BRK baseline.

The caller-facing surface of the library lives one layer up, in
:mod:`repro.api`: ``Cluster.build(...)`` wires a network, a replication
scheme, KTS and a registered currency service together and hands out
``Session`` handles.  This module keeps the historical
:func:`build_service_stack` helper (now a thin wrapper over the cluster
builder) for callers that want direct access to the service objects:

>>> from repro.core import build_service_stack
>>> stack = build_service_stack(num_peers=32, num_replicas=8, seed=42)
>>> stack.ums.insert("meeting-room", {"slot": "09:00", "owner": "alice"})   # doctest: +ELLIPSIS
InsertResult(...)
>>> stack.ums.retrieve("meeting-room").is_current
True

``InsertResult``/``RetrieveResult`` are the shared result types of
:mod:`repro.api.results`; the historical ``BricksInsertResult``/
``BricksRetrieveResult`` names are deprecated aliases of the same types.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

# reprolint: allow[REP005] reason=shared result types deliberately live in repro.api so sim and service stacks return identical objects (tests/api/test_shared_results.py)
from repro.api.results import Consistency, InsertResult, RetrieveResult
from repro.core.analysis import (
    expected_probes,
    expected_retrievals,
    expected_retrievals_upper_bound,
    geometric_probe_distribution,
    indirect_success_probability,
    replicas_needed_for_success,
    retrieval_bound,
)
from repro.core.audit import AuditReport, KeyAudit, ReplicaStatus, audit_key, audit_keys
from repro.core.baseline import BricksService
from repro.core.counters import KeyCounter, ValidCounterSet
from repro.core.errors import (
    IncomparableTimestampsError,
    NoReplicaFoundError,
    ReplicationConfigurationError,
    ServiceError,
)
from repro.core.kts import CounterInitialization, KeyBasedTimestampService, KtsStats
from repro.core.replication import ReplicationScheme
from repro.core.timestamps import Timestamp
from repro.core.ums import UpdateManagementService
from repro.dht.network import DHTNetwork

__all__ = [
    "AuditReport",
    "BricksInsertResult",
    "BricksRetrieveResult",
    "BricksService",
    "Consistency",
    "CounterInitialization",
    "IncomparableTimestampsError",
    "InsertResult",
    "KeyAudit",
    "KeyBasedTimestampService",
    "KeyCounter",
    "KtsStats",
    "ReplicaStatus",
    "NoReplicaFoundError",
    "ReplicationConfigurationError",
    "ReplicationScheme",
    "RetrieveResult",
    "ServiceError",
    "ServiceStack",
    "Timestamp",
    "UpdateManagementService",
    "ValidCounterSet",
    "audit_key",
    "audit_keys",
    "build_service_stack",
    "expected_probes",
    "expected_retrievals",
    "expected_retrievals_upper_bound",
    "geometric_probe_distribution",
    "indirect_success_probability",
    "replicas_needed_for_success",
    "retrieval_bound",
]


def __getattr__(name: str):
    """Forward the deprecated BRK result-type aliases (with their warning).

    The warning is emitted here (not delegated to :mod:`repro.core.baseline`)
    so it is attributed to the caller's import site rather than to this
    forwarding frame.
    """
    from repro.core import baseline

    alias = baseline._DEPRECATED_ALIASES.get(name)
    if alias is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import warnings

    warnings.warn(
        f"{name} is deprecated; BRK returns the shared repro.api.results."
        f"{alias.__name__} type since the unified client API. The shared "
        "type's field order differs from the legacy one — construct it with "
        "keyword arguments",
        DeprecationWarning, stacklevel=2)
    return alias


@dataclass
class ServiceStack:
    """A fully wired substrate: network + replication + KTS + UMS + BRK baseline.

    ``cluster`` is the :class:`repro.api.Cluster` that owns the wiring; use it
    to open :class:`repro.api.Session` handles or resolve further registered
    services.
    """

    network: DHTNetwork
    replication: ReplicationScheme
    kts: KeyBasedTimestampService
    ums: UpdateManagementService
    brk: BricksService
    cluster: object = field(default=None, repr=False)


def build_service_stack(num_peers: int = 64, *, num_replicas: int = 10,
                        protocol: str = "chord", bits: int = 32,
                        initialization: str = CounterInitialization.DIRECT,
                        probe_order: str = "random",
                        stabilization_interval: float = 30.0,
                        track_responsibility: bool = False,
                        seed: Optional[int] = None) -> ServiceStack:
    """Build a ready-to-use replicated DHT with UMS/KTS (and the BRK baseline).

    A thin wrapper over :meth:`repro.api.Cluster.build` (the single
    construction path of the client API) kept for direct access to the
    service objects.  Parameters mirror the paper's experimental knobs: the
    number of peers, the replication factor ``|Hr|``, the overlay protocol
    and the KTS counter initialisation mode.  A fixed ``seed`` makes the
    whole stack (hash functions, peer identifiers, probe order) reproducible
    — and reproduces the exact same stack as ``Cluster.build`` with the same
    seed.
    """
    # reprolint: allow[REP005] reason=lazy factory shim kept for backwards compatibility; delegates upward at call time only (tests/core/test_service_stack.py)
    from repro.api.cluster import Cluster

    cluster = Cluster.build(num_peers, protocol=protocol, service="ums",
                            replicas=num_replicas, bits=bits,
                            initialization=initialization,
                            probe_order=probe_order,
                            stabilization_interval=stabilization_interval,
                            track_responsibility=track_responsibility,
                            rng=random.Random(seed))
    return ServiceStack(network=cluster.network, replication=cluster.replication,
                        kts=cluster.kts, ums=cluster.service("ums"),
                        brk=cluster.service("brk"), cluster=cluster)
