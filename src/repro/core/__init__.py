"""Core services: the paper's primary contribution (UMS, KTS) and the BRK baseline.

The quickest way to get a working replicated DHT with current-replica
retrieval is :func:`build_service_stack`, which wires a network, a replication
scheme, KTS and UMS (plus the BRK baseline for comparisons) together:

>>> from repro.core import build_service_stack
>>> stack = build_service_stack(num_peers=32, num_replicas=8, seed=42)
>>> stack.ums.insert("meeting-room", {"slot": "09:00", "owner": "alice"})   # doctest: +ELLIPSIS
InsertResult(...)
>>> stack.ums.retrieve("meeting-room").is_current
True
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.analysis import (
    expected_probes,
    expected_retrievals,
    expected_retrievals_upper_bound,
    geometric_probe_distribution,
    indirect_success_probability,
    replicas_needed_for_success,
    retrieval_bound,
)
from repro.core.audit import AuditReport, KeyAudit, ReplicaStatus, audit_key, audit_keys
from repro.core.baseline import BricksInsertResult, BricksRetrieveResult, BricksService
from repro.core.counters import KeyCounter, ValidCounterSet
from repro.core.errors import (
    IncomparableTimestampsError,
    NoReplicaFoundError,
    ReplicationConfigurationError,
    ServiceError,
)
from repro.core.kts import CounterInitialization, KeyBasedTimestampService, KtsStats
from repro.core.replication import ReplicationScheme
from repro.core.timestamps import Timestamp
from repro.core.ums import InsertResult, RetrieveResult, UpdateManagementService
from repro.dht.hashing import HashFamily
from repro.dht.network import DHTNetwork

__all__ = [
    "AuditReport",
    "BricksInsertResult",
    "BricksRetrieveResult",
    "BricksService",
    "CounterInitialization",
    "IncomparableTimestampsError",
    "InsertResult",
    "KeyAudit",
    "KeyBasedTimestampService",
    "KeyCounter",
    "KtsStats",
    "ReplicaStatus",
    "NoReplicaFoundError",
    "ReplicationConfigurationError",
    "ReplicationScheme",
    "RetrieveResult",
    "ServiceError",
    "ServiceStack",
    "Timestamp",
    "UpdateManagementService",
    "ValidCounterSet",
    "audit_key",
    "audit_keys",
    "build_service_stack",
    "expected_probes",
    "expected_retrievals",
    "expected_retrievals_upper_bound",
    "geometric_probe_distribution",
    "indirect_success_probability",
    "replicas_needed_for_success",
    "retrieval_bound",
]


@dataclass
class ServiceStack:
    """A fully wired substrate: network + replication + KTS + UMS + BRK baseline."""

    network: DHTNetwork
    replication: ReplicationScheme
    kts: KeyBasedTimestampService
    ums: UpdateManagementService
    brk: BricksService


def build_service_stack(num_peers: int = 64, *, num_replicas: int = 10,
                        protocol: str = "chord", bits: int = 32,
                        initialization: str = CounterInitialization.DIRECT,
                        probe_order: str = "random",
                        stabilization_interval: float = 30.0,
                        track_responsibility: bool = False,
                        seed: Optional[int] = None) -> ServiceStack:
    """Build a ready-to-use replicated DHT with UMS/KTS (and the BRK baseline).

    Parameters mirror the paper's experimental knobs: the number of peers, the
    replication factor ``|Hr|``, the overlay protocol and the KTS counter
    initialisation mode.  A fixed ``seed`` makes the whole stack (hash
    functions, peer identifiers, probe order) reproducible.
    """
    master = random.Random(seed)
    network = DHTNetwork.build(num_peers, protocol=protocol, bits=bits,
                               stabilization_interval=stabilization_interval,
                               seed=master.getrandbits(64),
                               track_responsibility=track_responsibility)
    family = HashFamily(bits=bits, seed=master.getrandbits(64))
    replication = ReplicationScheme(family.sample_many(num_replicas, prefix="hr"))
    kts = KeyBasedTimestampService(network, replication,
                                   ts_hash=family.sample("h-ts"),
                                   initialization=initialization,
                                   seed=master.getrandbits(64))
    ums = UpdateManagementService(network, kts, replication, probe_order=probe_order,
                                  seed=master.getrandbits(64))
    brk = BricksService(network, replication, seed=master.getrandbits(64))
    return ServiceStack(network=network, replication=replication, kts=kts,
                        ums=ums, brk=brk)
