"""Probabilistic cost analysis of UMS (Section 3.3) and of the indirect
initialisation algorithm (Section 4.2.2).

The central quantity is ``pt``, the *probability of currency and availability*
at retrieval time: the fraction of replication hash functions whose current
responsible holds a replica that is both available and current.  The paper
derives:

* Equation 1 — the expected number of replicas UMS retrieves for a finite
  replica set ``Hr``;
* Equation 4 / Theorem 1 — the bound ``E[X] < 1/pt``;
* Equation 5 — ``E[X] ≤ min(1/pt, |Hr|)``;
* ``ps = 1 − (1 − pt)^|Hr|`` — the success probability of the indirect
  counter-initialisation algorithm.

These functions are used by the analysis benchmarks (which compare the theory
with the empirical behaviour of :class:`~repro.core.ums.UpdateManagementService`)
and by the examples.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "expected_retrievals",
    "expected_retrievals_upper_bound",
    "expected_probes",
    "geometric_probe_distribution",
    "indirect_success_probability",
    "replicas_needed_for_success",
    "retrieval_bound",
]


def _validate_probability(pt: float) -> None:
    if not 0.0 <= pt <= 1.0:
        raise ValueError(f"pt must be a probability in [0, 1], got {pt}")


def _validate_replicas(num_replicas: int) -> None:
    if num_replicas < 1:
        raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")


def geometric_probe_distribution(pt: float, probe_index: int) -> float:
    """``Prob(X = i)``: the first current replica is found at probe ``i`` (1-based).

    This is the geometric law the paper uses: ``pt · (1 − pt)^(i−1)``.
    """
    _validate_probability(pt)
    if probe_index < 1:
        raise ValueError(f"probe_index must be >= 1, got {probe_index}")
    return pt * (1.0 - pt) ** (probe_index - 1)


def expected_retrievals(pt: float, num_replicas: Optional[int] = None) -> float:
    """Equation 1 (finite sum) or Equation 2 (infinite sum when ``num_replicas`` is ``None``).

    Note this is the paper's quantity: the expectation is taken over the event
    "a current replica is found at probe i"; runs in which no current replica
    exists contribute zero.  See :func:`expected_probes` for the operational
    expected number of ``get`` calls UMS performs.
    """
    _validate_probability(pt)
    if pt == 0.0:
        return 0.0
    if num_replicas is None:
        # Closed form of the infinite series: sum i*pt*(1-pt)^(i-1) = 1/pt.
        return 1.0 / pt
    _validate_replicas(num_replicas)
    return sum(index * geometric_probe_distribution(pt, index)
               for index in range(1, num_replicas + 1))


def expected_retrievals_upper_bound(pt: float) -> float:
    """Theorem 1: ``E[X] < 1/pt`` (infinite for ``pt = 0``)."""
    _validate_probability(pt)
    if pt == 0.0:
        return float("inf")
    return 1.0 / pt


def retrieval_bound(pt: float, num_replicas: int) -> float:
    """Equation 5: ``E[X] ≤ min(1/pt, |Hr|)``."""
    _validate_probability(pt)
    _validate_replicas(num_replicas)
    if pt == 0.0:
        return float(num_replicas)
    return min(1.0 / pt, float(num_replicas))


def expected_probes(pt: float, num_replicas: int) -> float:
    """Operational expectation of the number of ``get_h`` calls per retrieve.

    UMS probes until it finds a current replica or exhausts ``Hr``; when no
    probe succeeds it has still performed ``|Hr|`` gets.  This refines the
    paper's Equation 1 (which ignores the unsuccessful case) and is what the
    empirical benchmarks measure.
    """
    _validate_probability(pt)
    _validate_replicas(num_replicas)
    if pt == 0.0:
        return float(num_replicas)
    expectation = sum(index * geometric_probe_distribution(pt, index)
                      for index in range(1, num_replicas + 1))
    expectation += num_replicas * (1.0 - pt) ** num_replicas
    return expectation


def indirect_success_probability(pt: float, num_replicas: int) -> float:
    """``ps = 1 − (1 − pt)^|Hr|``: the indirect algorithm finds the latest timestamp."""
    _validate_probability(pt)
    _validate_replicas(num_replicas)
    return 1.0 - (1.0 - pt) ** num_replicas


def replicas_needed_for_success(pt: float, target_probability: float) -> int:
    """Smallest ``|Hr|`` such that ``ps >= target_probability``.

    The paper's example: with ``pt = 0.30``, 13 replication hash functions give
    ``ps > 99 %``.
    """
    _validate_probability(pt)
    if not 0.0 < target_probability < 1.0:
        raise ValueError("target_probability must be in (0, 1)")
    if pt == 0.0:
        raise ValueError("no number of replicas can succeed when pt is 0")
    count = 1
    while indirect_success_probability(pt, count) < target_probability:
        count += 1
        if count > 10_000:  # pragma: no cover - defensive
            raise RuntimeError("replica count search did not converge")
    return count


def empirical_expected_probes(observations: Iterable[int]) -> float:
    """Mean of observed probe counts (used to compare simulation with theory)."""
    values = list(observations)
    if not values:
        return 0.0
    return sum(values) / len(values)


def theory_table(pt_values: Sequence[float], num_replicas: int) -> List[Dict[str, float]]:
    """Rows of the Theorem-1 table: pt, E[X], the 1/pt bound and min(1/pt, |Hr|)."""
    rows: List[Dict[str, float]] = []
    for pt in pt_values:
        rows.append({
            "pt": pt,
            "expected_retrievals": expected_retrievals(pt, num_replicas),
            "expected_probes": expected_probes(pt, num_replicas),
            "upper_bound": expected_retrievals_upper_bound(pt),
            "bounded": retrieval_bound(pt, num_replicas),
            "indirect_success": indirect_success_probability(pt, num_replicas),
        })
    return rows
