"""Exception hierarchy for the UMS / KTS / BRK services."""


class ServiceError(Exception):
    """Base class for errors raised by the update-management services."""


class IncomparableTimestampsError(ServiceError):
    """Timestamps generated for *different* keys were compared.

    The paper's KTS only guarantees a total order among the timestamps of a
    single key (Definition 2); comparing across keys is a programming error.
    """

    def __init__(self, first_key, second_key):
        super().__init__(
            f"timestamps for different keys are not comparable: {first_key!r} vs {second_key!r}")
        self.first_key = first_key
        self.second_key = second_key


class NoReplicaFoundError(ServiceError):
    """A retrieve found no replica of the requested key at all."""

    def __init__(self, key):
        super().__init__(f"no replica of key {key!r} is available in the DHT")
        self.key = key


class ReplicationConfigurationError(ServiceError):
    """The replication scheme is malformed (empty, duplicate names, ...)."""
