"""KTS — the Key-based Timestamping Service (Section 4).

KTS generates monotonically increasing timestamps per key, in a completely
distributed fashion: the peer responsible for timestamping key ``k`` is
``rsp(k, h_ts)`` for a dedicated hash function ``h_ts``, and it serves
timestamp requests from a local counter kept in its Valid Counter Set.

The service implements the full design of the paper:

* ``gen_ts(k)`` / ``last_ts(k)`` (Sections 3.1 and 4.1) routed through the
  DHT's lookup service, with message accounting;
* counter initialisation by the **direct** algorithm (counters are transferred
  to the next responsible when a peer leaves normally or is displaced by a
  join — O(1) messages, Section 4.2.1) and by the **indirect** algorithm
  (the new responsible reconstructs the counter from the timestamps stored
  with the replicas — ``O(|Hr|·c_ret)`` messages, Section 4.2.2);
* the VCS rules for joins, leaves and failures, including the RLU variant in
  which a responsible forgets its counter after every generation (Section 4.3);
* the **recovery** and **periodic inspection** strategies that repair counters
  the indirect algorithm may have initialised too low (Section 4.2.2).

The service observes the network's membership events, so simply constructing
it and running churn on the network keeps the counters placed correctly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.counters import KeyCounter, ValidCounterSet
from repro.core.replication import ReplicationScheme
from repro.core.timestamps import Timestamp
from repro.dht.hashing import HashFamily, PairwiseIndependentHash
from repro.dht.messages import MessageKind, OperationTrace
from repro.dht.network import DHTNetwork, NetworkObserver

__all__ = ["CounterInitialization", "KeyBasedTimestampService", "KtsStats"]


class CounterInitialization:
    """How counters travel across responsibility changes."""

    #: transfer counters to the next responsible on normal leaves and joins
    DIRECT = "direct"
    #: never transfer; the new responsible reconstructs counters from replicas
    INDIRECT = "indirect"


@dataclass
class KtsStats:
    """Operation counters kept by the service (used by tests and experiments)."""

    timestamps_generated: int = 0
    last_ts_requests: int = 0
    direct_transfers: int = 0
    indirect_initializations: int = 0
    fresh_counters: int = 0
    corrections: int = 0
    maintenance_messages: int = 0


@dataclass
class _PeerTimestampState:
    """Per-peer KTS state: the peer's Valid Counter Set."""

    vcs: ValidCounterSet = field(default_factory=ValidCounterSet)


class KeyBasedTimestampService(NetworkObserver):
    """Distributed per-key timestamp generation over a :class:`DHTNetwork`.

    Parameters
    ----------
    network:
        The DHT network hosting the peers.
    replication:
        The replication scheme ``Hr``; needed by the indirect initialisation
        algorithm, which reads the timestamps stored with the replicas.
    ts_hash:
        The hash function ``h_ts`` designating responsibles of timestamping.
        When omitted, one is sampled from a dedicated family seeded by ``seed``.
    initialization:
        :data:`CounterInitialization.DIRECT` (default) or ``INDIRECT``.
        Direct matches the paper's UMS-Direct configuration; even then, a
        counter lost to a *failure* is re-created with the indirect algorithm.
    dht_is_rla:
        Whether the underlying DHT is Responsibility Loss Aware (Section 4.3).
        When ``False`` the service applies the paper's RLU counter-measure:
        a responsible drops its counter after every generation.
    indirect_safety_margin:
        The paper initialises an indirect counter to ``ts_m + 1`` to leave room
        for a timestamp that was generated but not yet committed; this is that
        margin (set to 0 to initialise exactly at the highest observed value).
    """

    def __init__(self, network: DHTNetwork, replication: ReplicationScheme, *,
                 ts_hash: Optional[PairwiseIndependentHash] = None,
                 initialization: str = CounterInitialization.DIRECT,
                 dht_is_rla: bool = True,
                 indirect_safety_margin: int = 1,
                 seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        if initialization not in (CounterInitialization.DIRECT, CounterInitialization.INDIRECT):
            raise ValueError(f"unknown initialization mode {initialization!r}")
        if indirect_safety_margin < 0:
            raise ValueError("indirect_safety_margin must be >= 0")
        self.network = network
        self.replication = replication
        self.initialization = initialization
        self.dht_is_rla = dht_is_rla
        self.indirect_safety_margin = indirect_safety_margin
        self.rng = rng if rng is not None else random.Random(seed)
        if ts_hash is None:
            family = HashFamily(bits=network.bits, seed=self.rng.getrandbits(64))
            ts_hash = family.sample("h-ts")
        self.ts_hash = ts_hash
        self.stats = KtsStats()
        self._states: Dict[int, _PeerTimestampState] = {}
        self._reply_interceptor: Optional[Callable[[int, Any, Optional[int]],
                                                   Optional[int]]] = None
        network.add_observer(self)

    # ------------------------------------------------------- adversarial seam
    @property
    def reply_interceptor(self) -> Optional[Callable[[int, Any, Optional[int]],
                                                     Optional[int]]]:
        """The installed ``last_ts`` reply interceptor, or ``None`` (honest)."""
        return self._reply_interceptor

    def set_reply_interceptor(
            self, interceptor: Optional[Callable[[int, Any, Optional[int]],
                                                 Optional[int]]]) -> None:
        """Install (or, with ``None``, remove) a ``last_ts`` reply filter.

        The interceptor is called as ``interceptor(responsible, key, value)``
        after the true last-generated value is computed, and its return value
        is what the caller sees — a *value-only* seam used by the byzantine
        fault profiles of :mod:`repro.simulation.adversary` to model
        responsibles that lie about a key's currency.  Interception never
        changes routing, message accounting or any RNG stream (the honest
        counters are untouched), so runs with an inert interceptor stay
        bit-identical to uninstrumented ones.  ``gen_ts`` is deliberately
        not interceptable: the modelled attack targets the retrieval-side
        currency check, not timestamp generation.
        """
        self._reply_interceptor = interceptor

    # ------------------------------------------------------------------ lookup
    def responsible_of_timestamping(self, key: Any) -> int:
        """``rsp(k, h_ts)``: the current responsible of timestamping for ``key``."""
        return self.network.responsible_peer(key, self.ts_hash)

    def peer_state(self, peer_id: int) -> _PeerTimestampState:
        """The KTS state (VCS) of a peer, created lazily (Rule 1: empty)."""
        state = self._states.get(peer_id)
        if state is None:
            state = _PeerTimestampState()
            self._states[peer_id] = state
        return state

    def counters_at(self, peer_id: int) -> List[KeyCounter]:
        """Snapshot of the counters currently valid at ``peer_id``."""
        return self.peer_state(peer_id).vcs.counters()

    # ------------------------------------------------------------- main ops
    def gen_ts(self, key: Any, *, origin: Optional[int] = None,
               trace: Optional[OperationTrace] = None) -> Timestamp:
        """Generate a new timestamp for ``key`` (Figure 4).

        Routes a timestamp request to ``rsp(k, h_ts)``; the responsible
        initialises its counter if needed (Rule 2) and returns the incremented
        value.
        """
        responsible = self._locate_responsible(key, origin, trace,
                                               MessageKind.TSR, MessageKind.TSR_REPLY)
        counter = self._counter_for(responsible, key, trace)
        value = counter.generate()
        self.stats.timestamps_generated += 1
        if not self.dht_is_rla:
            # RLU counter-measure: assume responsibility may have been lost,
            # so the counter must be re-initialised before the next generation.
            self.peer_state(responsible).vcs.remove(key)
        return Timestamp(key=key, value=value)

    def last_ts(self, key: Any, *, origin: Optional[int] = None,
                trace: Optional[OperationTrace] = None) -> Optional[Timestamp]:
        """The last timestamp generated for ``key``, or ``None`` if none is known."""
        responsible = self._locate_responsible(key, origin, trace,
                                               MessageKind.LAST_TS_REQUEST,
                                               MessageKind.LAST_TS_REPLY)
        counter = self._counter_for(responsible, key, trace)
        self.stats.last_ts_requests += 1
        value = counter.last_generated()
        if self._reply_interceptor is not None:
            value = self._reply_interceptor(responsible, key, value)
        if value is None:
            return None
        return Timestamp(key=key, value=value)

    # ------------------------------------------------------------- batched ops
    def gen_ts_many(self, keys: List[Any], *, origin: Optional[int] = None,
                    trace: Optional[OperationTrace] = None) -> List[Timestamp]:
        """Generate one timestamp per *occurrence* in ``keys``, amortising routing.

        Keys whose responsible of timestamping coincide share a single routed
        request/reply exchange (one TSR carrying every key), instead of one
        lookup + TSR per key.  Semantically identical to calling
        :meth:`gen_ts` once per list element — a key appearing twice receives
        two distinct, increasing timestamps — only the message accounting is
        amortised.  Returns the timestamps aligned with the input order.
        """
        grouped = self._grouped_by_responsible(keys)
        out: List[Optional[Timestamp]] = [None] * len(keys)
        for responsible, indices in grouped.items():
            self._record_batched_exchange(keys[indices[0]], origin, trace,
                                          MessageKind.TSR, MessageKind.TSR_REPLY)
            for index in indices:
                key = keys[index]
                counter = self._counter_for(responsible, key, trace)
                out[index] = Timestamp(key=key, value=counter.generate())
                self.stats.timestamps_generated += 1
                if not self.dht_is_rla:
                    self.peer_state(responsible).vcs.remove(key)
        return out

    def last_ts_many(self, keys: List[Any], *, origin: Optional[int] = None,
                     trace: Optional[OperationTrace] = None
                     ) -> Dict[Any, Optional[Timestamp]]:
        """Batched :meth:`last_ts`: one routed exchange per distinct responsible.

        This is the KTS half of the ``retrieve_many`` amortisation: a batch of
        N keys usually maps to far fewer than N responsibles of timestamping,
        so the ``last_ts`` lookups collapse accordingly.
        """
        grouped = self._grouped_by_responsible(keys)
        out: Dict[Any, Optional[Timestamp]] = {}
        for responsible, indices in grouped.items():
            self._record_batched_exchange(keys[indices[0]], origin, trace,
                                          MessageKind.LAST_TS_REQUEST,
                                          MessageKind.LAST_TS_REPLY)
            for index in indices:
                key = keys[index]
                if key in out:
                    continue
                counter = self._counter_for(responsible, key, trace)
                self.stats.last_ts_requests += 1
                value = counter.last_generated()
                if self._reply_interceptor is not None:
                    value = self._reply_interceptor(responsible, key, value)
                out[key] = None if value is None else Timestamp(key=key, value=value)
        return out

    def _grouped_by_responsible(self, keys: List[Any]) -> Dict[int, List[int]]:
        """Input indices grouped by the key's responsible of timestamping."""
        grouped: Dict[int, List[int]] = {}
        for index, key in enumerate(keys):
            grouped.setdefault(self.responsible_of_timestamping(key), []).append(index)
        return grouped

    def _record_batched_exchange(self, representative_key: Any,
                                 origin: Optional[int],
                                 trace: Optional[OperationTrace],
                                 request_kind: MessageKind,
                                 reply_kind: MessageKind) -> None:
        """Route once to the key's responsible and record one batched request/reply."""
        lookup = self.network.lookup(representative_key, self.ts_hash,
                                     origin=origin, trace=trace)
        if trace is not None:
            trace.record_request_reply(request_kind, reply_kind,
                                       dest=lookup.responsible)

    def _locate_responsible(self, key: Any, origin: Optional[int],
                            trace: Optional[OperationTrace],
                            request_kind: MessageKind,
                            reply_kind: MessageKind) -> int:
        lookup = self.network.lookup(key, self.ts_hash, origin=origin, trace=trace)
        if trace is not None:
            trace.record_request_reply(request_kind, reply_kind, dest=lookup.responsible)
        return lookup.responsible

    # --------------------------------------------------------- counter handling
    def _counter_for(self, responsible: int, key: Any,
                     trace: Optional[OperationTrace]) -> KeyCounter:
        vcs = self.peer_state(responsible).vcs
        counter = vcs.get(key)
        if counter is not None:
            return counter
        counter = self._initialize_counter(responsible, key, trace)
        vcs.add(counter)
        return counter

    def _initialize_counter(self, responsible: int, key: Any,
                            trace: Optional[OperationTrace]) -> KeyCounter:
        """Create the counter for ``key`` at ``responsible``.

        When the key has replicas in the DHT, this is the paper's indirect
        algorithm (Figure 5): read every replica, keep the most recent
        timestamp ``ts_m`` and start the counter at ``ts_m + margin``.  When
        nothing is stored yet, the counter simply starts at zero.
        """
        observed = self._max_stored_timestamp(responsible, key, trace)
        if observed is None:
            self.stats.fresh_counters += 1
            return KeyCounter(key=key, value=0, exact=True, last_known=None)
        self.stats.indirect_initializations += 1
        return KeyCounter(key=key, value=observed + self.indirect_safety_margin,
                          exact=False, last_known=observed)

    def _max_stored_timestamp(self, responsible: int, key: Any,
                              trace: Optional[OperationTrace]) -> Optional[int]:
        """Highest timestamp stored with ``key``'s replicas (``ts_m``), if any."""
        best: Optional[int] = None
        for hash_fn in self.replication:
            entry = self.network.get(key, hash_fn, origin=responsible, trace=trace)
            if entry is None or entry.timestamp is None:
                continue
            value = entry.timestamp.value
            if best is None or value > best:
                best = value
        return best

    # ----------------------------------------------------- membership observer
    def peer_joined(self, network: DHTNetwork, peer_id: int,
                    affected: set) -> None:
        """A join displaced part of the key space (Rule 3 + direct transfer)."""
        self.peer_state(peer_id).vcs.clear()  # Rule 1
        for previous_owner in affected:
            self._transfer_displaced_counters(previous_owner, peer_id)

    def peer_left(self, network: DHTNetwork, peer_id: int) -> None:
        """A normal leave: direct transfer of the leaver's counters (Section 4.2.1)."""
        state = self._states.pop(peer_id, None)
        if state is None or not self.network.size:
            return
        transferred = 0
        for counter in state.vcs.counters():
            new_responsible = self.responsible_of_timestamping(counter.key)
            if self.initialization == CounterInitialization.DIRECT:
                self.peer_state(new_responsible).vcs.add(counter.copy_for_transfer())
                transferred += 1
        if transferred:
            self.stats.direct_transfers += transferred
            self.stats.maintenance_messages += 1  # one batched transfer message

    def peer_failed(self, network: DHTNetwork, peer_id: int) -> None:
        """A failure: the peer's counters are lost (indirect init will rebuild them)."""
        self._states.pop(peer_id, None)

    def _transfer_displaced_counters(self, previous_owner: int, new_owner: int) -> None:
        previous_state = self._states.get(previous_owner)
        if previous_state is None:
            return
        transferred = 0
        for counter in previous_state.vcs.counters():
            if self.responsible_of_timestamping(counter.key) != new_owner:
                continue
            # Rule 3: the previous owner lost responsibility for this key.
            previous_state.vcs.remove(counter.key)
            if self.initialization == CounterInitialization.DIRECT:
                self.peer_state(new_owner).vcs.add(counter.copy_for_transfer())
                transferred += 1
        if transferred:
            self.stats.direct_transfers += transferred
            self.stats.maintenance_messages += 1

    # -------------------------------------------------- repair strategies (4.2.2)
    def recover(self, key: Any, reported_value: int, *,
                trace: Optional[OperationTrace] = None) -> bool:
        """Recovery strategy: a restarted responsible reports its old counter.

        The *current* responsible of timestamping compares the reported value
        with its own counter and corrects it if the reported one is higher.
        Returns ``True`` when a correction was applied.
        """
        responsible = self.responsible_of_timestamping(key)
        counter = self._counter_for(responsible, key, trace)
        corrected = counter.correct_to(reported_value)
        if corrected:
            self.stats.corrections += 1
        return corrected

    def inspect_counters(self, peer_id: Optional[int] = None, *,
                         trace: Optional[OperationTrace] = None) -> int:
        """Periodic inspection: compare local counters with stored timestamps.

        For every counter in the VCS of ``peer_id`` (or of every peer when
        omitted), read the replicas of the key and raise the counter if a
        higher timestamp is found in the DHT.  Returns the number of
        corrections applied.
        """
        peer_ids = [peer_id] if peer_id is not None else list(self._states.keys())
        corrections = 0
        for current_peer in peer_ids:
            state = self._states.get(current_peer)
            if state is None or not self.network.is_alive(current_peer):
                continue
            for counter in state.vcs.counters():
                observed = self._max_stored_timestamp(current_peer, counter.key, trace)
                if observed is not None and counter.correct_to(observed):
                    corrections += 1
        if corrections:
            self.stats.corrections += corrections
        return corrections

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"KeyBasedTimestampService(initialization={self.initialization!r}, "
                f"generated={self.stats.timestamps_generated})")
