"""Timestamp cross-check detection for the UMS retrieval path.

The paper's retrieval (Figure 2) trusts the responsible of timestamping: the
``last_ts`` reply is taken as the truth the probed replicas are compared
against.  A byzantine responsible can therefore freeze a key's visible
currency by replaying an old value (see
:mod:`repro.simulation.adversary`).  The cross-check exploits the one
invariant an adversary answering *below* the truth cannot fake: **no replica
can carry a timestamp newer than the KTS counter that generated it**, so a
probed replica stamped beyond the claimed ``last_ts`` proves the claim was a
lie (or, beyond an explicit ``window``, that the counter regressed — which
the paper's recovery rules exclude).

:class:`CrossCheckDetector` is deliberately passive instrumentation: the UMS
hands it the claimed value and the timestamp values it observed while
probing replicas it was contacting *anyway* — the detector sends no
messages, draws no randomness and never changes a retrieval's outcome, so
attaching one keeps seeded runs bit-identical to undetected twins.  Flags
surface as the ``detected_lies`` / ``undetected_stale_rate`` metrics of
:class:`repro.simulation.results.RunResult`.

The asymmetry matters: a claim *ahead* of every observed replica is the
paper's legitimate staleness phenomenon (the current replicas were simply
not probed, or were lost) and is never flagged — only claim-behind
divergence is provable from one retrieval's evidence.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["CrossCheckDetector"]


class CrossCheckDetector:
    """Flags ``last_ts`` claims that provably trail the probed replicas.

    Parameters
    ----------
    window:
        Tolerated claim-behind divergence (in timestamp increments) before a
        retrieval is flagged.  The default ``0`` is sound under the paper's
        recovery rules (an indirect counter re-initialises at or above the
        highest observed replica timestamp), which is what the zero-false-
        positive property in ``tests/adversary/test_detector.py`` pins
        across the honest scenario registry.
    """

    def __init__(self, window: int = 0) -> None:
        if window < 0:
            raise ValueError("window must be >= 0")
        self.window = window
        #: Number of retrievals cross-checked (claims with >= 1 observation).
        self.checks = 0
        #: One record per flagged retrieval, in detection order.
        self.flags: List[Dict[str, Any]] = []

    def observe(self, key: Any, claimed: Optional[int],
                observed: Sequence[int]) -> bool:
        """Cross-check one retrieval; returns whether it was flagged.

        ``claimed`` is the ``last_ts`` reply value (``None`` when the
        responsible claimed no timestamp was ever generated) and
        ``observed`` the timestamp values seen on the probed replicas.
        With no observations there is no evidence and nothing to check.
        """
        if not observed:
            return False
        self.checks += 1
        # A "no timestamp was ever generated" claim is contradicted by any
        # stamped replica, exactly like a claim of 0.
        claim = claimed if claimed is not None else 0
        divergence = max(observed) - claim
        if divergence <= self.window:
            return False
        self.flags.append({"key": key, "claimed": claimed,
                           "observed_max": max(observed),
                           "divergence": divergence})
        return True

    @property
    def flag_count(self) -> int:
        """Number of flagged retrievals so far."""
        return len(self.flags)

    def reset(self) -> None:
        """Clear all recorded checks and flags."""
        self.checks = 0
        self.flags = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CrossCheckDetector(window={self.window}, "
                f"checks={self.checks}, flags={self.flag_count})")
