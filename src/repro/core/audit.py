"""Replica auditing: a diagnostic view of the currency state of the DHT.

``audit_key`` classifies the replicas of one key as *current*, *stale* or
*missing* relative to the highest timestamp stored anywhere, and reports the
empirical probability of currency and availability ``pt`` — the quantity the
paper's cost analysis is written in.  ``audit_keys`` aggregates over a key set
and is used by operators (and the test suite) to understand what churn did to
the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.core.replication import ReplicationScheme
from repro.dht.network import DHTNetwork

__all__ = ["KeyAudit", "ReplicaStatus", "AuditReport", "audit_key", "audit_keys"]


class ReplicaStatus:
    """Classification of one replica slot (one replication hash function)."""

    CURRENT = "current"
    STALE = "stale"
    MISSING = "missing"


@dataclass(frozen=True)
class KeyAudit:
    """Audit of a single key's replicas."""

    key: Any
    #: hash-function name -> ReplicaStatus
    statuses: Dict[str, str]
    latest_timestamp: Optional[int]

    @property
    def replica_count(self) -> int:
        return len(self.statuses)

    @property
    def current_count(self) -> int:
        return sum(1 for status in self.statuses.values() if status == ReplicaStatus.CURRENT)

    @property
    def stale_count(self) -> int:
        return sum(1 for status in self.statuses.values() if status == ReplicaStatus.STALE)

    @property
    def missing_count(self) -> int:
        return sum(1 for status in self.statuses.values() if status == ReplicaStatus.MISSING)

    @property
    def currency_probability(self) -> float:
        """The empirical ``pt`` of this key (current replicas / |Hr|)."""
        if not self.statuses:
            return 0.0
        return self.current_count / self.replica_count

    @property
    def is_available(self) -> bool:
        """At least one replica (current or stale) is stored somewhere."""
        return self.current_count + self.stale_count > 0


@dataclass
class AuditReport:
    """Aggregate audit over a set of keys."""

    audits: List[KeyAudit] = field(default_factory=list)

    @property
    def key_count(self) -> int:
        return len(self.audits)

    @property
    def mean_currency_probability(self) -> float:
        """Average empirical ``pt`` over the audited keys."""
        if not self.audits:
            return 0.0
        return sum(audit.currency_probability for audit in self.audits) / len(self.audits)

    @property
    def fully_current_keys(self) -> int:
        """Keys whose every replica is current."""
        return sum(1 for audit in self.audits
                   if audit.current_count == audit.replica_count)

    @property
    def unavailable_keys(self) -> int:
        """Keys with no replica stored anywhere (all holders failed)."""
        return sum(1 for audit in self.audits if not audit.is_available)

    def keys_with_stale_replicas(self) -> List[Any]:
        """Keys that currently expose at least one stale replica."""
        return [audit.key for audit in self.audits if audit.stale_count > 0]

    def summary(self) -> Dict[str, float]:
        return {
            "keys": float(self.key_count),
            "mean_pt": self.mean_currency_probability,
            "fully_current_keys": float(self.fully_current_keys),
            "unavailable_keys": float(self.unavailable_keys),
            "keys_with_stale_replicas": float(len(self.keys_with_stale_replicas())),
        }


def audit_key(network: DHTNetwork, replication: ReplicationScheme, key: Any) -> KeyAudit:
    """Audit the replicas of one key at their current responsibles."""
    entries = {}
    for hash_fn in replication:
        responsible = network.responsible_peer(key, hash_fn)
        entries[hash_fn.name] = network.peer(responsible).store.get(hash_fn.name, key)
    stamped = [entry.timestamp.value for entry in entries.values()
               if entry is not None and entry.timestamp is not None]
    latest = max(stamped) if stamped else None
    statuses = {}
    for name, entry in entries.items():
        if entry is None or entry.timestamp is None:
            statuses[name] = ReplicaStatus.MISSING
        elif latest is not None and entry.timestamp.value == latest:
            statuses[name] = ReplicaStatus.CURRENT
        else:
            statuses[name] = ReplicaStatus.STALE
    return KeyAudit(key=key, statuses=statuses, latest_timestamp=latest)


def audit_keys(network: DHTNetwork, replication: ReplicationScheme,
               keys: Iterable[Any]) -> AuditReport:
    """Audit several keys and return the aggregate report."""
    return AuditReport(audits=[audit_key(network, replication, key) for key in keys])
