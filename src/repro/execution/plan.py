"""Run plans: explicit, serialisable grids of simulation points.

A :class:`RunPlan` is an ordered list of :class:`RunPoint` entries — one
``(SimulationParameters, scenario, seed, repetitions)`` tuple per independent
simulation run of an experiment grid (a figure sweep, an ablation, a
scenario × overlay × service comparison, a benchmark).  Plans are pure data:

* every point has a **stable content hash** (:attr:`RunPoint.content_hash`)
  over its parameters, scenario spec and repetition count — the key of the
  on-disk run cache and the identity used by benchmark artifacts;
* plans round-trip through JSON (:meth:`RunPlan.to_dict` /
  :meth:`RunPlan.from_dict`), so a grid can be recorded next to its results
  and re-executed bit-for-bit later;
* repetition seeds are **derived deterministically** from the point's base
  seed (:func:`derive_seed`): repetition 0 runs the parameters unchanged
  (keeping single-run plans bit-compatible with a direct
  :func:`~repro.simulation.harness.run_simulation` call), repetition ``r``
  hashes ``(base seed, r)`` into a fresh, reproducible seed.

The points of a plan are independent by construction (each harness seeds its
own RNG streams from its parameters), which is what lets the
:class:`~repro.execution.executor.Executor` run them serially or in a
process pool with bit-identical results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.simulation.config import SimulationParameters
from repro.simulation.scenarios.spec import ScenarioSpec

__all__ = ["RunPlan", "RunPoint", "derive_seed", "plan_artifact_path"]

#: Derived seeds stay inside ``random.Random``'s comfortable integer range.
_SEED_BITS = 63


def derive_seed(base: Optional[int], repetition: int) -> Optional[int]:
    """Deterministic seed of repetition ``repetition`` for base seed ``base``.

    Repetition 0 *is* the base seed (so a one-repetition point reproduces a
    plain run exactly); later repetitions hash ``(base, repetition)`` through
    BLAKE2s, giving independent but fully reproducible streams.  A ``None``
    base stays ``None`` — the run was never deterministic to begin with.
    """
    if base is None or repetition == 0:
        return base
    if repetition < 0:
        raise ValueError("repetition must be >= 0")
    digest = hashlib.blake2s(
        f"repro-run-seed:{base}:{repetition}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") % (2 ** _SEED_BITS)


def _stable_hash(payload: Dict[str, Any]) -> str:
    """BLAKE2s hex digest of a canonical-JSON rendering of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.blake2s(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunPoint:
    """One independent simulation run of a plan.

    ``scenario`` is an optional :class:`ScenarioSpec`; its parameter
    ``overrides`` are folded into ``parameters`` at construction time (the
    same precedence :func:`~repro.simulation.scenarios.run_scenario` applies
    when given a spec and parameters), so the stored point is always the
    *effective* configuration and its hash cannot lie about what runs.

    ``label`` is a consumer-side tag (e.g. ``"1000/ums-direct"``) used for
    reporting; it does not participate in the content hash.
    """

    parameters: SimulationParameters
    scenario: Optional[ScenarioSpec] = None
    repetitions: int = 1
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if self.scenario is not None and self.scenario.overrides:
            object.__setattr__(
                self, "parameters",
                self.parameters.with_overrides(**self.scenario.overrides))
            object.__setattr__(
                self, "scenario",
                dataclasses.replace(self.scenario, overrides={}))

    @classmethod
    def for_scenario(cls, scenario: ScenarioSpec,
                     parameters: SimulationParameters, *,
                     repetitions: int = 1, label: Optional[str] = None,
                     **overrides: Any) -> "RunPoint":
        """A scenario point with :func:`run_scenario`'s override precedence.

        The spec's ``overrides`` are applied over ``parameters`` and keyword
        ``overrides`` (e.g. ``protocol="kademlia"``) win over both — exactly
        what ``run_scenario(spec, parameters, **overrides)`` would execute.
        """
        merged = dict(scenario.overrides)
        merged.update(overrides)
        if merged:
            parameters = parameters.with_overrides(**merged)
        return cls(parameters=parameters,
                   scenario=dataclasses.replace(scenario, overrides={}),
                   repetitions=repetitions, label=label)

    # -------------------------------------------------------------- identity
    def content(self) -> Dict[str, Any]:
        """The hashed content: effective parameters, scenario, repetitions."""
        return {
            "parameters": self.parameters.describe(),
            "scenario": (self.scenario.to_dict()
                         if self.scenario is not None else None),
            "repetitions": self.repetitions,
        }

    @property
    def content_hash(self) -> str:
        """Stable BLAKE2s hex digest of :meth:`content` (the cache key)."""
        return _stable_hash(self.content())

    def seed_for(self, repetition: int) -> Optional[int]:
        """The derived seed of one repetition (see :func:`derive_seed`)."""
        if not 0 <= repetition < self.repetitions:
            raise ValueError(f"repetition must be in [0, {self.repetitions})")
        return derive_seed(self.parameters.seed, repetition)

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot; :meth:`from_dict` round-trips it."""
        payload = dict(self.content())
        payload["label"] = self.label
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunPoint":
        """Rebuild a point recorded by :meth:`to_dict`."""
        scenario = payload.get("scenario")
        return cls(parameters=SimulationParameters(**payload["parameters"]),
                   scenario=(ScenarioSpec.from_dict(scenario)
                             if scenario is not None else None),
                   repetitions=payload.get("repetitions", 1),
                   label=payload.get("label"))


@dataclass
class RunPlan:
    """An ordered, named list of :class:`RunPoint` entries."""

    name: str = "plan"
    points: List[RunPoint] = field(default_factory=list)

    # ------------------------------------------------------------------ build
    def add(self, parameters: SimulationParameters, *,
            scenario: Optional[ScenarioSpec] = None, repetitions: int = 1,
            label: Optional[str] = None) -> RunPoint:
        """Append one point and return it."""
        point = RunPoint(parameters=parameters, scenario=scenario,
                         repetitions=repetitions, label=label)
        self.points.append(point)
        return point

    def add_scenario(self, scenario: ScenarioSpec,
                     parameters: SimulationParameters, *,
                     repetitions: int = 1, label: Optional[str] = None,
                     **overrides: Any) -> RunPoint:
        """Append a scenario point (see :meth:`RunPoint.for_scenario`)."""
        point = RunPoint.for_scenario(scenario, parameters,
                                      repetitions=repetitions, label=label,
                                      **overrides)
        self.points.append(point)
        return point

    # ---------------------------------------------------------------- queries
    @property
    def total_runs(self) -> int:
        """Number of individual simulation runs (points × repetitions)."""
        return sum(point.repetitions for point in self.points)

    @property
    def plan_hash(self) -> str:
        """Stable digest over the point hashes, in plan order."""
        return _stable_hash({"points": [point.content_hash
                                        for point in self.points]})

    def labels(self) -> List[Optional[str]]:
        """The point labels, in plan order."""
        return [point.label for point in self.points]

    def manifest(self) -> Dict[str, Any]:
        """Identity record for artifacts: name, hashes, per-point seeds."""
        return {
            "name": self.name,
            "plan_hash": self.plan_hash,
            "total_runs": self.total_runs,
            "points": [{"label": point.label,
                        "content_hash": point.content_hash,
                        "seed": point.parameters.seed,
                        "repetitions": point.repetitions}
                       for point in self.points],
        }

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot; :meth:`from_dict` round-trips it."""
        return {"name": self.name,
                "points": [point.to_dict() for point in self.points]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunPlan":
        """Rebuild a plan recorded by :meth:`to_dict`."""
        return cls(name=payload.get("name", "plan"),
                   points=[RunPoint.from_dict(point)
                           for point in payload.get("points", [])])

    # ------------------------------------------------------------- container
    def __iter__(self) -> Iterator[RunPoint]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, index: int) -> RunPoint:
        return self.points[index]


def plan_artifact_path(directory: Union[str, pathlib.Path], plan: RunPlan,
                       suffix: str = ".json") -> pathlib.Path:
    """The canonical artifact path of a plan: ``<name>-<hash12><suffix>``.

    Benchmarks write their JSON outputs here so an artifact is a reproducible
    function of the named plan: same grid → same file name, changed grid →
    a new, distinguishable one.
    """
    return pathlib.Path(directory) / f"{plan.name}-{plan.plan_hash[:12]}{suffix}"
