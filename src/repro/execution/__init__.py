"""The unified execution layer: run plans, the parallel executor, the run cache.

Every experiment grid in the repo — the figure sweeps and ablations of
:mod:`repro.experiments`, the ``repro scenario compare`` and ``repro
experiments`` CLI commands, and the benchmark grids — is expressed as a
:class:`RunPlan` (an explicit, serialisable list of content-hashed run
points) and executed by one :class:`Executor`:

>>> from repro.execution import Executor, RunPlan
>>> from repro.simulation import SimulationParameters
>>> plan = RunPlan(name="demo")
>>> for peers in (60, 90):
...     _ = plan.add(SimulationParameters.quick(num_peers=peers, seed=7),
...                  label=str(peers))
>>> results = Executor(jobs=2).run(plan)   # doctest: +SKIP

Guarantees:

* **parity** — ``jobs=N`` reproduces serial execution bit-for-bit (every
  run derives all randomness from its own point);
* **reproducible caching** — with a ``cache_dir``, results are stored under
  the point's content hash and a cached re-run returns identical metrics
  without invoking the harness;
* **deterministic repetition seeds** — repetition seeds are a pure function
  of the point's base seed (:func:`derive_seed`).
"""

from repro.execution.cache import RunCache
from repro.execution.executor import (
    JOBS_ENV,
    Executor,
    execute_point,
    resolve_jobs,
    run_repetition,
)
from repro.execution.plan import RunPlan, RunPoint, derive_seed, plan_artifact_path

__all__ = [
    "Executor",
    "JOBS_ENV",
    "RunCache",
    "RunPlan",
    "RunPoint",
    "derive_seed",
    "execute_point",
    "plan_artifact_path",
    "resolve_jobs",
    "run_repetition",
]
