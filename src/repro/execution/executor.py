"""The executor: run a :class:`~repro.execution.plan.RunPlan`, serially or in parallel.

One :class:`Executor` replaces the grid loops that used to live separately in
``experiments/runner.py``, ``experiments/figures.py``, the ``repro scenario
compare`` CLI path and the ``benchmarks/bench_*.py`` scripts:

* ``jobs=1`` (default) runs the points in plan order in-process;
* ``jobs=N`` fans the individual runs (points × repetitions) out over a
  ``multiprocessing`` pool.  Every run is self-contained — the harness seeds
  all of its RNG streams from the point's parameters — so parallel execution
  is **bit-identical** to serial execution (the repo's standing
  RNG-compatibility guarantee, pinned by ``tests/execution``);
* with a ``cache_dir``, finished points land in a
  :class:`~repro.execution.cache.RunCache` keyed by the point content hash
  and are skipped on re-execution (``use_cache=False`` forces a re-run and
  refreshes the entry);
* ``progress`` / ``on_result`` stream completions as they happen, feeding
  the existing :class:`~repro.simulation.results.RunResult` →
  :func:`~repro.experiments.reporting.comparison_tables` machinery without
  waiting for the whole plan.

``jobs=None`` resolves through the ``REPRO_EXECUTOR_JOBS`` environment
variable (default 1), which is how CI pushes the slow integration grids
through a pool without every call site growing a flag.
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
from typing import Callable, Dict, List, Optional, Tuple, Union, cast

from repro.execution.cache import RunCache
from repro.execution.plan import RunPlan, RunPoint
from repro.simulation.results import RunResult

__all__ = ["Executor", "JOBS_ENV", "execute_point", "resolve_jobs", "run_repetition"]

#: Environment variable consulted when ``jobs`` is not given explicitly.
JOBS_ENV = "REPRO_EXECUTOR_JOBS"

#: Optional callbacks: ``progress(completed_runs, total_runs, point)`` after
#: every finished run, ``on_result(index, point, results)`` after every
#: finished point (in completion order; cached points first, then executed
#: points in plan order).
ProgressCallback = Callable[[int, int, RunPoint], None]
ResultCallback = Callable[[int, RunPoint, List[RunResult]], None]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Explicit ``jobs``, or the ``REPRO_EXECUTOR_JOBS`` default (1)."""
    if jobs is None:
        jobs = int(os.environ.get(JOBS_ENV, "1") or "1")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    return jobs


def run_repetition(point: RunPoint, repetition: int) -> RunResult:
    """Execute one repetition of one point (the pool's unit of work).

    Builds a fresh harness from the point's effective parameters (with the
    deterministically derived repetition seed) and, for scenario points, a
    fresh :class:`~repro.simulation.scenarios.Scenario` — no state is shared
    with the parent process or other runs, which is what makes parallel
    execution reproduce serial results bit-for-bit.
    """
    # Imported here so a forked/spawned worker resolves everything itself.
    from repro.simulation.harness import SimulationHarness
    from repro.simulation.scenarios.engine import Scenario

    parameters = point.parameters
    seed = point.seed_for(repetition)
    if seed != parameters.seed:
        parameters = parameters.with_overrides(seed=seed)
    scenario = Scenario(point.scenario) if point.scenario is not None else None
    return SimulationHarness(parameters, scenario=scenario).run()


def _run_job(job: Tuple[RunPoint, int]) -> RunResult:
    """Pool adapter around :func:`run_repetition` (must be importable)."""
    point, repetition = job
    return run_repetition(point, repetition)


def execute_point(point: RunPoint) -> List[RunResult]:
    """Execute every repetition of one point, serially, in order."""
    return [run_repetition(point, repetition)
            for repetition in range(point.repetitions)]


class Executor:
    """Runs plans serially or via a process pool, with an optional run cache."""

    def __init__(self, jobs: Optional[int] = None, *,
                 cache_dir: Optional[Union[str, pathlib.Path]] = None,
                 use_cache: bool = True,
                 progress: Optional[ProgressCallback] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = RunCache(cache_dir) if cache_dir is not None else None
        self.use_cache = use_cache
        self.progress = progress

    # ------------------------------------------------------------------- runs
    def execute(self, plan: RunPlan,
                on_result: Optional[ResultCallback] = None
                ) -> List[List[RunResult]]:
        """Run ``plan``; returns one result list per point, in plan order.

        Each inner list holds the point's repetitions in repetition order.
        Cached points are served from the run cache without invoking the
        harness; freshly executed points are stored back when a cache is
        configured (also with ``use_cache=False``, which refreshes entries).
        """
        points = list(plan)
        total = sum(point.repetitions for point in points)
        results: List[Optional[List[RunResult]]] = [None] * len(points)
        completed = 0

        for index, point in enumerate(points):
            cached = (self.cache.load(point)
                      if self.cache is not None and self.use_cache else None)
            if cached is not None:
                results[index] = cached
                completed += point.repetitions
                if self.progress is not None:
                    self.progress(completed, total, point)
                if on_result is not None:
                    on_result(index, point, cached)

        pending = [index for index in range(len(points))
                   if results[index] is None]
        jobs = [(index, repetition) for index in pending
                for repetition in range(points[index].repetitions)]

        def finish_point(index: int, repetition_results: List[RunResult]) -> None:
            results[index] = repetition_results
            if self.cache is not None:
                self.cache.store(points[index], repetition_results)
            if on_result is not None:
                on_result(index, points[index], repetition_results)

        if self.jobs > 1 and len(jobs) > 1:
            collected: Dict[int, List[RunResult]] = {index: []
                                                     for index in pending}
            with multiprocessing.Pool(min(self.jobs, len(jobs))) as pool:
                payloads = [(points[index], repetition)
                            for index, repetition in jobs]
                for (index, _), result in zip(
                        jobs, pool.imap(_run_job, payloads, chunksize=1)):
                    collected[index].append(result)
                    completed += 1
                    if self.progress is not None:
                        self.progress(completed, total, points[index])
                    if len(collected[index]) == points[index].repetitions:
                        finish_point(index, collected[index])
        else:
            for index in pending:
                point = points[index]
                repetition_results = []
                for repetition in range(point.repetitions):
                    repetition_results.append(run_repetition(point, repetition))
                    completed += 1
                    if self.progress is not None:
                        self.progress(completed, total, point)
                finish_point(index, repetition_results)

        return cast(List[List[RunResult]], results)

    def run(self, plan: RunPlan,
            on_result: Optional[ResultCallback] = None) -> List[RunResult]:
        """Run a single-repetition plan; returns one result per point.

        The convenience shape every grid consumer uses (figures, ablations,
        scenario comparisons).  Raises if any point declares repetitions.
        """
        for point in plan:
            if point.repetitions != 1:
                raise ValueError(
                    "Executor.run() requires repetitions == 1 for every "
                    f"point (got {point.repetitions}); use execute()")
        return [group[0] for group in self.execute(plan, on_result)]
