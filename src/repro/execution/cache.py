"""On-disk run cache keyed by :attr:`RunPoint.content_hash`.

One JSON file per point, storing the point's own record next to the
serialised :class:`~repro.simulation.results.RunResult` of every repetition.
A hit requires the stored point content *and* the recording package version
to match exactly (guarding against hash collisions, stale/corrupt files and
results produced by an older implementation — any mismatch or parse failure
is treated as a miss, never an error), so a cached re-run returns results
bit-identical to what re-executing under the current version would produce.
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Optional, Union

from repro.execution.plan import RunPoint
from repro.simulation.results import RunResult

__all__ = ["RunCache"]


def _current_version() -> str:
    """The package version stamped into (and required of) cache entries.

    Imported lazily: :mod:`repro` initialises :mod:`repro.execution`, so a
    module-level import here would be circular.
    """
    from repro import __version__

    return __version__


class RunCache:
    """Directory-backed store of executed run points."""

    def __init__(self, directory: Union[str, pathlib.Path]) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, point: RunPoint) -> pathlib.Path:
        """The cache file of ``point`` (exists only after :meth:`store`)."""
        return self.directory / f"{point.content_hash}.json"

    def load(self, point: RunPoint) -> Optional[List[RunResult]]:
        """The cached repetition results of ``point``, or ``None`` on a miss."""
        path = self.path_for(point)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if payload.get("version") != _current_version():
            # A different repro version may simulate differently; serving its
            # results as current ones would fake reproducibility.
            return None
        # Compare through a JSON round-trip: the in-memory content may hold
        # tuples (e.g. a spec's fault list) that serialise as JSON arrays.
        expected = json.loads(json.dumps(point.content(), default=str))
        if payload.get("point") != expected:
            return None
        results = payload.get("results")
        if not isinstance(results, list) or len(results) != point.repetitions:
            return None
        try:
            return [RunResult.from_dict(result) for result in results]
        except (KeyError, TypeError, ValueError):
            return None

    def store(self, point: RunPoint, results: List[RunResult]) -> pathlib.Path:
        """Write the executed results of ``point``; returns the file path."""
        path = self.path_for(point)
        payload = {"version": _current_version(),
                   "point": point.content(),
                   "results": [result.to_dict() for result in results]}
        path.write_text(json.dumps(payload, sort_keys=True) + "\n",
                        encoding="utf-8")
        return path
