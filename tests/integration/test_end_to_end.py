"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import random

from repro.core import CounterInitialization, build_service_stack
from repro.simulation.cost import NetworkCostModel


class TestUmsVersusBrk:
    def test_ums_and_brk_agree_when_everything_is_healthy(self, small_stack):
        for sequence in range(3):
            small_stack.ums.insert("ums-key", f"v{sequence}")
            small_stack.brk.insert("brk-key", f"v{sequence}")
        assert small_stack.ums.retrieve("ums-key").data == "v2"
        assert small_stack.brk.retrieve("brk-key").data == "v2"

    def test_ums_is_cheaper_and_certifies_currency(self, small_stack):
        small_stack.ums.insert("k", "payload")
        small_stack.brk.insert("k-brk", "payload")
        ums_result = small_stack.ums.retrieve("k")
        brk_result = small_stack.brk.retrieve("k-brk")
        assert ums_result.is_current
        assert ums_result.trace.message_count < brk_result.trace.message_count

    def test_response_time_ordering_under_the_wan_cost_model(self, small_stack):
        cost = NetworkCostModel.wide_area(seed=5)
        small_stack.ums.insert("k-ums", "payload")
        small_stack.brk.insert("k-brk", "payload")
        ums_duration = cost.duration(small_stack.ums.retrieve("k-ums").trace)
        brk_duration = cost.duration(small_stack.brk.retrieve("k-brk").trace)
        assert ums_duration < brk_duration


class TestManyKeysUnderChurn:
    def test_hundred_keys_survive_mixed_churn(self):
        stack = build_service_stack(num_peers=80, num_replicas=8, seed=13)
        rng = random.Random(13)
        keys = [f"doc-{index}" for index in range(100)]
        for key in keys:
            stack.ums.insert(key, {"body": key})
        for _ in range(40):
            victim = stack.network.random_alive_peer()
            if rng.random() < 0.25:
                stack.network.fail_peer(victim)
            else:
                stack.network.leave_peer(victim)
            stack.network.join_peer()
        found = 0
        current = 0
        for key in keys:
            result = stack.ums.retrieve(key)
            found += result.found
            current += result.is_current
            if result.found:
                assert result.data == {"body": key}
        # Normal leaves hand data over, so every key should still be found;
        # a few replicas were wiped by failures but the current ones dominate.
        assert found == len(keys)
        assert current >= 0.95 * len(keys)

    def test_interleaved_updates_and_churn_converge(self):
        stack = build_service_stack(num_peers=64, num_replicas=6, seed=17)
        rng = random.Random(17)
        expected = {}
        for round_number in range(25):
            key = f"key-{rng.randrange(8)}"
            value = f"value-{round_number}"
            stack.ums.insert(key, value)
            expected[key] = value
            victim = stack.network.random_alive_peer()
            if rng.random() < 0.2:
                stack.network.fail_peer(victim)
            else:
                stack.network.leave_peer(victim)
            stack.network.join_peer()
        for key, value in expected.items():
            result = stack.ums.retrieve(key)
            assert result.found
            assert result.data == value

    def test_direct_and_indirect_modes_return_identical_data(self):
        for mode in (CounterInitialization.DIRECT, CounterInitialization.INDIRECT):
            stack = build_service_stack(num_peers=48, num_replicas=6, seed=23,
                                        initialization=mode)
            rng = random.Random(23)
            for sequence in range(10):
                stack.ums.insert("shared", f"v{sequence}")
                stack.network.leave_peer(stack.network.random_alive_peer())
                stack.network.join_peer()
            result = stack.ums.retrieve("shared")
            assert result.data == "v9"
            assert result.is_current


class TestTimestampIntegrity:
    def test_timestamps_across_the_stack_never_repeat(self, small_stack):
        seen = set()
        for sequence in range(20):
            result = small_stack.ums.insert("k", sequence)
            assert result.timestamp.value not in seen
            seen.add(result.timestamp.value)
            if sequence % 5 == 0:
                small_stack.network.leave_peer(small_stack.network.random_alive_peer())
                small_stack.network.join_peer()

    def test_retrieve_never_returns_older_data_than_previously_observed(self, small_stack):
        highest_seen = -1
        for sequence in range(15):
            small_stack.ums.insert("monotone", sequence)
            observed = small_stack.ums.retrieve("monotone").data
            assert observed >= highest_seen
            highest_seen = observed
