"""Property-based integration tests of the currency guarantees.

The central invariants of the paper, checked under randomly generated
sequences of updates and churn events:

* timestamps generated for a key are strictly increasing (monotonicity,
  Theorem 2), as long as generated timestamps are committed to the DHT before
  the responsible of timestamping disappears;
* whenever at least one current replica is available, ``retrieve`` returns the
  value of the latest insert and flags it as current;
* ``retrieve`` never returns data older than what an earlier retrieve already
  observed (session monotonicity of the replicated key).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CounterInitialization, build_service_stack

# One workload step: either an update, or a churn action.
steps = st.lists(
    st.sampled_from(["update", "leave", "join", "fail"]),
    min_size=1, max_size=40)


def apply_step(stack, rng, step, key, sequence):
    if step == "update":
        stack.ums.insert(key, sequence)
        return sequence + 1
    if step == "leave":
        stack.network.leave_peer(stack.network.random_alive_peer())
        stack.network.join_peer()
    elif step == "fail":
        stack.network.fail_peer(stack.network.random_alive_peer())
        stack.network.join_peer()
    elif step == "join":
        stack.network.join_peer()
    return sequence


class TestCurrencyProperties:
    @given(script=steps, seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_retrieve_returns_latest_value_when_current_replicas_exist(self, script, seed):
        stack = build_service_stack(num_peers=40, num_replicas=6, seed=seed)
        rng = random.Random(seed)
        sequence = 0
        for step in script:
            sequence = apply_step(stack, rng, step, "prop-key", sequence)
        if sequence == 0:
            return  # no update ever happened
        result = stack.ums.retrieve("prop-key")
        if stack.ums.currency_probability("prop-key") > 0.0:
            assert result.found
            assert result.is_current
            assert result.data == sequence - 1
        elif result.found:
            assert result.data < sequence

    @given(script=steps, seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_insert_timestamps_are_strictly_increasing(self, script, seed):
        stack = build_service_stack(num_peers=40, num_replicas=6, seed=seed)
        rng = random.Random(seed)
        values = []
        sequence = 0
        for step in script:
            before = sequence
            sequence = apply_step(stack, rng, step, "mono-key", sequence)
            if sequence != before:
                values.append(stack.kts.last_ts("mono-key").value)
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    @given(script=steps, seed=st.integers(min_value=0, max_value=10_000),
           indirect=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_reads_never_go_backwards(self, script, seed, indirect):
        mode = CounterInitialization.INDIRECT if indirect else CounterInitialization.DIRECT
        stack = build_service_stack(num_peers=40, num_replicas=6, seed=seed,
                                    initialization=mode)
        rng = random.Random(seed)
        sequence = 0
        last_observed = -1
        for step in script:
            sequence = apply_step(stack, rng, step, "session-key", sequence)
            result = stack.ums.retrieve("session-key")
            if result.found:
                assert result.data >= last_observed
                last_observed = result.data

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_probe_count_respects_the_replica_bound(self, seed):
        stack = build_service_stack(num_peers=40, num_replicas=8, seed=seed)
        rng = random.Random(seed)
        stack.ums.insert("bound-key", "value")
        for _ in range(10):
            stack.network.fail_peer(stack.network.random_alive_peer())
            stack.network.join_peer()
        result = stack.ums.retrieve("bound-key")
        assert 1 <= result.replicas_inspected <= stack.replication.factor
