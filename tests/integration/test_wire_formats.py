"""Wire-format parity: binary (+compressed) framing changes bytes, not values.

The compact binary framing is a pure transport concern — negotiating it must
not change a single application-visible value.  These tests replay the
canonical service-mode workload over the sim substrate, a JSON-framed
connection and a binary-framed connection for every registered overlay, and
require value identity across all three; a separate check pins the
negotiation rules (``auto`` upgrades against a binary-capable server, ``json``
never does) and that the binary connection actually moves fewer bytes.
"""

from __future__ import annotations

import pytest

from repro.api.cluster import Cluster
from repro.dht.registry import overlay_names
from repro.net.client import connect
from repro.net.server import NodeServer, ServerThread

from tests.integration.test_service_mode import (
    BUILD,
    assert_results_identical,
    run_workload,
)


@pytest.mark.parametrize("protocol", overlay_names())
def test_binary_framing_is_value_identical(protocol):
    sim = Cluster.build(protocol=protocol, **BUILD)
    with sim.session() as session:
        expected = run_workload(session)
        expected_messages = session.messages_sent

    for wire_format in ("json", "binary"):
        server = NodeServer(protocol=protocol, **BUILD)
        with ServerThread(server) as thread:
            with connect(thread.server.tcp_address,
                         wire_format=wire_format) as remote:
                assert remote.wire_format == wire_format
                with remote.session() as session:
                    actual = run_workload(session)
                    actual_messages = session.messages_sent
        assert_results_identical(expected, actual)
        assert actual_messages == expected_messages, wire_format


def test_auto_negotiation_upgrades_to_binary():
    with ServerThread(NodeServer(**BUILD)) as thread:
        with connect(thread.server.tcp_address) as remote:
            assert remote.wire_format == "binary"  # server advertises it
        with connect(thread.server.tcp_address,
                     wire_format="json") as remote:
            assert remote.wire_format == "json"  # explicit json never upgrades


def test_connect_rejects_unknown_wire_format():
    with ServerThread(NodeServer(**BUILD)) as thread:
        with pytest.raises(Exception, match="unknown wire format"):
            connect(thread.server.tcp_address, wire_format="msgpack")


def test_binary_moves_fewer_bytes_for_the_same_answers():
    bulk = [(f"key-{index:03d}", {"n": index, "blob": "x" * 64})
            for index in range(50)]

    def run(wire_format):
        server = NodeServer(**BUILD)
        with ServerThread(server) as thread:
            with connect(thread.server.tcp_address,
                         wire_format=wire_format) as remote:
                with remote.session() as session:
                    session.insert_many(bulk)
                    results = session.retrieve_many([key for key, _ in bulk])
                counters = remote.client.counters.as_dict()
        values = [(item.key, item.data, item.found) for item in results.results]
        return values, counters["bytes_sent"] + counters["bytes_received"]

    json_values, json_bytes = run("json")
    binary_values, binary_bytes = run("binary")
    assert binary_values == json_values
    # The bulk exchange is dominated by data frames, where the packed +
    # compressed encoding wins by well over the acceptance bar.
    assert binary_bytes * 2 < json_bytes
