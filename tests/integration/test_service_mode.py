"""Backend parity: the sim substrate and the repro.net transport agree.

The acceptance contract of service mode: the *same* ``Session`` workload —
mixed single/batched inserts and retrieves — produces **value-identical**
results whether the cluster runs in-process (``Cluster.build``) or behind
the asyncio transport (``repro serve`` + ``connect``), for every registered
overlay.  Both substrates are built by the same ``Cluster.build`` path with
the same seed, and the server executes requests in strict arrival order, so
the server-side RNG stream matches the in-process run operation for
operation: timestamps, payloads, currency flags and per-op message counts
must all be equal.
"""

from __future__ import annotations

import pytest

from repro.api.cluster import Cluster
from repro.dht.registry import overlay_names
from repro.net.client import connect
from repro.net.server import NodeServer, ServerThread

BUILD = dict(peers=24, replicas=5, seed=2007)

#: The mixed workload: singles and batches, writes and reads, re-writes
#: (version bumps) and a miss.
WORKLOAD = [
    ("insert", ("alpha", {"v": 1})),
    ("insert", ("beta", {"v": 2})),
    ("retrieve", "alpha"),
    ("insert_many", [("gamma", {"v": 3}), ("delta", {"v": 4})]),
    ("retrieve_many", ["alpha", "beta", "gamma"]),
    ("insert", ("alpha", {"v": 10})),
    ("retrieve", "alpha"),
    ("retrieve", "missing"),
    ("retrieve_many", ["delta", "missing"]),
]


def run_workload(session):
    """Replay the canonical workload, returning the result list."""
    results = []
    for op, payload in WORKLOAD:
        if op == "insert":
            results.append(session.insert(payload[0], payload[1]))
        elif op == "retrieve":
            results.append(session.retrieve(payload))
        elif op == "insert_many":
            results.append(session.insert_many(payload))
        else:
            results.append(session.retrieve_many(payload))
    return results


def assert_results_identical(expected, actual):
    """Field-by-field value identity for single and batched results."""
    assert len(expected) == len(actual)
    for want, got in zip(expected, actual):
        if hasattr(want, "results"):  # batched: compare element-wise
            assert len(want.results) == len(got.results)
            assert want.trace.message_count == got.trace.message_count
            for item_want, item_got in zip(want.results, got.results):
                assert_single_identical(item_want, item_got)
            continue
        assert want.trace.message_count == got.trace.message_count
        assert_single_identical(want, got)


def assert_single_identical(want, got):
    assert got.key == want.key
    assert got.timestamp == want.timestamp
    assert got.version == want.version
    assert got.service == want.service
    if hasattr(want, "data"):  # retrieve
        assert got.data == want.data
        assert got.found == want.found
        assert got.is_current == want.is_current
        assert got.latest_timestamp == want.latest_timestamp
        assert got.replicas_inspected == want.replicas_inspected
        assert got.ambiguous == want.ambiguous
    else:  # insert
        assert got.replicas_written == want.replicas_written
        assert got.replicas_attempted == want.replicas_attempted


@pytest.mark.parametrize("protocol", overlay_names())
def test_sim_and_tcp_backends_are_value_identical(protocol):
    sim = Cluster.build(protocol=protocol, **BUILD)
    with sim.session() as session:
        expected = run_workload(session)
        expected_messages = session.messages_sent

    server = NodeServer(protocol=protocol, **BUILD)
    with ServerThread(server) as thread:
        with connect(thread.server.tcp_address) as remote:
            with remote.session() as session:
                actual = run_workload(session)
                actual_messages = session.messages_sent

    assert_results_identical(expected, actual)
    assert actual_messages == expected_messages


def test_both_services_agree_across_backends():
    """The secondary (BRK) service is value-identical over the wire too."""
    sim = Cluster.build(**BUILD)
    with sim.session(service="brk") as session:
        expected = run_workload(session)

    with ServerThread(NodeServer(**BUILD)) as thread:
        with connect(thread.server.tcp_address) as remote:
            with remote.session(service="brk") as session:
                actual = run_workload(session)

    assert_results_identical(expected, actual)


def test_consistency_levels_survive_the_wire():
    sim = Cluster.build(**BUILD)
    with sim.session(consistency="best-effort") as session:
        session.insert("k", {"v": 1})
        expected = session.retrieve("k")

    with ServerThread(NodeServer(**BUILD)) as thread:
        with connect(thread.server.tcp_address) as remote:
            with remote.session(consistency="best-effort") as session:
                session.insert("k", {"v": 1})
                actual = session.retrieve("k")

    assert actual.consistency == expected.consistency == "best-effort"
    assert_single_identical(expected, actual)
    assert actual.trace.message_count == expected.trace.message_count
