"""Failure-injection integration tests (Section 4.2.2 scenarios)."""

from __future__ import annotations

import random

import pytest

from repro.core import CounterInitialization, build_service_stack
from repro.simulation.engine import Simulator
from repro.simulation.churn import ChurnProcess


class TestTimestampingResponsibleFailures:
    def test_failing_the_timestamping_responsible_does_not_block_updates(self, small_stack):
        small_stack.ums.insert("k", "v0")
        responsible = small_stack.kts.responsible_of_timestamping("k")
        small_stack.network.fail_peer(responsible)
        small_stack.network.join_peer()
        result = small_stack.ums.insert("k", "v1")
        assert result.fully_replicated
        retrieved = small_stack.ums.retrieve("k")
        assert retrieved.data == "v1"
        assert retrieved.is_current

    def test_repeated_failures_of_the_responsible_keep_timestamps_monotonic(self, small_stack):
        values = []
        for sequence in range(8):
            values.append(small_stack.ums.insert("k", sequence).timestamp.value)
            small_stack.network.fail_peer(small_stack.kts.responsible_of_timestamping("k"))
            small_stack.network.join_peer()
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    def test_uncommitted_timestamp_is_repaired_by_recovery(self, small_stack):
        network, kts, ums = small_stack.network, small_stack.kts, small_stack.ums
        ums.insert("k", "committed")
        # A timestamp is generated but never committed (e.g. the requesting
        # peer crashed before issuing the puts), then the responsible fails.
        orphan = kts.gen_ts("k")
        network.fail_peer(kts.responsible_of_timestamping("k"))
        # The new responsible rebuilds the counter from the replicas, which do
        # not know about the orphan timestamp...
        assert kts.last_ts("k").value < orphan.value
        # ...until the restarted peer reports its counter (recovery strategy).
        assert kts.recover("k", orphan.value)
        next_ts = ums.insert("k", "after-recovery").timestamp
        assert next_ts.value > orphan.value

    def test_periodic_inspection_fixes_counters_after_partial_loss(self, small_stack):
        network, kts, ums = small_stack.network, small_stack.kts, small_stack.ums
        ums.insert("k", "v0")
        ums.insert("k", "v1")
        responsible = kts.responsible_of_timestamping("k")
        counter = kts.peer_state(responsible).vcs.get("k")
        counter.value = 0
        counter.last_known = None
        assert kts.inspect_counters(responsible) == 1
        assert kts.last_ts("k").value == 2


class TestCorrelatedBursts:
    """Correlated failure batches (the scenario engine's burst primitive).

    Unlike the one-at-a-time departures above, a burst takes several peers
    down at the *same* instant — including, in the worst case, the
    responsible of timestamping and every replica holder of a key at once.
    """

    def _burst_stack(self, *, num_peers=60, num_replicas=6, seed=2025):
        stack = build_service_stack(num_peers=num_peers,
                                    num_replicas=num_replicas, seed=seed)
        churn = ChurnProcess(Simulator(), stack.network, rate_per_s=0.0,
                             failure_rate=1.0, rng=random.Random(seed))
        return stack, churn

    def _key_holders(self, stack, key):
        holders = {stack.network.responsible_peer(key, hash_fn)
                   for hash_fn in stack.replication}
        holders.add(stack.kts.responsible_of_timestamping(key))
        return holders

    def test_burst_sparing_one_replica_keeps_timestamps_strictly_monotonic(self):
        stack, churn = self._burst_stack()
        values = []
        for sequence in range(6):
            values.append(stack.ums.insert("k", sequence).timestamp.value)
            # One correlated burst: the timestamping responsible AND all but
            # one replica holder of "k" fail at the same instant (no
            # interleaved joins).  Direct counter initialisation rebuilds the
            # new responsible's counter from the surviving replica, so the
            # timestamps must keep strictly increasing.
            holders = self._key_holders(stack, "k")
            survivor = max(holders - {stack.kts.responsible_of_timestamping("k")})
            churn.fail_together(sorted(holders - {survivor}), rejoin=True)
        assert values == sorted(values)
        assert len(set(values)) == len(values)
        final = stack.ums.insert("k", "final")
        assert final.timestamp.value > values[-1]

    def test_burst_on_responsible_and_all_replicas_keeps_timestamps_monotonic(self):
        stack, churn = self._burst_stack()
        values = []
        for sequence in range(6):
            values.append(stack.ums.insert("k", sequence).timestamp.value)
            # The worst case: the responsible AND every replica holder fail in
            # the same burst.  All state about "k" is gone, so the counter may
            # legitimately restart (the paper's guarantee needs one survivor:
            # with |Hr|+1 simultaneous failures there is no source for the old
            # value) — but the sequence must never go *backwards*.
            churn.fail_together(sorted(self._key_holders(stack, "k")),
                                rejoin=True)
        assert values == sorted(values)
        # After the last burst a fresh insert must still yield a certified
        # current retrieval of the latest value.
        stack.ums.insert("k", "final")
        result = stack.ums.retrieve("k")
        assert result.is_current
        assert result.data == "final"

    def test_burst_losing_every_replica_is_not_found_until_rewritten(self):
        stack, churn = self._burst_stack(num_replicas=4, seed=2026)
        stack.ums.insert("k", "precious")
        churn.fail_together(sorted(self._key_holders(stack, "k")), rejoin=True)
        result = stack.ums.retrieve("k")
        assert not result.found
        restored = stack.ums.insert("k", "restored")
        assert restored.fully_replicated
        assert stack.ums.retrieve("k").data == "restored"

    def test_repeated_bursts_without_rejoin_keep_monotonicity(self):
        stack, churn = self._burst_stack(num_peers=80, seed=2027)
        values = []
        for sequence in range(4):
            values.append(stack.ums.insert("k", sequence).timestamp.value)
            holders = self._key_holders(stack, "k")
            survivor = max(holders - {stack.kts.responsible_of_timestamping("k")})
            churn.fail_together(sorted(holders - {survivor}), rejoin=False)
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    def test_burst_events_are_recorded_as_simultaneous_failures(self):
        stack, churn = self._burst_stack()
        stack.ums.insert("k", "v0")
        executed = churn.fail_together(sorted(self._key_holders(stack, "k")),
                                       rejoin=True)
        assert executed
        assert all(event.failed for event in executed)
        assert len({event.time for event in executed}) == 1
        assert churn.failure_count == len(executed)


class TestMassFailures:
    def test_data_survives_as_long_as_one_replica_does(self):
        stack = build_service_stack(num_peers=60, num_replicas=10, seed=37)
        stack.ums.insert("k", "precious")
        holders = sorted({stack.network.responsible_peer("k", h) for h in stack.replication})
        # Fail all but one replica holder.
        for holder in holders[:-1]:
            if stack.network.is_alive(holder):
                stack.network.fail_peer(holder)
                stack.network.join_peer()
        result = stack.ums.retrieve("k")
        assert result.found
        assert result.data == "precious"

    def test_total_replica_loss_is_reported_as_not_found(self):
        stack = build_service_stack(num_peers=60, num_replicas=4, seed=41)
        stack.ums.insert("k", "doomed")
        for hash_fn in stack.replication:
            holder = stack.network.responsible_peer("k", hash_fn)
            if stack.network.is_alive(holder):
                stack.network.fail_peer(holder)
        result = stack.ums.retrieve("k")
        assert not result.found
        assert result.data is None

    def test_update_after_total_loss_restores_availability(self):
        stack = build_service_stack(num_peers=60, num_replicas=4, seed=43)
        stack.ums.insert("k", "lost")
        for hash_fn in stack.replication:
            holder = stack.network.responsible_peer("k", hash_fn)
            if stack.network.is_alive(holder):
                stack.network.fail_peer(holder)
        stack.ums.insert("k", "restored")
        result = stack.ums.retrieve("k")
        assert result.found
        assert result.data == "restored"
        assert stack.ums.currency_probability("k") == pytest.approx(1.0)

    def test_heavy_failure_churn_with_indirect_initialisation(self):
        stack = build_service_stack(num_peers=80, num_replicas=10, seed=47,
                                    initialization=CounterInitialization.INDIRECT)
        rng = random.Random(47)
        for sequence in range(10):
            stack.ums.insert("k", sequence)
            for _ in range(4):
                stack.network.fail_peer(stack.network.random_alive_peer())
                stack.network.join_peer()
        result = stack.ums.retrieve("k")
        assert result.found
        # The last write always reaches all current responsibles, so even under
        # heavy failures the returned value is the latest one.
        assert result.data == 9
