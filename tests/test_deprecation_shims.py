"""The deprecation shims actually warn and alias the real objects.

Covers the PR-2 bricks result-type shims (``repro.core`` /
``repro.core.baseline``) and the ``repro.sim`` package shims left behind when
the simulation substrate was folded into :mod:`repro.simulation`.
"""

from __future__ import annotations

import importlib
import sys

import pytest


class TestBricksResultAliases:
    def test_core_package_alias_warns_and_aliases_insert_result(self):
        import repro.core as core
        from repro.api.results import InsertResult

        with pytest.warns(DeprecationWarning, match="BricksInsertResult is deprecated"):
            alias = core.BricksInsertResult
        assert alias is InsertResult

    def test_core_package_alias_warns_and_aliases_retrieve_result(self):
        import repro.core as core
        from repro.api.results import RetrieveResult

        with pytest.warns(DeprecationWarning, match="BricksRetrieveResult is deprecated"):
            alias = core.BricksRetrieveResult
        assert alias is RetrieveResult

    def test_baseline_module_aliases_warn_too(self):
        import repro.core.baseline as baseline
        from repro.api.results import InsertResult, RetrieveResult

        with pytest.warns(DeprecationWarning, match="BricksInsertResult is deprecated"):
            assert baseline.BricksInsertResult is InsertResult
        with pytest.warns(DeprecationWarning, match="BricksRetrieveResult is deprecated"):
            assert baseline.BricksRetrieveResult is RetrieveResult

    def test_unknown_attributes_still_raise(self):
        import repro.core as core

        with pytest.raises(AttributeError):
            core.NoSuchThing  # noqa: B018


def fresh_import(name: str):
    """Import ``name`` as if for the first time (so module-level warnings fire)."""
    saved = {key: sys.modules.pop(key) for key in list(sys.modules)
             if key == name or key.startswith(name + ".")}
    try:
        return importlib.import_module(name)
    finally:
        # Restore the originally loaded modules so identity checks elsewhere
        # keep seeing a single copy.
        sys.modules.update(saved)


class TestSimPackageShims:
    def test_importing_the_package_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.sim is deprecated"):
            fresh_import("repro.sim")

    @pytest.mark.parametrize("module", ["engine", "cost", "metrics", "processes"])
    def test_importing_each_submodule_warns(self, module):
        with pytest.warns(DeprecationWarning,
                          match=f"repro.sim.{module} is deprecated"):
            fresh_import(f"repro.sim.{module}")

    def test_package_reexports_the_moved_objects(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro.sim as sim
            import repro.sim.cost
            import repro.sim.engine
            import repro.sim.metrics
            import repro.sim.processes
        import repro.simulation as simulation

        assert sim.Simulator is simulation.Simulator
        assert sim.NetworkCostModel is simulation.NetworkCostModel
        assert sim.Tally is simulation.Tally
        assert sim.PoissonProcess is simulation.PoissonProcess
        assert repro.sim.engine.Simulator is simulation.Simulator
        assert repro.sim.cost.NetworkCostModel is simulation.NetworkCostModel
        assert repro.sim.metrics.TimeSeries is simulation.TimeSeries
        assert (repro.sim.processes.poisson_arrival_times
                is simulation.poisson_arrival_times)

    def test_shim_all_matches_the_new_package_exports(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro.sim as sim

        missing = [name for name in sim.__all__
                   if getattr(sim, name, None) is None]
        assert missing == []
