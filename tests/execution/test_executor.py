"""Executor guarantees: serial/parallel parity, caching, seed derivation.

These tests pin the execution layer's contract: ``--jobs N`` reproduces
serial execution bit-for-bit (per-point metrics *and* the aggregate
comparison tables), and a cached re-run returns identical results without
invoking the harness.
"""

from __future__ import annotations

import json

import pytest

import repro.execution.executor as executor_module
from repro.execution import Executor, RunPlan, RunPoint, resolve_jobs
from repro.experiments.reporting import comparison_tables
from repro.simulation import SimulationParameters, run_simulation
from repro.simulation.scenarios import get_scenario, run_scenario


def quick(**overrides) -> SimulationParameters:
    defaults = dict(num_peers=60, num_keys=5, duration_s=300.0, num_queries=6,
                    seed=11)
    defaults.update(overrides)
    return SimulationParameters.quick(**defaults)


def snapshot(result) -> str:
    """Canonical byte-level rendering of a run result."""
    return json.dumps(result.to_dict(), sort_keys=True)


def small_grid() -> RunPlan:
    """A 3 peers × 2 algorithms grid (6 points, sub-second per point)."""
    plan = RunPlan(name="parity-grid")
    for peers in (60, 80, 100):
        for algorithm in ("brk", "ums-direct"):
            plan.add(quick(num_peers=peers, algorithm=algorithm),
                     label=f"{peers}/{algorithm}")
    return plan


class TestParity:
    def test_parallel_execution_is_byte_identical_to_serial(self):
        plan = small_grid()
        serial = Executor(jobs=1).run(plan)
        parallel = Executor(jobs=4).run(plan)
        assert [snapshot(result) for result in serial] \
            == [snapshot(result) for result in parallel]

    def test_parallel_comparison_tables_match_serial(self):
        plan = small_grid()
        serial = Executor(jobs=1).run(plan)
        parallel = Executor(jobs=4).run(plan)

        def tables(results):
            records = [(point.label.split("/")[0], point.label.split("/")[1],
                        result.summary())
                       for point, result in zip(plan, results)]
            return [table.to_markdown() for table in comparison_tables(records)]

        assert tables(serial) == tables(parallel)

    def test_executor_matches_a_direct_harness_run(self):
        parameters = quick()
        plan = RunPlan(name="single")
        plan.add(parameters)
        (result,) = Executor(jobs=1).run(plan)
        assert snapshot(result) == snapshot(run_simulation(parameters))

    def test_scenario_points_match_run_scenario(self):
        parameters = quick()
        spec = get_scenario("hotspot")
        plan = RunPlan(name="scenario")
        plan.add_scenario(spec, parameters, protocol="kademlia")
        (result,) = Executor(jobs=1).run(plan)
        expected = run_scenario(spec, parameters, protocol="kademlia")
        assert snapshot(result) == snapshot(expected)
        assert result.scenario == "hotspot"


class TestRepetitions:
    def test_repetitions_are_deterministic_and_seed_distinct(self):
        plan = RunPlan(name="reps")
        plan.add(quick(), repetitions=3)
        first = Executor(jobs=1).execute(plan)
        second = Executor(jobs=4).execute(plan)
        assert [snapshot(result) for result in first[0]] \
            == [snapshot(result) for result in second[0]]
        # Derived seeds give each repetition its own workload realisation.
        assert len({snapshot(result) for result in first[0]}) == 3

    def test_repetition_zero_matches_a_single_run(self):
        plan = RunPlan(name="reps")
        point = plan.add(quick(), repetitions=2)
        groups = Executor(jobs=1).execute(plan)
        assert snapshot(groups[0][0]) == snapshot(run_simulation(point.parameters))

    def test_run_rejects_multi_repetition_plans(self):
        plan = RunPlan(name="reps")
        plan.add(quick(), repetitions=2)
        with pytest.raises(ValueError):
            Executor(jobs=1).run(plan)


class TestCache:
    def test_cached_rerun_is_identical_without_invoking_the_harness(
            self, tmp_path, monkeypatch):
        plan = small_grid()
        first = Executor(jobs=1, cache_dir=tmp_path).run(plan)
        assert len(list(tmp_path.glob("*.json"))) == len(plan)

        def forbidden(point, repetition):
            raise AssertionError("harness invoked despite a warm cache")

        monkeypatch.setattr(executor_module, "run_repetition", forbidden)
        cached = Executor(jobs=1, cache_dir=tmp_path).run(plan)
        assert [snapshot(result) for result in first] \
            == [snapshot(result) for result in cached]

    def test_no_cache_forces_re_execution_and_refreshes_entries(
            self, tmp_path, monkeypatch):
        plan = RunPlan(name="single")
        plan.add(quick())
        Executor(jobs=1, cache_dir=tmp_path).run(plan)

        calls = []
        original = executor_module.run_repetition

        def counting(point, repetition):
            calls.append(repetition)
            return original(point, repetition)

        monkeypatch.setattr(executor_module, "run_repetition", counting)
        Executor(jobs=1, cache_dir=tmp_path, use_cache=False).run(plan)
        assert calls == [0]

    def test_corrupt_or_mismatched_entries_are_treated_as_misses(
            self, tmp_path):
        plan = RunPlan(name="single")
        point = plan.add(quick())
        executor = Executor(jobs=1, cache_dir=tmp_path)
        (first,) = executor.run(plan)
        path = executor.cache.path_for(point)
        path.write_text("{not json", encoding="utf-8")
        (again,) = Executor(jobs=1, cache_dir=tmp_path).run(plan)
        assert snapshot(again) == snapshot(first)

    def test_entries_from_another_version_are_misses(self, tmp_path):
        plan = RunPlan(name="single")
        point = plan.add(quick())
        executor = Executor(jobs=1, cache_dir=tmp_path)
        (first,) = executor.run(plan)
        path = executor.cache.path_for(point)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["version"]  # entries are version-stamped
        payload["version"] = "0.0.0"
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert executor.cache.load(point) is None
        (again,) = Executor(jobs=1, cache_dir=tmp_path).run(plan)
        assert snapshot(again) == snapshot(first)

    def test_cache_differentiates_points_by_content(self, tmp_path):
        fast = RunPlan(name="a")
        fast.add(quick())
        other = RunPlan(name="b")
        other.add(quick(seed=12))
        Executor(jobs=1, cache_dir=tmp_path).run(fast)
        Executor(jobs=1, cache_dir=tmp_path).run(other)
        assert len(list(tmp_path.glob("*.json"))) == 2


class TestStreaming:
    def test_progress_counts_every_run_and_on_result_every_point(self):
        plan = small_grid()
        progressed = []
        finished = []
        executor = Executor(jobs=1,
                            progress=lambda done, total, point:
                            progressed.append((done, total)))
        executor.run(plan, on_result=lambda index, point, results:
                     finished.append(index))
        assert progressed == [(done, len(plan)) for done in range(1, len(plan) + 1)]
        assert finished == list(range(len(plan)))

    def test_cached_points_still_stream(self, tmp_path):
        plan = small_grid()
        Executor(jobs=1, cache_dir=tmp_path).run(plan)
        finished = []
        Executor(jobs=1, cache_dir=tmp_path).run(
            plan, on_result=lambda index, point, results: finished.append(index))
        assert finished == list(range(len(plan)))


class TestJobsResolution:
    def test_explicit_jobs_win(self, monkeypatch):
        monkeypatch.setenv(executor_module.JOBS_ENV, "8")
        assert Executor(jobs=2).jobs == 2

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv(executor_module.JOBS_ENV, "3")
        assert Executor().jobs == 3
        monkeypatch.delenv(executor_module.JOBS_ENV)
        assert Executor().jobs == 1

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


def test_points_survive_pickling_for_the_pool():
    """The pool pickles points; scenario specs and parameters must survive."""
    import pickle

    point = RunPoint.for_scenario(get_scenario("flashcrowd"), quick(),
                                  protocol="kademlia", label="p")
    clone = pickle.loads(pickle.dumps(point))
    assert clone.content_hash == point.content_hash
